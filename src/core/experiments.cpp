#include "core/experiments.hpp"

#include <filesystem>

#include "core/caraml.hpp"
#include "core/llm.hpp"
#include "core/resnet.hpp"
#include "topo/specs.hpp"

namespace caraml::core {

df::DataFrame fig2_dataframe() {
  df::DataFrame frame;
  frame.add_column("system", df::ColumnType::kString);
  frame.add_column("devices", df::ColumnType::kInt64);
  frame.add_column("global_batch", df::ColumnType::kInt64);
  frame.add_column("tokens_per_s_per_gpu", df::ColumnType::kDouble);
  frame.add_column("energy_wh_per_gpu_1h", df::ColumnType::kDouble);
  frame.add_column("tokens_per_wh", df::ColumnType::kDouble);
  frame.add_column("status", df::ColumnType::kString);

  for (const auto& series : fig2_series()) {
    const int dp = series.devices > 0
                       ? series.devices
                       : topo::SystemRegistry::instance()
                             .by_tag(series.tag)
                             .devices_per_node;
    for (std::int64_t batch : fig2_batches()) {
      LlmRunConfig config;
      config.system_tag = series.tag;
      config.devices = series.devices;
      config.global_batch = batch;
      const std::int64_t devices = dp;
      if (!llm_layout_valid(batch, config.micro_batch, dp)) {
        frame.append_row({series.label, devices, batch, 0.0, 0.0, 0.0,
                          std::string("invalid")});
        continue;
      }
      const auto result = run_llm_gpu(config);
      if (result.oom) {
        frame.append_row({series.label, devices, batch, 0.0, 0.0, 0.0,
                          std::string("oom")});
        continue;
      }
      frame.append_row({series.label, devices, batch,
                        result.tokens_per_s_per_gpu, result.energy_per_gpu_wh,
                        result.tokens_per_wh, std::string("ok")});
    }
  }
  return frame;
}

df::DataFrame fig3_dataframe() {
  df::DataFrame frame;
  frame.add_column("system", df::ColumnType::kString);
  frame.add_column("devices", df::ColumnType::kInt64);
  frame.add_column("global_batch", df::ColumnType::kInt64);
  frame.add_column("images_per_s", df::ColumnType::kDouble);
  frame.add_column("energy_wh_per_epoch", df::ColumnType::kDouble);
  frame.add_column("images_per_wh", df::ColumnType::kDouble);
  frame.add_column("status", df::ColumnType::kString);

  for (const auto& series : fig3_series()) {
    for (std::int64_t batch : fig3_batches()) {
      if (batch % series.devices != 0) {
        frame.append_row({series.label,
                          static_cast<std::int64_t>(series.devices), batch,
                          0.0, 0.0, 0.0, std::string("invalid")});
        continue;
      }
      ResnetRunConfig config;
      config.system_tag = series.tag;
      config.devices = series.devices;
      config.global_batch = batch;
      const auto result = run_resnet_gpu(config);
      if (result.oom) {
        frame.append_row({series.label,
                          static_cast<std::int64_t>(series.devices), batch,
                          0.0, 0.0, 0.0, std::string("oom")});
        continue;
      }
      frame.append_row({series.label,
                        static_cast<std::int64_t>(series.devices), batch,
                        result.images_per_s_total, result.energy_per_epoch_wh,
                        result.images_per_wh, std::string("ok")});
    }
  }
  return frame;
}

df::DataFrame table2_dataframe() {
  df::DataFrame frame;
  frame.add_column("batch_tokens", df::ColumnType::kInt64);
  frame.add_column("tokens_per_s", df::ColumnType::kDouble);
  frame.add_column("energy_wh_per_epoch_ipu", df::ColumnType::kDouble);
  frame.add_column("tokens_per_wh", df::ColumnType::kDouble);
  frame.add_column("pipeline_bubble", df::ColumnType::kDouble);
  for (std::int64_t batch : table2_batches()) {
    const auto result = run_llm_ipu(batch);
    frame.append_row({batch, result.tokens_per_s, result.energy_per_epoch_wh,
                      result.tokens_per_wh, result.pipeline_bubble});
  }
  return frame;
}

df::DataFrame table3_dataframe() {
  df::DataFrame frame;
  frame.add_column("batch", df::ColumnType::kInt64);
  frame.add_column("images_per_s", df::ColumnType::kDouble);
  frame.add_column("energy_wh_per_epoch", df::ColumnType::kDouble);
  frame.add_column("images_per_wh", df::ColumnType::kDouble);
  for (std::int64_t batch : table3_batches()) {
    const auto result = run_resnet_ipu(batch, 1);
    frame.append_row({batch, result.images_per_s_total,
                      result.energy_per_epoch_wh, result.images_per_wh});
  }
  return frame;
}

df::DataFrame fig4_dataframe(const std::string& system_tag) {
  df::DataFrame frame;
  frame.add_column("devices", df::ColumnType::kInt64);
  frame.add_column("global_batch", df::ColumnType::kInt64);
  frame.add_column("images_per_s", df::ColumnType::kDouble);
  frame.add_column("status", df::ColumnType::kString);
  for (int devices : fig4_device_counts(system_tag)) {
    for (std::int64_t batch : fig4_batches()) {
      if (batch % devices != 0) {
        frame.append_row({static_cast<std::int64_t>(devices), batch, 0.0,
                          std::string("invalid")});
        continue;
      }
      ResnetRunConfig config;
      config.system_tag = system_tag;
      config.devices = devices;
      config.global_batch = batch;
      const auto result = run_resnet(config);
      frame.append_row({static_cast<std::int64_t>(devices), batch,
                        result.oom ? 0.0 : result.images_per_s_total,
                        std::string(result.oom ? "oom" : "ok")});
    }
  }
  return frame;
}

int export_all_experiments(const std::string& directory) {
  std::filesystem::create_directories(directory);
  int written = 0;
  fig2_dataframe().to_csv_file(directory + "/fig2.csv");
  ++written;
  fig3_dataframe().to_csv_file(directory + "/fig3.csv");
  ++written;
  table2_dataframe().to_csv_file(directory + "/table2.csv");
  ++written;
  table3_dataframe().to_csv_file(directory + "/table3.csv");
  ++written;
  for (const auto& tag : topo::SystemRegistry::instance().tags()) {
    fig4_dataframe(tag).to_csv_file(directory + "/fig4_" + tag + ".csv");
    ++written;
  }
  return written;
}

}  // namespace caraml::core
