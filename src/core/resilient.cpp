#include "core/resilient.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fault/checkpoint.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"

namespace caraml::core {

namespace {

std::string format(const char* fmt, double a, double b = 0.0) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer), fmt, a, b);
  return buffer;
}

struct Timeline {
  double busy_s = 0.0;  // device-compute time, including replayed steps
};

/// Walk the training-step timeline against the plan's device failures:
/// periodic checkpoints cost wall time; a failure rewinds to the last
/// checkpoint (replaying the steps since), pays the restart cost plus the
/// policy's deterministic backoff, and consumes one restart from the budget.
/// Exhausting the budget marks the run failed with partial accounting.
Timeline walk_steps(const ResilienceOptions& options, double iteration_s,
                    std::int64_t samples_per_step, fault::RunReport& report) {
  CARAML_CHECK_MSG(options.steps >= 1, "resilient run needs >= 1 step");
  CARAML_CHECK_MSG(options.checkpoint_every >= 1,
                   "checkpoint interval must be >= 1 step");
  CARAML_CHECK_MSG(iteration_s > 0.0, "iteration time must be positive");

  auto& registry = telemetry::Registry::global();
  const std::vector<double> failures = options.plan.failure_times();
  const int max_restarts = std::max(0, options.retry.max_attempts - 1);

  Timeline timeline;
  report.steps_total = options.steps;
  double t = 0.0;          // wall clock
  double ckpt_wall = 0.0;  // wall time of the last completed checkpoint
  std::int64_t step = 0;
  std::int64_t last_ckpt = 0;
  std::size_t fi = 0;
  while (step < report.steps_total) {
    const double step_end = t + iteration_s;
    if (fi < failures.size() && failures[fi] <= step_end) {
      // A device dies while this step computes.
      const double strike = std::max(failures[fi], t);
      ++fi;
      registry.counter("fault/device_failures").add();
      timeline.busy_s += strike - t;  // partial, wasted compute
      if (report.restarts >= max_restarts) {
        report.status = "failed";
        report.incidents.push_back(
            format("device failure at t=%.1fs: restart budget (%.0f) "
                   "exhausted",
                   strike, static_cast<double>(max_restarts)));
        report.lost_time_s += strike - ckpt_wall;
        report.steps_replayed += step - last_ckpt;
        step = last_ckpt;  // work since the checkpoint never completed
        t = strike;
        break;
      }
      ++report.restarts;
      registry.counter("fault/restarts").add();
      const double backoff = options.retry.delay_s(report.restarts + 1);
      report.incidents.push_back(
          format("device failure at t=%.1fs: restarting from step %.0f",
                 strike, static_cast<double>(last_ckpt)));
      report.steps_replayed += step - last_ckpt;
      report.lost_time_s +=
          (strike - ckpt_wall) + options.restart_cost_s + backoff;
      report.retry_backoff_s += backoff;
      report.restart_overhead_s += options.restart_cost_s;
      // Recovery span on the virtual timeline so `caraml analyse-trace` can
      // attribute the restart + backoff window.
      if (auto& tracer = telemetry::Tracer::global(); tracer.enabled()) {
        tracer.add_span("recovery/restart", tracer.track("recovery"), strike,
                        options.restart_cost_s + backoff);
      }
      step = last_ckpt;
      t = strike + options.restart_cost_s + backoff;
      ckpt_wall = t;  // the restart resumes exactly at the checkpoint
      continue;
    }

    timeline.busy_s += iteration_s;
    t = step_end;
    ++step;
    if (step - last_ckpt >= options.checkpoint_every &&
        step < report.steps_total) {
      t += options.checkpoint_cost_s;
      last_ckpt = step;
      ckpt_wall = t;
      ++report.checkpoints_saved;
      report.checkpoint_overhead_s += options.checkpoint_cost_s;
      registry.counter("fault/checkpoints").add();
      if (!options.checkpoint_dir.empty()) {
        fault::TrainingCheckpoint checkpoint;
        checkpoint.step = step;
        checkpoint.samples_consumed = step * samples_per_step;
        checkpoint.optimizer_clock_s = timeline.busy_s;
        checkpoint.sampler_state =
            options.plan.seed ^ static_cast<std::uint64_t>(step);
        checkpoint.save(options.checkpoint_dir + "/checkpoint.json");
      }
    }
  }
  report.steps_completed = step;
  report.wall_time_s = t;
  return timeline;
}

/// Whole-run derate window: the plan's horizon, stretched to cover every
/// scheduled window.
double derate_window(const fault::FaultPlan& plan) {
  double window = plan.horizon_s;
  for (const auto& event : plan.events) {
    window = std::max(window, event.time_s + event.duration_s);
  }
  return window;
}

void stamp_plan(const fault::FaultPlan& plan, fault::RunReport& report) {
  report.fault_seed = plan.seed;
  report.fault_fingerprint = plan.fingerprint();
  report.fault_events = static_cast<std::int64_t>(plan.events.size());
}

/// Fold the plan's throttle/link windows into the run config's scalar
/// factors, annotating the report when the run is measurably derated.
template <typename Config>
void apply_derates(const fault::FaultPlan& plan, Config& config,
                   fault::RunReport& report) {
  const double window = derate_window(plan);
  if (window <= 0.0) return;
  const fault::Derate derate = plan.average_derate(-1, 0.0, window);
  const double link = plan.average_link_derate(-1, 0.0, window);
  config.compute_time_factor *= derate.time_factor;
  config.power_cap_factor *= derate.power_factor;
  config.link_time_factor *= link;
  if (derate.time_factor > 1.0 + 1e-12) {
    report.incidents.push_back(
        format("thermal throttle: compute derated x%.3f, power capped x%.3f",
               derate.time_factor, derate.power_factor));
  }
  if (link > 1.0 + 1e-12) {
    report.incidents.push_back(
        format("link degradation: transfers stretched x%.3f", link));
  }
  if (const std::size_t dropouts = plan.count(fault::FaultKind::kSensorDropout);
      dropouts > 0) {
    report.incidents.push_back(
        format("%.0f sensor dropout window(s): power sampling degraded",
               static_cast<double>(dropouts)));
  }
}

void finalize_status(fault::RunReport& report) {
  if (report.status == "failed") return;
  report.status = report.incidents.empty() ? "ok" : "degraded";
}

}  // namespace

ResilientLlmResult run_llm_resilient(LlmRunConfig config,
                                     const ResilienceOptions& options) {
  TELEMETRY_SPAN("llm/run_resilient");
  ResilientLlmResult out;
  fault::RunReport& report = out.report;
  stamp_plan(options.plan, report);
  apply_derates(options.plan, config, report);

  // OOM graceful degradation: halve the micro-batch until the model fits.
  LlmRunResult run = run_llm_gpu(config);
  while (run.oom && config.micro_batch > 1) {
    ++report.oom_retries;
    telemetry::Registry::global().counter("fault/oom_retries").add();
    report.incidents.push_back(
        format("OOM at micro-batch %.0f: retrying at %.0f",
               static_cast<double>(config.micro_batch),
               static_cast<double>(config.micro_batch / 2)));
    config.micro_batch /= 2;
    run = run_llm_gpu(config);
  }
  out.final_micro_batch = config.micro_batch;
  if (run.oom) {
    report.status = "failed";
    report.incidents.push_back("OOM at micro-batch 1: " + run.oom_message);
    out.base = std::move(run);
    return out;
  }

  const std::int64_t tokens_per_step =
      config.global_batch * config.model.seq_length;
  const Timeline timeline =
      walk_steps(options, run.iteration_time_s, tokens_per_step, report);

  const double wall = std::max(report.wall_time_s, 1e-12);
  out.effective_tokens_per_s_total =
      static_cast<double>(report.steps_completed * tokens_per_step) / wall;
  const double idle_w =
      run.device0_trace ? run.device0_trace->idle_power() : 0.0;
  out.effective_avg_power_per_gpu_w =
      (run.avg_power_per_gpu_w * timeline.busy_s +
       idle_w * std::max(0.0, wall - timeline.busy_s)) /
      wall;
  out.effective_energy_per_gpu_wh =
      out.effective_avg_power_per_gpu_w * wall / 3600.0;
  finalize_status(report);
  out.base = std::move(run);
  return out;
}

ResilientResnetResult run_resnet_resilient(ResnetRunConfig config,
                                           const ResilienceOptions& options) {
  TELEMETRY_SPAN("resnet/run_resilient");
  ResilientResnetResult out;
  fault::RunReport& report = out.report;
  stamp_plan(options.plan, report);
  apply_derates(options.plan, config, report);

  // OOM degradation: halve the global batch while it still divides evenly
  // across the devices.
  ResnetRunResult run = run_resnet(config);
  while (run.oom && config.global_batch / 2 >= config.devices &&
         (config.global_batch / 2) % config.devices == 0) {
    ++report.oom_retries;
    telemetry::Registry::global().counter("fault/oom_retries").add();
    report.incidents.push_back(
        format("OOM at global batch %.0f: retrying at %.0f",
               static_cast<double>(config.global_batch),
               static_cast<double>(config.global_batch / 2)));
    config.global_batch /= 2;
    run = run_resnet(config);
  }
  out.final_global_batch = config.global_batch;
  if (run.oom) {
    report.status = "failed";
    report.incidents.push_back("OOM at minimum batch: " + run.oom_message);
    out.base = std::move(run);
    return out;
  }

  const Timeline timeline =
      walk_steps(options, run.iteration_time_s, config.global_batch, report);

  const double wall = std::max(report.wall_time_s, 1e-12);
  out.effective_images_per_s_total =
      static_cast<double>(report.steps_completed * config.global_batch) / wall;
  const double idle_w =
      run.device0_trace ? run.device0_trace->idle_power() : 0.0;
  out.effective_avg_power_per_device_w =
      (run.avg_power_per_device_w * timeline.busy_s +
       idle_w * std::max(0.0, wall - timeline.busy_s)) /
      wall;
  out.effective_energy_per_device_wh =
      out.effective_avg_power_per_device_w * wall / 3600.0;
  finalize_status(report);
  out.base = std::move(run);
  return out;
}

}  // namespace caraml::core
