#include "core/resnet.hpp"

#include <algorithm>
#include <cmath>

#include "sim/cluster.hpp"
#include "sim/memory.hpp"
#include "sim/trace_export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"

namespace caraml::core {

using sim::ClusterSim;
using sim::TaskGraph;
using sim::TaskId;
using topo::NodeSpec;
using topo::SystemRegistry;

namespace {

// Host input-pipeline rate per device (images/s): the calibrated base rate
// shrunk by the page-cache factor when the per-device host memory cannot
// hold the dataset (paper §IV-B: GH200-JRDC's 4x CPU memory => faster data
// loading than JEDI).
double host_rate_per_device(const NodeSpec& node) {
  const double cache_factor =
      std::min(1.0, node.cpu_mem_per_device() / models::kImagenetBytes);
  return node.host_pipeline_images_per_s * cache_factor;
}

constexpr double kGpuIterFixedOverheadS = 0.004;  // step sync, Horovod cycle

}  // namespace

ResnetRunResult run_resnet_gpu(const ResnetRunConfig& config) {
  TELEMETRY_SPAN("resnet/run_gpu");
  telemetry::Registry::global().counter("resnet/runs").add();
  const NodeSpec& node = SystemRegistry::instance().by_tag(config.system_tag);
  CARAML_CHECK_MSG(node.device.arch == topo::ArchClass::kGpuSimd,
                   "run_resnet_gpu targets GPU systems");
  CARAML_CHECK_MSG(config.devices >= 1, "need at least one device");

  int devices_per_node = std::min(config.devices, node.devices_per_node);
  int num_nodes = (config.devices + node.devices_per_node - 1) /
                  node.devices_per_node;
  if (num_nodes > 1) {
    CARAML_CHECK_MSG(config.devices % node.devices_per_node == 0,
                     "multi-node runs must use full nodes");
    devices_per_node = node.devices_per_node;
  }
  CARAML_CHECK_MSG(num_nodes <= node.max_nodes,
                   node.display_name + " has only " +
                       std::to_string(node.max_nodes) + " nodes");
  const int n = config.devices;
  CARAML_CHECK_MSG(config.global_batch % n == 0,
                   "global batch must divide by device count");
  const std::int64_t b_dev = config.global_batch / n;

  const models::ResNetModel model =
      models::ResNetModel::build(config.variant);

  ResnetRunResult result;
  result.system = node.display_name;
  result.global_batch = config.global_batch;
  result.devices = n;

  // ---- memory accounting ----------------------------------------------------
  const double activations = model.activation_bytes_per_image() * b_dev;
  const double state = model.model_state_bytes();
  const double workspace = 3.0e9;
  result.memory_per_device_bytes = activations + state + workspace;
  try {
    sim::MemoryTracker tracker(node.device.name,
                               node.device.mem_capacity_bytes);
    tracker.allocate("model+optimizer", state);
    tracker.allocate("activations", activations);
    tracker.allocate("workspace", workspace);
  } catch (const OutOfMemory& oom) {
    telemetry::Registry::global().counter("resnet/oom").add();
    result.oom = true;
    result.oom_message = oom.what();
    return result;
  }

  // ---- one training iteration ------------------------------------------------
  // Conv utilization grows with the per-device batch (kernel occupancy).
  const double contention =
      1.0 + node.host_contention * (std::min(n, devices_per_node) - 1);
  const double mfu = node.device.max_mfu_conv / contention *
                     static_cast<double>(b_dev) /
                     (static_cast<double>(b_dev) + node.device.batch_half_mfu);
  const double flops = model.train_flops_per_image() * b_dev;
  const double t_compute =
      flops / (node.device.peak_fp16_flops * mfu) +
      static_cast<double>(model.layers.size()) * node.device.launch_overhead_s;

  CARAML_CHECK_MSG(config.compute_time_factor >= 1.0 &&
                       config.link_time_factor >= 1.0,
                   "derate time factors must be >= 1");
  CARAML_CHECK_MSG(config.power_cap_factor > 0.0 &&
                       config.power_cap_factor <= 1.0,
                   "power cap factor must be in (0, 1]");
  ClusterSim cluster(node, devices_per_node, num_nodes);
  for (int d = 0; d < n; ++d) {
    cluster.set_compute_derate(d, config.compute_time_factor);
    cluster.set_link_derate(d, config.link_time_factor);
  }
  for (const auto& [d, factor] : config.device_compute_derate) {
    CARAML_CHECK_MSG(d >= 0 && d < n,
                     "device_compute_derate index out of range");
    CARAML_CHECK_MSG(factor >= 1.0, "device derate factor must be >= 1");
    cluster.set_compute_derate(d, config.compute_time_factor * factor);
  }
  TaskGraph& graph = cluster.graph();

  const double mfu_uncontended =
      node.device.max_mfu_conv * static_cast<double>(b_dev) /
      (static_cast<double>(b_dev) + node.device.batch_half_mfu);
  const double power_util =
      config.power_cap_factor *
      (mfu + node.contention_power_frac * (mfu_uncontended - mfu)) *
      node.device.conv_power_boost;
  const double t_host =
      config.synthetic_data
          ? 0.0
          : static_cast<double>(b_dev) / host_rate_per_device(node);
  const double t_update =
      model.model_state_bytes() / node.device.mem_bandwidth +
      kGpuIterFixedOverheadS;

  // Simulate several iterations so the host input pipeline (which prefetches
  // the next batch while the device computes the current one) reaches steady
  // state; report the steady-state iteration time.
  constexpr int kIterations = 4;
  std::vector<TaskId> prev_update(static_cast<std::size_t>(n),
                                  sim::kInvalidTask);
  std::vector<TaskId> update_of_dev0;
  for (int iter = 0; iter < kIterations; ++iter) {
    std::vector<TaskId> computed(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      TaskId input = sim::kInvalidTask;
      if (t_host > 0.0) {
        // Host tasks queue FIFO on the host resource: natural prefetching.
        input = graph.add_task(cluster.host(d), t_host, 0.0, "input");
      }
      const TaskId task = graph.add_task(
          cluster.compute(d), t_compute * cluster.compute_derate(d),
          power_util, "fwd+bwd");
      if (input != sim::kInvalidTask) graph.add_dependency(input, task);
      if (prev_update[static_cast<std::size_t>(d)] != sim::kInvalidTask) {
        graph.add_dependency(prev_update[static_cast<std::size_t>(d)], task);
      }
      computed[static_cast<std::size_t>(d)] = task;
    }

    // Horovod gradient all-reduce (fp16-compressed gradients); NCCL-style
    // hierarchical reduction across nodes.
    std::vector<TaskId> reduced = cluster.hierarchical_all_reduce(
        model.gradient_comm_bytes(), computed,
        "allreduce" + std::to_string(iter));

    for (int d = 0; d < n; ++d) {
      const TaskId update = graph.add_task(
          cluster.compute(d), t_update * cluster.compute_derate(d), 0.08,
          "sgd");
      graph.add_dependency(
          reduced[static_cast<std::size_t>(d %
                                           static_cast<int>(reduced.size()))],
          update);
      prev_update[static_cast<std::size_t>(d)] = update;
      if (d == 0) update_of_dev0.push_back(update);
    }
  }

  const double makespan = graph.run();
  const double first_done = graph.finish_time(update_of_dev0.front());
  const double last_done = graph.finish_time(update_of_dev0.back());
  const double iteration_time =
      kIterations > 1 ? (last_done - first_done) / (kIterations - 1)
                      : makespan;

  result.iteration_time_s = iteration_time;
  result.images_per_s_total =
      static_cast<double>(config.global_batch) / iteration_time;
  result.images_per_s_per_device = result.images_per_s_total / n;

  // Average power over the steady-state window.
  sim::PowerTrace trace(node.device, cluster.compute(0)->busy_intervals(),
                        makespan);
  if (auto& tracer = config.trace_sink ? *config.trace_sink
                                       : telemetry::Tracer::global();
      tracer.enabled()) {
    sim::append_chrome_events(graph, tracer);
    sim::append_power_counters(trace, "power/dev0_w", tracer);
    sim::append_queue_wait_counters(graph, tracer);
  }
  result.avg_power_per_device_w =
      last_done > first_done
          ? trace.energy_joules(first_done, last_done) /
                (last_done - first_done)
          : trace.average_power();
  // A lone active GCD of an MCM still pays the package's shared power
  // (paper §IV-B: using both GCDs of an MI250 is slightly more efficient).
  if (node.device.mcm_shared_watts > 0.0 && n % 2 == 1) {
    result.avg_power_per_device_w += node.device.mcm_shared_watts;
  }
  // Epoch energy: all devices together process the full ImageNet epoch.
  const double epoch_seconds =
      static_cast<double>(models::kImagenetTrainImages) /
      result.images_per_s_total;
  result.energy_per_epoch_wh =
      result.avg_power_per_device_w * n * epoch_seconds / 3600.0;
  result.images_per_wh =
      static_cast<double>(models::kImagenetTrainImages) /
      result.energy_per_epoch_wh;
  result.device0_trace = std::move(trace);
  return result;
}

// ---------------------------------------------------------------------------
// Graphcore path (Table III, Fig. 4g).
// ---------------------------------------------------------------------------

namespace {
// Calibrated against Table III (EXPERIMENTS.md): ResNet50 fits in the GC200's
// 900 MB SRAM at micro-batch 16, so throughput is flat in the global batch.
constexpr std::int64_t kIpuMicroImages = 16;
constexpr double kIpuSyncOverheadS = 0.000301;  // per-iteration host sync
constexpr double kIpuAllreduceStepLatencyS = 0.001;  // BSP sync per ring step
constexpr double kIpuBusyWatts = 167.3;
}  // namespace

ResnetRunResult run_resnet_ipu(std::int64_t global_batch, int ipus) {
  TELEMETRY_SPAN("resnet/run_ipu");
  telemetry::Registry::global().counter("resnet/runs").add();
  const NodeSpec& node = SystemRegistry::instance().by_tag("GC200");
  CARAML_CHECK_MSG(ipus >= 1 && ipus <= node.devices_per_node,
                   "IPU count out of range for the M2000 POD4");
  CARAML_CHECK_MSG(global_batch >= 1 && global_batch % ipus == 0,
                   "global batch must divide by IPU count");

  const models::ResNetModel model =
      models::ResNetModel::build(models::ResNetVariant::kResNet50);

  const std::int64_t b_dev = global_batch / ipus;
  const std::int64_t micro = std::min<std::int64_t>(kIpuMicroImages, b_dev);
  const std::int64_t n_micro = (b_dev + micro - 1) / micro;

  // Per-micro compute at the calibrated SRAM-resident rate.
  const double images_per_s_peak =
      node.device.peak_fp16_flops * node.device.max_mfu_conv /
      model.train_flops_per_image();
  const double t_micro = static_cast<double>(micro) / images_per_s_peak;

  double iteration = static_cast<double>(n_micro) * t_micro + kIpuSyncOverheadS;
  if (ipus > 1) {
    // Ring all-reduce over IPU-Links with BSP sync per step.
    const double chunk =
        model.gradient_comm_bytes() / static_cast<double>(ipus);
    const double step =
        kIpuAllreduceStepLatencyS + chunk / node.peer_link.bandwidth;
    iteration += 2.0 * (ipus - 1) * step;
  }

  ResnetRunResult result;
  result.system = node.display_name;
  result.global_batch = global_batch;
  result.devices = ipus;
  result.iteration_time_s = iteration;
  result.images_per_s_total = static_cast<double>(global_batch) / iteration;
  result.images_per_s_per_device = result.images_per_s_total / ipus;
  result.avg_power_per_device_w = kIpuBusyWatts;
  const double epoch_seconds =
      static_cast<double>(models::kImagenetTrainImages) /
      result.images_per_s_total;
  result.energy_per_epoch_wh =
      kIpuBusyWatts * ipus * epoch_seconds / 3600.0;
  result.images_per_wh = static_cast<double>(models::kImagenetTrainImages) /
                         result.energy_per_epoch_wh;
  return result;
}

ResnetRunResult run_resnet(const ResnetRunConfig& config) {
  if (config.system_tag == "GC200") {
    return run_resnet_ipu(config.global_batch, config.devices);
  }
  return run_resnet_gpu(config);
}

}  // namespace caraml::core
