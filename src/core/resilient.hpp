// Resilient training runners: wrap the LLM/ResNet benchmarks with the fault
// machinery of src/fault — OOM graceful degradation (halve the batch and
// retry), thermal-throttle/link derating applied to the simulated kernels,
// and checkpoint-restart after injected device failures — then report honest
// *effective* throughput/energy for the degraded run (completed work over
// wall time, idle power drawn during recovery).
#pragma once

#include <cstdint>
#include <string>

#include "core/llm.hpp"
#include "core/resnet.hpp"
#include "fault/fault.hpp"

namespace caraml::core {

struct ResilienceOptions {
  fault::FaultPlan plan;
  fault::RetryPolicy retry;            // max_attempts bounds restarts
  std::int64_t steps = 50;             // training steps the run covers
  std::int64_t checkpoint_every = 10;  // steps between checkpoints
  double checkpoint_cost_s = 0.5;      // wall time to write one checkpoint
  double restart_cost_s = 5.0;         // re-init after a device failure
  std::string checkpoint_dir;  // when set, persist the latest checkpoint here
};

struct ResilientLlmResult {
  LlmRunResult base;  // the final (fitting, derated) configuration
  fault::RunReport report;
  std::int64_t final_micro_batch = 0;  // after OOM halvings
  double effective_tokens_per_s_total = 0.0;   // completed work / wall time
  double effective_avg_power_per_gpu_w = 0.0;  // idle during recovery windows
  double effective_energy_per_gpu_wh = 0.0;    // over the whole wall time
};

struct ResilientResnetResult {
  ResnetRunResult base;
  fault::RunReport report;
  std::int64_t final_global_batch = 0;  // after OOM halvings
  double effective_images_per_s_total = 0.0;
  double effective_avg_power_per_device_w = 0.0;
  double effective_energy_per_device_wh = 0.0;
};

/// Run the LLM benchmark under `options.plan`. Never throws for injected
/// faults: the report's status is "ok", "degraded" (survived with incident
/// annotations) or "failed" (restart/OOM budget exhausted — partial
/// accounting is still filled in).
ResilientLlmResult run_llm_resilient(LlmRunConfig config,
                                     const ResilienceOptions& options);

/// ResNet counterpart (dispatches GPU/IPU like run_resnet). OOM degradation
/// halves the global batch while it stays divisible by the device count.
ResilientResnetResult run_resnet_resilient(ResnetRunConfig config,
                                           const ResilienceOptions& options);

}  // namespace caraml::core
