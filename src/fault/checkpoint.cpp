#include "fault/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace caraml::fault {

namespace json = telemetry::json;

std::string TrainingCheckpoint::to_json() const {
  json::Value root{json::Object{}};
  root.set("schema_version", schema_version);
  root.set("step", step);
  root.set("samples_consumed", samples_consumed);
  root.set("optimizer_clock_s", optimizer_clock_s);
  root.set("sampler_state", static_cast<double>(sampler_state));
  return json::dump(root);
}

TrainingCheckpoint TrainingCheckpoint::from_json(const std::string& text) {
  const json::Value root = json::parse(text);
  TrainingCheckpoint checkpoint;
  checkpoint.schema_version =
      static_cast<int>(root.at("schema_version").as_int());
  if (checkpoint.schema_version != TrainingCheckpoint{}.schema_version) {
    throw Error("unsupported checkpoint schema_version " +
                std::to_string(checkpoint.schema_version));
  }
  checkpoint.step = root.at("step").as_int();
  checkpoint.samples_consumed = root.at("samples_consumed").as_int();
  checkpoint.optimizer_clock_s = root.at("optimizer_clock_s").as_number();
  checkpoint.sampler_state =
      static_cast<std::uint64_t>(root.at("sampler_state").as_number());
  return checkpoint;
}

void TrainingCheckpoint::save(const std::string& path) const {
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw Error("cannot write checkpoint: " + tmp);
    out << to_json() << "\n";
    if (!out.flush()) throw Error("short write to checkpoint: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

TrainingCheckpoint TrainingCheckpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

}  // namespace caraml::fault
