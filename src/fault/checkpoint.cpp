#include "fault/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace caraml::fault {

namespace json = telemetry::json;

namespace {

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string hex16(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// The fingerprinted payload: every field except the fingerprint itself, in
/// a fixed member order so the serialization (and thus the hash) is stable.
/// sampler_state is a full 64-bit RNG state and is stored as a hex string —
/// a JSON double would silently lose bits above 2^53.
std::string payload_json(const TrainingCheckpoint& checkpoint) {
  json::Value root{json::Object{}};
  root.set("schema_version", checkpoint.schema_version);
  root.set("step", checkpoint.step);
  root.set("samples_consumed", checkpoint.samples_consumed);
  root.set("optimizer_clock_s", checkpoint.optimizer_clock_s);
  root.set("sampler_state", hex16(checkpoint.sampler_state));
  return json::dump(root);
}

}  // namespace

std::string TrainingCheckpoint::to_json() const {
  const std::string payload = payload_json(*this);
  json::Value root = json::parse(payload);
  root.set("fingerprint", fnv1a_hex(payload));
  return json::dump(root);
}

TrainingCheckpoint TrainingCheckpoint::from_json(const std::string& text) {
  json::Value root{json::Object{}};
  try {
    root = json::parse(text);
  } catch (const std::exception& e) {
    throw ParseError(std::string("checkpoint is not valid JSON: ") + e.what());
  }
  TrainingCheckpoint checkpoint;
  try {
    checkpoint.schema_version =
        static_cast<int>(root.at("schema_version").as_int());
    if (checkpoint.schema_version != TrainingCheckpoint{}.schema_version) {
      throw ParseError("unsupported checkpoint schema_version " +
                       std::to_string(checkpoint.schema_version) +
                       " (expected " +
                       std::to_string(TrainingCheckpoint{}.schema_version) +
                       ")");
    }
    checkpoint.step = root.at("step").as_int();
    checkpoint.samples_consumed = root.at("samples_consumed").as_int();
    checkpoint.optimizer_clock_s = root.at("optimizer_clock_s").as_number();
    const std::string& state_hex = root.at("sampler_state").as_string();
    checkpoint.sampler_state = std::strtoull(state_hex.c_str(), nullptr, 16);
    const std::string stamped = root.at("fingerprint").as_string();
    const std::string expected = fnv1a_hex(payload_json(checkpoint));
    if (stamped != expected) {
      throw ParseError("checkpoint fingerprint mismatch: stamped " + stamped +
                       ", payload hashes to " + expected +
                       " (file corrupted or hand-edited)");
    }
  } catch (const ParseError&) {
    throw;
  } catch (const std::exception& e) {
    throw ParseError(std::string("checkpoint schema violation: ") + e.what());
  }
  return checkpoint;
}

void TrainingCheckpoint::save(const std::string& path) const {
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw Error("cannot write checkpoint: " + tmp);
    out << to_json() << "\n";
    if (!out.flush()) throw Error("short write to checkpoint: " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

TrainingCheckpoint TrainingCheckpoint::load(const std::string& path) {
  // A leftover tmp file means a previous save crashed between write and
  // rename; the rename never happened, so the tmp holds a possibly-partial
  // write nobody will ever promote. Drop it so it cannot accumulate.
  const std::string tmp = path + ".tmp";
  std::error_code ec;
  if (std::filesystem::exists(tmp, ec)) {
    log::warn() << "removing stale checkpoint temp file (crash mid-save?): "
                << tmp;
    std::filesystem::remove(tmp, ec);
  }
  std::ifstream in(path);
  if (!in) throw Error("cannot read checkpoint: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return from_json(buffer.str());
  } catch (const ParseError& e) {
    // gcc-style located diagnostic, same shape src/check renders, so a
    // corrupt checkpoint reads like any other lint/validation failure.
    throw ParseError(path + ":1:1: error: " + e.what() +
                     " [fault/checkpoint-corrupt]");
  }
}

}  // namespace caraml::fault
