// Checkpoint-restart state for the training runners.
//
// On an injected device failure the runner resumes from the last checkpoint
// instead of aborting: the checkpoint records how far training progressed
// (step, consumed samples/tokens, optimizer clock, data-sampler RNG state)
// so remaining-step accounting stays exact across restarts. The on-disk
// format is one JSON object per file, human-readable and stable.
#pragma once

#include <cstdint>
#include <string>

namespace caraml::fault {

struct TrainingCheckpoint {
  int schema_version = 1;
  std::int64_t step = 0;
  std::int64_t samples_consumed = 0;  // tokens (LLM) or images (ResNet)
  double optimizer_clock_s = 0.0;     // accumulated optimizer/update time
  std::uint64_t sampler_state = 0;    // data-sampler RNG/epoch state

  std::string to_json() const;
  static TrainingCheckpoint from_json(const std::string& text);

  /// Write to `path` atomically (tmp file + rename); creates parent dirs.
  void save(const std::string& path) const;
  /// Throws caraml::Error when missing, caraml::ParseError when corrupt.
  static TrainingCheckpoint load(const std::string& path);
};

}  // namespace caraml::fault
