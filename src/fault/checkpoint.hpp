// Checkpoint-restart state for the training runners.
//
// On an injected device failure the runner resumes from the last checkpoint
// instead of aborting: the checkpoint records how far training progressed
// (step, consumed samples/tokens, optimizer clock, data-sampler RNG state)
// so remaining-step accounting stays exact across restarts. The on-disk
// format is one JSON object per file, human-readable and stable.
//
// Schema v2 stamps an FNV-1a content fingerprint over the payload; load()
// verifies it and rejects truncated, bit-flipped or wrong-schema files with
// a located diagnostic ([fault/checkpoint-corrupt]) instead of resuming from
// garbage. Stale "*.tmp" files left by a crash mid-save are cleaned up on
// the next resume.
#pragma once

#include <cstdint>
#include <string>

namespace caraml::fault {

struct TrainingCheckpoint {
  int schema_version = 2;
  std::int64_t step = 0;
  std::int64_t samples_consumed = 0;  // tokens (LLM) or images (ResNet)
  double optimizer_clock_s = 0.0;     // accumulated optimizer/update time
  std::uint64_t sampler_state = 0;    // data-sampler RNG/epoch state

  /// Serialized payload plus a "fingerprint" member: the FNV-1a 64 hash (hex)
  /// of the payload serialization itself.
  std::string to_json() const;
  /// Parses and verifies the content fingerprint. Throws caraml::ParseError
  /// on malformed JSON, wrong schema_version, missing fields, or a
  /// fingerprint mismatch (corruption).
  static TrainingCheckpoint from_json(const std::string& text);

  /// Write to `path` atomically (tmp file + rename); creates parent dirs.
  void save(const std::string& path) const;
  /// Throws caraml::Error when missing; caraml::ParseError with a
  /// "<path>:1:1: error: ... [fault/checkpoint-corrupt]" diagnostic when the
  /// file is corrupt. Removes (and warns about) a stale `path`.tmp from a
  /// crash mid-save.
  static TrainingCheckpoint load(const std::string& path);
};

}  // namespace caraml::fault
