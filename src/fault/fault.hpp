// Deterministic fault injection and resilience policies (DESIGN goal:
// degrade, don't die).
//
// The CARAML paper's automation repeatedly survives flaky fleets — failed
// Slurm jobs, unreadable GH200 power sensors, gcipuinfo gaps, OOM boundaries,
// thermally throttled nodes — yet still emits comparable result tables. This
// module reproduces that behaviour in the simulator: a FaultPlan is a fully
// deterministic schedule of injected faults (seeded RNG or explicit YAML),
// and RetryPolicy/retry_with_backoff provide the bounded-retry machinery the
// runners and the JUBE engine use to survive what the plan injects. Because
// every draw is seed-derived, a degraded run is exactly reproducible: the
// same seed yields byte-identical schedules, retry counts and results.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "yaml/yaml.hpp"

namespace caraml::fault {

enum class FaultKind {
  kDeviceFailure,    // device dies mid-run; the runner restarts from checkpoint
  kThermalThrottle,  // window scaling roofline throughput and TDP by severity
  kLinkDegrade,      // window scaling interconnect bandwidth by severity
  kSensorDropout,    // window during which a power method throws on read()
};

std::string fault_kind_name(FaultKind kind);
FaultKind fault_kind_from_name(const std::string& name);

/// One scheduled fault. Point faults (device failure) have duration 0;
/// window faults carry a duration and a severity in (0, 1]: the fraction of
/// nominal throughput (throttle), bandwidth (link) that remains.
struct FaultEvent {
  FaultKind kind = FaultKind::kThermalThrottle;
  double time_s = 0.0;
  double duration_s = 0.0;
  int device = -1;  // -1 = all devices / sensors
  double severity = 0.5;

  bool active_at(double t) const {
    return t >= time_s && t < time_s + duration_s;
  }
  bool applies_to(int dev) const { return device < 0 || device == dev; }
};

/// Combined slowdown of a device over a time range: service times multiply
/// by `time_factor` (>= 1), power draw by `power_factor` (<= 1).
struct Derate {
  double time_factor = 1.0;
  double power_factor = 1.0;
};

/// Bounded exponential backoff with deterministic, seed-derived jitter.
struct RetryPolicy {
  int max_attempts = 3;        // total tries, including the first
  double base_delay_s = 0.25;  // backoff before the 2nd attempt
  double multiplier = 2.0;     // exponential growth per retry
  double jitter_frac = 0.1;    // +/- fraction of the delay
  double max_delay_s = 60.0;   // backoff ceiling (pre-jitter); growth is
                               // clamped here so huge attempt counts cannot
                               // overflow the delay computation
  std::uint64_t seed = 0;      // jitter stream (deterministic per attempt)

  /// Throws InvalidArgument when the policy is unusable: max_attempts < 1,
  /// non-finite or negative delays, non-positive multiplier, or jitter
  /// outside [0, 1].
  void validate() const;

  /// Backoff before attempt `attempt` (2-based; attempt 1 has no delay),
  /// clamped to max_delay_s before jitter is applied. Deterministic in
  /// (seed, attempt).
  double delay_s(int attempt) const;
};

/// A deterministic fault schedule over a simulated run of `horizon_s`
/// seconds. Either generated from (seed, rate) or loaded from YAML.
struct FaultPlan {
  std::uint64_t seed = 0;
  double rate = 0.0;       // expected faults per simulated minute
  double horizon_s = 0.0;  // run window the schedule covers
  std::vector<FaultEvent> events;  // sorted by time_s
  /// Retry policy carried alongside the schedule (YAML `retry:` section) so
  /// one file can describe both the faults and how to survive them; empty
  /// when the YAML does not set one.
  std::optional<RetryPolicy> retry;

  bool empty() const { return events.empty(); }

  /// Seed-derived schedule: ~`rate` faults per simulated minute over
  /// [0, horizon_s], at least one when rate > 0. Identical inputs produce
  /// byte-identical schedules.
  static FaultPlan generate(std::uint64_t seed, double rate, double horizon_s,
                            int num_devices);

  /// Explicit schedule from YAML (top-level map or under a "fault_plan" key):
  ///   fault_plan:
  ///     seed: 7
  ///     horizon_s: 120
  ///     events:
  ///       - {kind: device_failure, time_s: 12.5, device: 0}
  ///       - {kind: thermal_throttle, time_s: 3, duration_s: 10, severity: 0.6}
  static FaultPlan from_yaml(const yaml::NodePtr& root);
  static FaultPlan from_yaml_file(const std::string& path);

  /// Synthesize a one-event plan (chaos campaigns explore the fault space one
  /// scenario at a time). The horizon is stretched to cover the event.
  static FaultPlan single(std::uint64_t seed, double horizon_s,
                          const FaultEvent& event);

  /// Times of device-failure events within [0, horizon_s], sorted.
  std::vector<double> failure_times() const;

  /// Sensor-dropout windows affecting sensor/device index `device`
  /// (index -1 events hit every sensor), as (start, end) pairs.
  std::vector<std::pair<double, double>> sensor_outages(int device) const;

  /// Instantaneous derate of `device` at time t (throttle windows compound).
  /// `device` = -1 compounds every device's windows: a lockstep data-parallel
  /// run is gated by its slowest member.
  Derate derate_at(int device, double t) const;

  /// Time-weighted average derate of `device` (-1: any device) over [t0, t1].
  Derate average_derate(int device, double t0, double t1) const;

  /// Time-weighted average link-bandwidth derate factor (>= 1) of `device`
  /// (-1: any device) over [t0, t1].
  double average_link_derate(int device, double t0, double t1) const;

  std::size_t count(FaultKind kind) const;

  /// Stable 64-bit FNV-1a hash of the serialized schedule, as hex — equal
  /// fingerprints mean byte-identical fault schedules (determinism tests,
  /// manifest provenance).
  std::string fingerprint() const;

  /// One line per event, for logs and --verbose output.
  std::string summary() const;
};

struct RetryOutcome {
  bool succeeded = false;
  int attempts = 0;
  double total_backoff_s = 0.0;
  std::string last_error;
};

/// Run `body` up to policy.max_attempts times, backing off between attempts
/// via `sleeper` (defaults to a real sleep; tests inject a no-op). Records
/// "fault/retry_attempts" / "fault/retry_exhausted" counters and a
/// "retry/<name>" span per attempt. Never throws: the outcome carries the
/// last error text when every attempt failed.
RetryOutcome retry_with_backoff(
    const std::string& name, const RetryPolicy& policy,
    const std::function<void()>& body,
    const std::function<void(double)>& sleeper = {});

/// How a resilient run ended, plus the accounting that makes the degradation
/// auditable in manifests and result tables.
struct RunReport {
  std::string status = "ok";  // ok | degraded | failed
  int oom_retries = 0;        // micro-batch halvings before the run fit
  int restarts = 0;           // checkpoint-restarts after device failures
  std::int64_t checkpoints_saved = 0;
  std::int64_t steps_total = 0;
  std::int64_t steps_completed = 0;
  std::int64_t steps_replayed = 0;  // redone because of restarts
  double lost_time_s = 0.0;         // replay + restart overhead
  double retry_backoff_s = 0.0;     // backoff spend (subset of lost_time_s)
  double restart_overhead_s = 0.0;  // re-init spend (subset of lost_time_s)
  double checkpoint_overhead_s = 0.0;  // wall time writing checkpoints
  double wall_time_s = 0.0;
  std::uint64_t fault_seed = 0;
  std::string fault_fingerprint;
  std::int64_t fault_events = 0;
  std::vector<std::string> incidents;  // human-readable annotations

  bool completed() const { return steps_completed == steps_total; }
};

}  // namespace caraml::fault
