#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::fault {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceFailure: return "device_failure";
    case FaultKind::kThermalThrottle: return "thermal_throttle";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kSensorDropout: return "sensor_dropout";
  }
  throw Error("unreachable fault kind");
}

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "device_failure") return FaultKind::kDeviceFailure;
  if (name == "thermal_throttle") return FaultKind::kThermalThrottle;
  if (name == "link_degrade") return FaultKind::kLinkDegrade;
  if (name == "sensor_dropout") return FaultKind::kSensorDropout;
  throw InvalidArgument("unknown fault kind: " + name +
                        " (expected device_failure, thermal_throttle, "
                        "link_degrade or sensor_dropout)");
}

FaultPlan FaultPlan::generate(std::uint64_t seed, double rate,
                              double horizon_s, int num_devices) {
  CARAML_CHECK_MSG(rate >= 0.0, "fault rate must be non-negative");
  CARAML_CHECK_MSG(horizon_s > 0.0, "fault-plan horizon must be positive");
  CARAML_CHECK_MSG(num_devices >= 1, "fault plan needs at least one device");
  FaultPlan plan;
  plan.seed = seed;
  plan.rate = rate;
  plan.horizon_s = horizon_s;
  if (rate <= 0.0) return plan;

  // A nonzero rate always injects at least one fault so smoke runs exercise
  // the resilience path even over short horizons.
  const auto count =
      std::max<std::int64_t>(1, std::llround(rate * horizon_s / 60.0));
  Rng rng(seed ^ 0xFA171FA171FA171FULL);
  for (std::int64_t i = 0; i < count; ++i) {
    FaultEvent event;
    // Keep faults away from the very edges of the run so point faults always
    // interrupt useful work.
    event.time_s = rng.uniform(0.05, 0.95) * horizon_s;
    const double kind_draw = rng.next_double();
    if (kind_draw < 0.2) {
      event.kind = FaultKind::kDeviceFailure;
      event.device = static_cast<int>(rng.uniform_int(0, num_devices - 1));
    } else if (kind_draw < 0.6) {
      event.kind = FaultKind::kThermalThrottle;
      event.device = static_cast<int>(rng.uniform_int(0, num_devices - 1));
      event.duration_s = rng.uniform(0.05, 0.2) * horizon_s;
      event.severity = rng.uniform(0.4, 0.9);
    } else if (kind_draw < 0.8) {
      event.kind = FaultKind::kLinkDegrade;
      event.device = static_cast<int>(rng.uniform_int(0, num_devices - 1));
      event.duration_s = rng.uniform(0.05, 0.2) * horizon_s;
      event.severity = rng.uniform(0.2, 0.8);
    } else {
      event.kind = FaultKind::kSensorDropout;
      event.device = static_cast<int>(rng.uniform_int(0, num_devices - 1));
      event.duration_s = rng.uniform(0.1, 0.3) * horizon_s;
    }
    plan.events.push_back(event);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return plan;
}

namespace {

FaultEvent parse_event(const yaml::NodePtr& node) {
  FaultEvent event;
  event.kind = fault_kind_from_name(node->at("kind")->as_string());
  event.time_s = node->get_double_or("time_s", 0.0);
  event.duration_s = node->get_double_or("duration_s", 0.0);
  event.device = static_cast<int>(node->get_int_or("device", -1));
  event.severity = node->get_double_or("severity", 0.5);
  CARAML_CHECK_MSG(event.time_s >= 0.0, "fault time_s must be >= 0");
  CARAML_CHECK_MSG(event.duration_s >= 0.0, "fault duration_s must be >= 0");
  CARAML_CHECK_MSG(event.severity > 0.0 && event.severity <= 1.0,
                   "fault severity must be in (0, 1]");
  return event;
}

}  // namespace

FaultPlan FaultPlan::from_yaml(const yaml::NodePtr& root) {
  CARAML_CHECK_MSG(root && root->is_map(), "fault plan YAML must be a map");
  const yaml::NodePtr body =
      root->has("fault_plan") ? root->at("fault_plan") : root;
  CARAML_CHECK_MSG(body->is_map(), "fault_plan must be a map");
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(body->get_int_or("seed", 0));
  plan.rate = body->get_double_or("rate", 0.0);
  plan.horizon_s = body->get_double_or("horizon_s", 0.0);
  if (const yaml::NodePtr events = body->find("events")) {
    CARAML_CHECK_MSG(events->is_sequence(), "fault_plan events must be a list");
    for (const auto& node : events->items()) {
      plan.events.push_back(parse_event(node));
    }
  }
  if (const yaml::NodePtr retry = body->find("retry")) {
    CARAML_CHECK_MSG(retry->is_map(), "fault_plan retry must be a map");
    RetryPolicy policy;
    policy.max_attempts =
        static_cast<int>(retry->get_int_or("max_attempts", policy.max_attempts));
    policy.base_delay_s = retry->get_double_or("base_delay_s", policy.base_delay_s);
    policy.multiplier = retry->get_double_or("multiplier", policy.multiplier);
    policy.jitter_frac = retry->get_double_or("jitter_frac", policy.jitter_frac);
    policy.max_delay_s = retry->get_double_or("max_delay_s", policy.max_delay_s);
    policy.seed = static_cast<std::uint64_t>(retry->get_int_or("seed", 0));
    policy.validate();
    plan.retry = policy;
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  if (plan.horizon_s <= 0.0) {
    for (const auto& event : plan.events) {
      plan.horizon_s =
          std::max(plan.horizon_s, event.time_s + event.duration_s);
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_yaml_file(const std::string& path) {
  return from_yaml(yaml::parse_file(path));
}

FaultPlan FaultPlan::single(std::uint64_t seed, double horizon_s,
                            const FaultEvent& event) {
  CARAML_CHECK_MSG(horizon_s > 0.0, "fault-plan horizon must be positive");
  CARAML_CHECK_MSG(event.time_s >= 0.0, "fault time_s must be >= 0");
  CARAML_CHECK_MSG(event.duration_s >= 0.0, "fault duration_s must be >= 0");
  CARAML_CHECK_MSG(event.severity > 0.0 && event.severity <= 1.0,
                   "fault severity must be in (0, 1]");
  FaultPlan plan;
  plan.seed = seed;
  plan.horizon_s = std::max(horizon_s, event.time_s + event.duration_s);
  plan.events.push_back(event);
  return plan;
}

std::vector<double> FaultPlan::failure_times() const {
  std::vector<double> times;
  for (const auto& event : events) {
    if (event.kind == FaultKind::kDeviceFailure && event.time_s >= 0.0 &&
        event.time_s <= horizon_s) {
      times.push_back(event.time_s);
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<std::pair<double, double>> FaultPlan::sensor_outages(
    int device) const {
  std::vector<std::pair<double, double>> windows;
  for (const auto& event : events) {
    if (event.kind == FaultKind::kSensorDropout && event.applies_to(device) &&
        event.duration_s > 0.0) {
      windows.emplace_back(event.time_s, event.time_s + event.duration_s);
    }
  }
  return windows;
}

Derate FaultPlan::derate_at(int device, double t) const {
  Derate derate;
  for (const auto& event : events) {
    if (event.kind != FaultKind::kThermalThrottle) continue;
    if (device >= 0 && !event.applies_to(device)) continue;
    if (!event.active_at(t)) continue;
    derate.time_factor /= event.severity;
    derate.power_factor *= event.severity;
  }
  return derate;
}

namespace {

/// Overlap of [t0, t1] with the event's window.
double overlap_s(const FaultEvent& event, double t0, double t1) {
  const double lo = std::max(t0, event.time_s);
  const double hi = std::min(t1, event.time_s + event.duration_s);
  return std::max(0.0, hi - lo);
}

}  // namespace

Derate FaultPlan::average_derate(int device, double t0, double t1) const {
  Derate derate;
  const double span = t1 - t0;
  if (span <= 0.0) return derate;
  // Windows rarely overlap each other; a time-weighted mix of (inside,
  // outside) per event compounds closely enough for the simulator.
  for (const auto& event : events) {
    if (event.kind != FaultKind::kThermalThrottle) continue;
    if (device >= 0 && !event.applies_to(device)) continue;
    const double frac = overlap_s(event, t0, t1) / span;
    if (frac <= 0.0) continue;
    derate.time_factor *= (1.0 - frac) + frac / event.severity;
    derate.power_factor *= (1.0 - frac) + frac * event.severity;
  }
  return derate;
}

double FaultPlan::average_link_derate(int device, double t0, double t1) const {
  double factor = 1.0;
  const double span = t1 - t0;
  if (span <= 0.0) return factor;
  for (const auto& event : events) {
    if (event.kind != FaultKind::kLinkDegrade) continue;
    if (device >= 0 && !event.applies_to(device)) continue;
    const double frac = overlap_s(event, t0, t1) / span;
    if (frac <= 0.0) continue;
    factor *= (1.0 - frac) + frac / event.severity;
  }
  return factor;
}

std::size_t FaultPlan::count(FaultKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const FaultEvent& e) { return e.kind == kind; }));
}

std::string FaultPlan::fingerprint() const {
  std::string serialized;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), "seed=%llu;rate=%.9g;horizon=%.9g;",
                static_cast<unsigned long long>(seed), rate, horizon_s);
  serialized += buffer;
  for (const auto& event : events) {
    std::snprintf(buffer, sizeof(buffer), "%s@%.9g+%.9g/d%d/s%.9g;",
                  fault_kind_name(event.kind).c_str(), event.time_s,
                  event.duration_s, event.device, event.severity);
    serialized += buffer;
  }
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : serialized) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string FaultPlan::summary() const {
  std::string out = "fault plan (seed " + std::to_string(seed) + ", " +
                    std::to_string(events.size()) + " events, fingerprint " +
                    fingerprint() + ")";
  char buffer[160];
  for (const auto& event : events) {
    std::snprintf(buffer, sizeof(buffer),
                  "\n  t=%.2fs %s dev=%d dur=%.2fs severity=%.2f",
                  event.time_s, fault_kind_name(event.kind).c_str(),
                  event.device, event.duration_s, event.severity);
    out += buffer;
  }
  return out;
}

void RetryPolicy::validate() const {
  if (max_attempts < 1) {
    throw InvalidArgument("retry max_attempts must be >= 1, got " +
                          std::to_string(max_attempts));
  }
  if (!std::isfinite(base_delay_s) || base_delay_s < 0.0) {
    throw InvalidArgument("retry base_delay_s must be finite and >= 0");
  }
  if (!std::isfinite(multiplier) || multiplier <= 0.0) {
    throw InvalidArgument("retry multiplier must be finite and > 0");
  }
  if (!std::isfinite(jitter_frac) || jitter_frac < 0.0 || jitter_frac > 1.0) {
    throw InvalidArgument("retry jitter_frac must be in [0, 1]");
  }
  if (!std::isfinite(max_delay_s) || max_delay_s < 0.0) {
    throw InvalidArgument("retry max_delay_s must be finite and >= 0");
  }
}

double RetryPolicy::delay_s(int attempt) const {
  if (attempt <= 1) return 0.0;
  // pow overflows to +inf for large attempt counts; the min() below clamps
  // that (and every merely-large value) to the policy ceiling.
  const double grown =
      base_delay_s * std::pow(multiplier, static_cast<double>(attempt - 2));
  const double base = std::min(grown, max_delay_s);
  if (jitter_frac <= 0.0) return base;
  // splitmix64 over (seed, attempt): jitter is deterministic per attempt, so
  // two runs of the same plan back off identically.
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL *
                               static_cast<std::uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const double unit =
      static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  return base * (1.0 + jitter_frac * (2.0 * unit - 1.0));
}

RetryOutcome retry_with_backoff(const std::string& name,
                                const RetryPolicy& policy,
                                const std::function<void()>& body,
                                const std::function<void(double)>& sleeper) {
  policy.validate();
  auto& attempts_counter =
      telemetry::Registry::global().counter("fault/retry_attempts");
  auto& exhausted_counter =
      telemetry::Registry::global().counter("fault/retry_exhausted");
  RetryOutcome outcome;
  const std::string span_name = "retry/" + name;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    outcome.attempts = attempt;
    if (attempt > 1) {
      const double delay = policy.delay_s(attempt);
      outcome.total_backoff_s += delay;
      attempts_counter.add();
      if (delay > 0.0) {
        if (sleeper) {
          sleeper(delay);
        } else {
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
      }
    }
    try {
      telemetry::Span span(span_name.c_str());
      body();
      outcome.succeeded = true;
      return outcome;
    } catch (const std::exception& e) {
      outcome.last_error = e.what();
    } catch (...) {
      outcome.last_error = "unknown error";
    }
  }
  exhausted_counter.add();
  return outcome;
}

}  // namespace caraml::fault
