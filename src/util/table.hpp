// ASCII table rendering, matching JUBE's compact tabular result output that
// the paper shows after `jube result ... -i last`.
#pragma once

#include <string>
#include <vector>

namespace caraml {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple row/column text table with per-column alignment.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Row must have exactly num_columns() cells.
  void add_row(std::vector<std::string> row);

  /// Default alignment is left for the first column, right for the rest
  /// (numeric results). Override per column.
  void set_align(std::size_t column, Align align);

  /// Render with a header separator, e.g.
  ///   | system | tokens_per_s | energy_wh |
  ///   |--------|--------------|-----------|
  ///   | A100   |      19390.0 |     389.1 |
  std::string render() const;

  /// Render as CSV (no padding), for machine consumption.
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

}  // namespace caraml
