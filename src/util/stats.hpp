// Streaming statistics (Welford) and percentile helpers for benchmark
// reporting.
#pragma once

#include <cstdint>
#include <vector>

namespace caraml {

/// Numerically stable running mean/variance/min/max.
class RunningStats {
 public:
  void add(double value);
  void merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two values.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile (p in [0, 100]) of a copy of `values`.
/// Throws caraml::Error on empty input or p out of range.
double percentile(std::vector<double> values, double p);

}  // namespace caraml
