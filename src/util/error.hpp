// Error handling primitives for CARAML.
//
// Follows the C++ Core Guidelines: exceptions for error reporting (E.2),
// invariants checked with a dedicated macro that throws rather than aborts,
// so library users can recover from misuse in tests.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace caraml {

/// Base class for every error thrown by the CARAML libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its contract.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated device runs out of memory (the paper's "OOM" cells
/// in Fig. 4).
class OutOfMemory : public Error {
 public:
  explicit OutOfMemory(const std::string& what) : Error(what) {}
};

/// Thrown when parsing configuration (YAML / CLI / CSV) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a requested entity (system tag, method name, column) is absent.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CARAML_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace caraml

/// Contract check that throws caraml::Error. Usable in Release builds; the
/// checks guard API misuse, not hot inner loops.
#define CARAML_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr))                                                           \
      ::caraml::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CARAML_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::caraml::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
  } while (0)
