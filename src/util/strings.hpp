// String helpers shared across CARAML, including the jpwr-style
// `%q{VARIABLE}` environment expansion used for result-file suffixes.
#pragma once

#include <string>
#include <vector>

namespace caraml::str {

/// Split `s` on `sep`; empty fields are kept. split("a,,b", ',') -> {a,"",b}.
std::vector<std::string> split(const std::string& s, char sep);

/// Split on any whitespace run; empty fields are dropped.
std::vector<std::string> split_ws(const std::string& s);

std::string join(const std::vector<std::string>& parts, const std::string& sep);

std::string trim(const std::string& s);
std::string ltrim(const std::string& s);
std::string rtrim(const std::string& s);

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);
bool contains(const std::string& s, const std::string& needle);

std::string to_lower(const std::string& s);
std::string to_upper(const std::string& s);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, const std::string& from,
                        const std::string& to);

/// Expand jpwr's `%q{VAR}` escapes from the process environment. Unknown
/// variables expand to "". A literal "%%" produces "%".
std::string expand_env(const std::string& s);

/// Substitute `${name}`-style placeholders from an ordered (name, value) list
/// (JUBE-style parameter substitution). Unknown names are left untouched.
std::string substitute(
    const std::string& s,
    const std::vector<std::pair<std::string, std::string>>& values);

/// Parse helpers; throw caraml::ParseError on malformed input.
long long parse_int(const std::string& s);
double parse_double(const std::string& s);
bool parse_bool(const std::string& s);

}  // namespace caraml::str
