#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CARAML_CHECK_MSG(lo <= hi, "uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t value;
  do {
    value = next_u64();
  } while (value >= limit);
  return lo + static_cast<std::int64_t>(value % range);
}

double Rng::uniform(double lo, double hi) {
  CARAML_CHECK_MSG(lo <= hi, "uniform: lo > hi");
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xA5A5A5A5A5A5A5A5ULL); }

}  // namespace caraml
