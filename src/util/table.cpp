#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace caraml {

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CARAML_CHECK_MSG(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> row) {
  CARAML_CHECK_MSG(row.size() == headers_.size(),
                   "row width does not match header width");
  rows_.push_back(std::move(row));
}

void TextTable::set_align(std::size_t column, Align align) {
  CARAML_CHECK(column < aligns_.size());
  aligns_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_cell = [&](const std::string& cell, std::size_t c) {
    const std::size_t pad = widths[c] - cell.size();
    if (aligns_[c] == Align::kLeft) return cell + std::string(pad, ' ');
    return std::string(pad, ' ') + cell;
  };

  std::ostringstream os;
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << " " << render_cell(headers_[c], c) << " |";
  }
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << render_cell(row[c], c) << " |";
    }
    os << "\n";
  }
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ",";
    os << csv_escape(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << csv_escape(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace caraml
