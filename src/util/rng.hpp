// Deterministic, splittable random number generation (xoshiro256**).
//
// CARAML's synthetic data generators and simulator jitter need reproducible
// streams that can be split per device/worker without correlation.
#pragma once

#include <cstdint>
#include <limits>

namespace caraml {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Derive an independent stream (for per-device generators).
  Rng split();

  // UniformRandomBitGenerator interface so Rng works with std::shuffle.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace caraml
