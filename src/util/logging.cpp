#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "util/error.hpp"

namespace caraml::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::atomic<Format> g_format{Format::kText};
std::mutex g_mutex;

std::string timestamp_utc() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

// Local JSON string escaping (telemetry::json would invert the layering:
// telemetry depends on util).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_format(Format format) {
  g_format.store(format, std::memory_order_relaxed);
}

Format format() { return g_format.load(std::memory_order_relaxed); }

std::string level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "unknown";
}

Level level_from_name(const std::string& name) {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  throw InvalidArgument("unknown log level: " + name);
}

std::string format_name(Format format) {
  switch (format) {
    case Format::kText: return "text";
    case Format::kJson: return "json";
  }
  return "unknown";
}

Format format_from_name(const std::string& name) {
  if (name == "text") return Format::kText;
  if (name == "json") return Format::kJson;
  throw InvalidArgument("unknown log format: " + name);
}

int thread_id() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void write(Level level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string ts = timestamp_utc();
  const int tid = thread_id();
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_format.load(std::memory_order_relaxed) == Format::kJson) {
    std::cerr << "{\"ts\":\"" << ts << "\",\"level\":\"" << level_name(level)
              << "\",\"thread\":" << tid << ",\"msg\":\""
              << json_escape(message) << "\"}\n";
  } else {
    std::cerr << "[" << ts << "] [" << level_name(level) << "] [t" << tid
              << "] " << message << "\n";
  }
}

}  // namespace caraml::log
