#include "util/logging.hpp"

#include <atomic>
#include <iostream>

#include "util/error.hpp"

namespace caraml::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

std::string level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "unknown";
}

Level level_from_name(const std::string& name) {
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  throw InvalidArgument("unknown log level: " + name);
}

void write(Level level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace caraml::log
