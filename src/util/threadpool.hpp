// Fixed-size thread pool with futures and blocking parallel-for primitives.
//
// The pool is the execution substrate for (a) the CPU training stack's
// parallel tensor kernels and (b) the thread-backed "devices" in caraml::par.
//
// Hot compute paths use `parallel_for_range`, which hands each worker a
// contiguous [lo, hi) chunk sized by a caller-provided grain: one callable
// invocation per chunk instead of one `std::function` dispatch per index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace caraml {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>=1). Default: hardware
  /// concurrency, at least 2.
  explicit ThreadPool(std::size_t num_threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;

  /// Grow the pool by one worker. Used to restore capacity after a timed-out
  /// task permanently occupies its worker (jube's detach-on-timeout
  /// semantics): the hung task keeps its thread, the pool keeps its
  /// throughput. Throws after the pool has begun stopping.
  void add_worker();

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [begin, end), chunked over the pool; blocks until
  /// all iterations completed. Exceptions from workers are rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run `fn(lo, hi)` over disjoint chunks covering [begin, end), each chunk
  /// at least `grain` indices (a grain of 0 counts as 1); blocks until all
  /// chunks completed. Chunk boundaries are grain-aligned: every chunk but
  /// the last is an exact multiple of `grain` long and starts at
  /// `begin + c * chunk`; the last chunk absorbs the remainder. The only
  /// chunk ever smaller than `grain` is a whole range shorter than one grain
  /// (which runs inline). The callable is invoked once per chunk, so per-index
  /// dispatch cost is amortized away — this is the API hot kernels use.
  /// Degenerate cases (empty range, single chunk, pool of one) and calls
  /// made from inside a pool worker run inline on the calling thread; the
  /// latter makes nested data-parallelism deadlock-free. Exceptions from
  /// workers are rethrown (first one wins).
  void parallel_for_range(std::size_t begin, std::size_t end,
                          std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  static bool on_worker_thread();

  /// Shared process-wide pool (lazily constructed). Its size honours
  /// CARAML_NUM_THREADS when set (see parse_env_threads), else
  /// default_threads().
  static ThreadPool& global();

  static std::size_t default_threads();

  /// Validate a CARAML_NUM_THREADS value: an integer in [1, 1024]. Throws
  /// caraml::Error with a lint-style message on garbage (empty, non-numeric,
  /// out of range). `text == nullptr` (variable unset) yields
  /// default_threads().
  static std::size_t parse_env_threads(const char* text);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience: parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: parallel_for_range on the global pool.
void parallel_for_range(std::size_t begin, std::size_t end, std::size_t grain,
                        const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace caraml
