// Fixed-size thread pool with futures and a blocking parallel_for.
//
// The pool is the execution substrate for (a) the CPU training stack's
// parallel tensor kernels and (b) the thread-backed "devices" in caraml::par.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace caraml {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>=1). Default: hardware
  /// concurrency, at least 2.
  explicit ThreadPool(std::size_t num_threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;

  /// Grow the pool by one worker. Used to restore capacity after a timed-out
  /// task permanently occupies its worker (jube's detach-on-timeout
  /// semantics): the hung task keeps its thread, the pool keeps its
  /// throughput. Throws after the pool has begun stopping.
  void add_worker();

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run `fn(i)` for i in [begin, end), chunked over the pool; blocks until
  /// all iterations completed. Exceptions from workers are rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Shared process-wide pool (lazily constructed).
  static ThreadPool& global();

  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience: parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace caraml
