#include "util/argparse.hpp"

#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  CARAML_CHECK_MSG(!specs_.count(name), "duplicate option: " + name);
  specs_[name] = Spec{help, false, std::move(default_value)};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  CARAML_CHECK_MSG(!specs_.count(name), "duplicate flag: " + name);
  specs_[name] = Spec{help, true, std::nullopt};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  values_.clear();
  flags_.clear();
  rest_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (str::starts_with(arg, "--")) {
      std::string name = arg.substr(2);
      std::string inline_value;
      bool has_inline = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline = true;
      }
      const auto it = specs_.find(name);
      if (it == specs_.end()) throw ParseError("unknown option: --" + name);
      if (it->second.is_flag) {
        if (has_inline) throw ParseError("flag --" + name + " takes no value");
        flags_[name] = true;
      } else if (has_inline) {
        values_[name] = inline_value;
      } else {
        if (i + 1 >= args.size())
          throw ParseError("option --" + name + " expects a value");
        values_[name] = args[++i];
      }
      continue;
    }
    if (collect_rest_) {
      rest_.assign(args.begin() + static_cast<std::ptrdiff_t>(i), args.end());
      break;
    }
    if (collect_positionals_) {
      rest_.push_back(arg);
      continue;
    }
    throw ParseError("unexpected positional argument: " + arg);
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0 || flags_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const auto spec = specs_.find(name);
  if (spec == specs_.end()) throw NotFound("option not declared: --" + name);
  if (spec->second.default_value) return *spec->second.default_value;
  throw ParseError("required option missing: --" + name);
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

long long ArgParser::get_int(const std::string& name) const {
  return str::parse_int(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return str::parse_double(get(name));
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto spec = specs_.find(name);
  if (spec == specs_.end()) throw NotFound("flag not declared: --" + name);
  CARAML_CHECK_MSG(spec->second.is_flag, "--" + name + " is not a flag");
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.help;
    if (spec.default_value) os << " (default: " << *spec.default_value << ")";
    os << "\n";
  }
  if (collect_rest_) {
    os << "  <command...>\n      application command line to wrap\n";
  }
  return os.str();
}

}  // namespace caraml
