// Minimal thread-safe logging used across the CARAML libraries.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace caraml::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Convert between level and its lower-case name ("debug", "info", ...).
std::string level_name(Level level);
Level level_from_name(const std::string& name);

/// Emit one formatted line ("[info] message") to stderr under a global lock.
void write(Level level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace caraml::log
