// Minimal thread-safe structured logging used across the CARAML libraries.
//
// Lines carry an ISO-8601 UTC timestamp and a small sequential thread id.
// Two output formats, switchable at runtime (CLI: --log-format json):
//   text (default):  [2026-08-06T08:15:42.123Z] [info] [t0] message
//   json:            {"ts":"...","level":"info","thread":0,"msg":"message"}
// The streaming API (log::info() << ...) is unchanged.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace caraml::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Line format: classic text or one JSON object per line.
enum class Format { kText = 0, kJson = 1 };

/// Global log threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Global output format (default: text).
void set_format(Format format);
Format format();

/// Convert between level and its lower-case name ("debug", "info", ...).
std::string level_name(Level level);
Level level_from_name(const std::string& name);

/// Convert between format and its name ("text", "json").
std::string format_name(Format format);
Format format_from_name(const std::string& name);

/// Small sequential id of the calling thread (0 for the first thread that
/// logs, 1 for the second, ...); stable for the thread's lifetime.
int thread_id();

/// Emit one formatted line to stderr under a global lock.
void write(Level level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace caraml::log
