#include "util/units.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::units {

namespace {

std::string format_value(double v, int precision, const std::string& suffix) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%s", precision, v, suffix.c_str());
  return buffer;
}

// Splits "40 GiB" / "96GB" into (number, unit-string).
std::pair<double, std::string> split_number_unit(const std::string& s) {
  const std::string t = str::trim(s);
  std::size_t i = 0;
  while (i < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[i])) || t[i] == '.' ||
          t[i] == '-' || t[i] == '+' || t[i] == 'e' || t[i] == 'E')) {
    // Avoid consuming the 'E' of "EiB": only treat e/E as part of the number
    // when followed by a digit or sign.
    if ((t[i] == 'e' || t[i] == 'E') &&
        !(i + 1 < t.size() && (std::isdigit(static_cast<unsigned char>(t[i + 1])) ||
                               t[i + 1] == '-' || t[i + 1] == '+'))) {
      break;
    }
    ++i;
  }
  if (i == 0) throw ParseError("no numeric value in: " + s);
  const double value = str::parse_double(t.substr(0, i));
  const std::string unit = str::trim(t.substr(i));
  return {value, unit};
}

}  // namespace

std::string format_bytes(double bytes) {
  if (bytes >= kTiB) return format_value(bytes / kTiB, 2, " TiB");
  if (bytes >= kGiB) return format_value(bytes / kGiB, 2, " GiB");
  if (bytes >= kMiB) return format_value(bytes / kMiB, 2, " MiB");
  if (bytes >= kKiB) return format_value(bytes / kKiB, 2, " KiB");
  return format_value(bytes, 0, " B");
}

std::string format_flops(double flops_per_s) {
  if (flops_per_s >= kTera) return format_value(flops_per_s / kTera, 1, " TFLOP/s");
  if (flops_per_s >= kGiga) return format_value(flops_per_s / kGiga, 1, " GFLOP/s");
  if (flops_per_s >= kMega) return format_value(flops_per_s / kMega, 1, " MFLOP/s");
  return format_value(flops_per_s, 0, " FLOP/s");
}

std::string format_bandwidth(double bytes_per_s) {
  if (bytes_per_s >= kTera) return format_value(bytes_per_s / kTera, 1, " TB/s");
  if (bytes_per_s >= kGiga) return format_value(bytes_per_s / kGiga, 1, " GB/s");
  if (bytes_per_s >= kMega) return format_value(bytes_per_s / kMega, 1, " MB/s");
  return format_value(bytes_per_s, 0, " B/s");
}

std::string format_seconds(double seconds) {
  if (seconds >= 3600.0) return format_value(seconds / 3600.0, 2, " h");
  if (seconds >= 60.0) return format_value(seconds / 60.0, 2, " min");
  if (seconds >= 1.0) return format_value(seconds, 3, " s");
  if (seconds >= 1e-3) return format_value(seconds * 1e3, 2, " ms");
  if (seconds >= 1e-6) return format_value(seconds * 1e6, 2, " us");
  return format_value(seconds * 1e9, 1, " ns");
}

std::string format_watts(double watts) { return format_value(watts, 1, " W"); }

std::string format_watt_hours(double wh) { return format_value(wh, 2, " Wh"); }

std::string format_fixed(double value, int precision) {
  return format_value(value, precision, "");
}

double parse_bytes(const std::string& s) {
  static const std::map<std::string, double> factors = {
      {"B", 1.0},        {"KB", 1e3},      {"MB", 1e6},      {"GB", 1e9},
      {"TB", 1e12},      {"KiB", kKiB},    {"MiB", kMiB},    {"GiB", kGiB},
      {"TiB", kTiB},
  };
  auto [value, unit] = split_number_unit(s);
  if (unit.empty()) return value;
  const auto it = factors.find(unit);
  if (it == factors.end()) throw ParseError("unknown byte unit: " + unit);
  return value * it->second;
}

double parse_bandwidth(const std::string& s) {
  static const std::map<std::string, double> factors = {
      {"B/s", 1.0},   {"KB/s", 1e3},  {"MB/s", 1e6},
      {"GB/s", 1e9},  {"TB/s", 1e12},
  };
  auto [value, unit] = split_number_unit(s);
  if (unit.empty()) return value;
  const auto it = factors.find(unit);
  if (it == factors.end()) throw ParseError("unknown bandwidth unit: " + unit);
  return value * it->second;
}

double parse_flops(const std::string& s) {
  static const std::map<std::string, double> factors = {
      {"FLOP/s", 1.0},     {"KFLOP/s", 1e3},  {"MFLOP/s", 1e6},
      {"GFLOP/s", 1e9},    {"TFLOP/s", 1e12}, {"PFLOP/s", 1e15},
  };
  auto [value, unit] = split_number_unit(s);
  if (unit.empty()) return value;
  const auto it = factors.find(unit);
  if (it == factors.end()) throw ParseError("unknown FLOP/s unit: " + unit);
  return value * it->second;
}

double parse_watts(const std::string& s) {
  static const std::map<std::string, double> factors = {
      {"W", 1.0}, {"kW", 1e3}, {"mW", 1e-3},
  };
  auto [value, unit] = split_number_unit(s);
  if (unit.empty()) return value;
  const auto it = factors.find(unit);
  if (it == factors.end()) throw ParseError("unknown watt unit: " + unit);
  return value * it->second;
}

}  // namespace caraml::units
