#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/error.hpp"

namespace caraml::str {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ltrim(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

std::string rtrim(const std::string& s) {
  std::size_t end = s.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(0, end);
}

std::string trim(const std::string& s) { return ltrim(rtrim(s)); }

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string replace_all(std::string s, const std::string& from,
                        const std::string& to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string expand_env(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 1 < s.size() && s[i + 1] == '%') {
      out.push_back('%');
      ++i;
      continue;
    }
    if (s[i] == '%' && i + 2 < s.size() && s[i + 1] == 'q' && s[i + 2] == '{') {
      const std::size_t close = s.find('}', i + 3);
      if (close == std::string::npos) {
        throw ParseError("unterminated %q{...} in: " + s);
      }
      const std::string name = s.substr(i + 3, close - (i + 3));
      const char* value = std::getenv(name.c_str());
      if (value != nullptr) out += value;
      i = close;
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string substitute(
    const std::string& s,
    const std::vector<std::pair<std::string, std::string>>& values) {
  std::string out = s;
  for (const auto& [name, value] : values) {
    out = replace_all(out, "${" + name + "}", value);
  }
  return out;
}

long long parse_int(const std::string& s) {
  const std::string t = trim(s);
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(t, &pos);
    if (pos != t.size()) throw ParseError("trailing characters in int: " + s);
    return v;
  } catch (const std::invalid_argument&) {
    throw ParseError("not an integer: " + s);
  } catch (const std::out_of_range&) {
    throw ParseError("integer out of range: " + s);
  }
}

double parse_double(const std::string& s) {
  const std::string t = trim(s);
  try {
    std::size_t pos = 0;
    const double v = std::stod(t, &pos);
    if (pos != t.size()) throw ParseError("trailing characters in double: " + s);
    return v;
  } catch (const std::invalid_argument&) {
    throw ParseError("not a number: " + s);
  } catch (const std::out_of_range&) {
    throw ParseError("number out of range: " + s);
  }
}

bool parse_bool(const std::string& s) {
  const std::string t = to_lower(trim(s));
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw ParseError("not a boolean: " + s);
}

}  // namespace caraml::str
