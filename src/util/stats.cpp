#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caraml {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / n;
  mean_ += delta * static_cast<double>(other.count_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CARAML_CHECK_MSG(count_ > 0, "min of empty stats");
  return min_;
}

double RunningStats::max() const {
  CARAML_CHECK_MSG(count_ > 0, "max of empty stats");
  return max_;
}

double percentile(std::vector<double> values, double p) {
  CARAML_CHECK_MSG(!values.empty(), "percentile of empty data");
  CARAML_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace caraml
