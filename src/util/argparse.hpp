// Small command-line parser used by the bench/example binaries and the
// jpwr-style CLI wrapper (`--methods`, `--df-out`, `--df-filetype`,
// `--df-suffix` plus a trailing wrapped command).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace caraml {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// --name <value> option; `default_value` empty optional means required
  /// only if queried via `get` without default.
  void add_option(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);

  /// --name boolean flag (no value).
  void add_flag(const std::string& name, const std::string& help);

  /// When enabled, parsing stops at the first positional argument and the
  /// remainder (including that argument) is available via `rest()` — the
  /// jpwr CLI uses this to capture the wrapped application command line.
  void set_collect_rest(bool collect) { collect_rest_ = collect; }

  /// When enabled, positional arguments accumulate into `rest()` while
  /// option parsing continues, so `caraml lint configs --strict` and
  /// `caraml lint --strict configs` are equivalent. Mutually exclusive with
  /// set_collect_rest (which must stop so wrapped-command options pass
  /// through untouched).
  void set_collect_positionals(bool collect) {
    collect_positionals_ = collect;
  }

  /// Parse argv; throws caraml::ParseError on unknown options. Returns false
  /// if --help was requested (help text printed to stdout).
  bool parse(int argc, const char* const* argv);
  bool parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  const std::vector<std::string>& rest() const { return rest_; }

  std::string help() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::optional<std::string> default_value;
  };

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  // declaration order, for help text
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> rest_;
  bool collect_rest_ = false;
  bool collect_positionals_ = false;
};

}  // namespace caraml
