#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace caraml {

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hw == 0 ? 2 : hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  CARAML_CHECK_MSG(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::add_worker() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) throw std::runtime_error("ThreadPool: add_worker after stop");
  workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t num_chunks = std::min(total, size() * 4);
  if (num_chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (total + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace caraml
