#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/error.hpp"

namespace caraml {

namespace {
// Set while a thread is executing inside ThreadPool::worker_loop. Used to run
// nested parallel dispatch inline: a worker that blocks waiting on sub-tasks
// it submitted to its own (possibly fully-blocked) pool can deadlock.
thread_local bool t_on_worker_thread = false;
}  // namespace

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(2, hw == 0 ? 2 : hw);
}

std::size_t ThreadPool::parse_env_threads(const char* text) {
  if (text == nullptr) return default_threads();
  const std::string value(text);
  constexpr std::size_t kMaxThreads = 1024;
  const auto fail = [&value]() {
    throw Error("CARAML_NUM_THREADS: invalid value '" + value +
                "' — expected an integer in [1, 1024] "
                "(unset it to use hardware concurrency)");
  };
  if (value.empty() || value.size() > 5) fail();
  for (const char ch : value) {
    if (ch < '0' || ch > '9') fail();
  }
  const unsigned long parsed = std::stoul(value);
  if (parsed < 1 || parsed > kMaxThreads) fail();
  return static_cast<std::size_t>(parsed);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  CARAML_CHECK_MSG(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::add_worker() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) throw std::runtime_error("ThreadPool: add_worker after stop");
  workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_range(begin, end, /*grain=*/1,
                     [&fn](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) fn(i);
                     });
}

void ThreadPool::parallel_for_range(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  grain = std::max<std::size_t>(1, grain);
  // Up to 4 chunks per worker for load balancing, but never chunks smaller
  // than the grain.
  const std::size_t max_chunks =
      std::min(total, std::max<std::size_t>(1, size() * 4));
  std::size_t num_chunks = std::min(max_chunks, (total + grain - 1) / grain);
  if (num_chunks <= 1 || t_on_worker_thread) {
    fn(begin, end);
    return;
  }
  // Chunk size rounded up to a multiple of the grain so every boundary is
  // grain-aligned; the last chunk absorbs the remainder (and is therefore the
  // only one whose size may exceed — but never undershoot — the grain).
  const std::size_t raw_chunk = (total + num_chunks - 1) / num_chunks;
  const std::size_t chunk = ((raw_chunk + grain - 1) / grain) * grain;
  num_chunks = std::max<std::size_t>(1, total / chunk);
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = c + 1 == num_chunks ? end : lo + chunk;
    futures.push_back(submit([lo, hi, &fn] { fn(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(parse_env_threads(std::getenv("CARAML_NUM_THREADS")));
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

void parallel_for_range(std::size_t begin, std::size_t end, std::size_t grain,
                        const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::global().parallel_for_range(begin, end, grain, fn);
}

}  // namespace caraml
