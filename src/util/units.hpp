// Unit formatting/parsing for the quantities CARAML reports: bytes, FLOP/s,
// bandwidth, seconds, watts, watt-hours and plain throughput rates.
#pragma once

#include <cstdint>
#include <string>

namespace caraml::units {

// Binary byte constants.
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = kKiB * 1024.0;
inline constexpr double kGiB = kMiB * 1024.0;
inline constexpr double kTiB = kGiB * 1024.0;

// Decimal SI constants (used for FLOP/s and link bandwidths, matching vendor
// datasheets quoted in the paper's Fig. 1 / Table I).
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// "1.50 GiB", "512.00 MiB" etc.
std::string format_bytes(double bytes);

/// "312.0 TFLOP/s", "4.0 GFLOP/s".
std::string format_flops(double flops_per_s);

/// "900.0 GB/s" (decimal, matching interconnect datasheets).
std::string format_bandwidth(double bytes_per_s);

/// "1.234 s", "12.3 ms", "45.6 us", "2.1 min", "1.5 h".
std::string format_seconds(double seconds);

/// "350.0 W".
std::string format_watts(double watts);

/// "31.53 Wh".
std::string format_watt_hours(double wh);

/// Fixed-precision float without trailing garbage: format_fixed(1.5, 2) = "1.50".
std::string format_fixed(double value, int precision);

/// Parse "40 GiB", "96GB", "4 TB/s", "312 TFLOP/s", "700 W" into base units
/// (bytes, bytes/s, flop/s, watts). Throws caraml::ParseError.
double parse_bytes(const std::string& s);
double parse_bandwidth(const std::string& s);
double parse_flops(const std::string& s);
double parse_watts(const std::string& s);

/// Joules <-> watt-hours.
inline constexpr double joules_to_wh(double joules) { return joules / 3600.0; }
inline constexpr double wh_to_joules(double wh) { return wh * 3600.0; }

}  // namespace caraml::units
