// A miniature column-oriented DataFrame.
//
// The Python jpwr stores power samples in Pandas DataFrames and exports them
// to CSV/HDF5. This module reproduces the subset of that behaviour CARAML
// needs: typed columns (double / int64 / string), row append, column
// statistics, selection, concatenation and CSV round-tripping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace caraml::df {

/// One cell value.
using Value = std::variant<double, std::int64_t, std::string>;

enum class ColumnType { kDouble, kInt64, kString };

std::string column_type_name(ColumnType type);

/// A typed column: a name plus a homogeneous value vector.
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  std::size_t size() const;

  void push_back(const Value& value);  // throws on type mismatch
  void push_double(double v);
  void push_int(std::int64_t v);
  void push_string(std::string v);

  double as_double(std::size_t row) const;  // numeric columns only
  std::int64_t as_int(std::size_t row) const;
  const std::string& as_string(std::size_t row) const;

  /// Render cell as text (CSV cell / table cell).
  std::string to_text(std::size_t row) const;

  // Aggregations over numeric columns; throw on string columns or empty data.
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

 private:
  std::string name_;
  ColumnType type_;
  std::vector<double> doubles_;
  std::vector<std::int64_t> ints_;
  std::vector<std::string> strings_;
};

class DataFrame {
 public:
  DataFrame() = default;

  /// Declare columns up front (order preserved).
  void add_column(const std::string& name, ColumnType type);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const;
  bool empty() const { return num_rows() == 0; }

  bool has_column(const std::string& name) const;
  const Column& column(const std::string& name) const;
  Column& column(const std::string& name);
  const Column& column_at(std::size_t index) const;
  std::vector<std::string> column_names() const;

  /// Append a full row; values must match declared column count and types.
  void append_row(const std::vector<Value>& values);

  /// Rows where `predicate(row_index)` holds.
  DataFrame filter(const std::vector<std::size_t>& row_indices) const;

  /// New frame with only the given columns.
  DataFrame select(const std::vector<std::string>& names) const;

  /// Append all rows of `other` (schemas must match exactly).
  void concat(const DataFrame& other);

  /// CSV serialization (header row included).
  std::string to_csv() const;
  void to_csv_file(const std::string& path) const;

  /// CSV parsing; numeric-looking columns become kDouble, others kString.
  static DataFrame from_csv(const std::string& text);
  static DataFrame from_csv_file(const std::string& path);

  /// Pretty table (for terminal output).
  std::string to_string(std::size_t max_rows = 20) const;

 private:
  std::vector<Column> columns_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace caraml::df
