#include "df/dataframe.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace caraml::df {

std::string column_type_name(ColumnType type) {
  switch (type) {
    case ColumnType::kDouble: return "double";
    case ColumnType::kInt64: return "int64";
    case ColumnType::kString: return "string";
  }
  return "unknown";
}

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {}

std::size_t Column::size() const {
  switch (type_) {
    case ColumnType::kDouble: return doubles_.size();
    case ColumnType::kInt64: return ints_.size();
    case ColumnType::kString: return strings_.size();
  }
  return 0;
}

void Column::push_back(const Value& value) {
  switch (type_) {
    case ColumnType::kDouble:
      if (const auto* d = std::get_if<double>(&value)) {
        doubles_.push_back(*d);
        return;
      }
      if (const auto* i = std::get_if<std::int64_t>(&value)) {
        doubles_.push_back(static_cast<double>(*i));
        return;
      }
      break;
    case ColumnType::kInt64:
      if (const auto* i = std::get_if<std::int64_t>(&value)) {
        ints_.push_back(*i);
        return;
      }
      break;
    case ColumnType::kString:
      if (const auto* s = std::get_if<std::string>(&value)) {
        strings_.push_back(*s);
        return;
      }
      break;
  }
  throw InvalidArgument("value type mismatch for column '" + name_ + "' (" +
                        column_type_name(type_) + ")");
}

void Column::push_double(double v) { push_back(Value{v}); }
void Column::push_int(std::int64_t v) { push_back(Value{v}); }
void Column::push_string(std::string v) { push_back(Value{std::move(v)}); }

double Column::as_double(std::size_t row) const {
  CARAML_CHECK(row < size());
  switch (type_) {
    case ColumnType::kDouble: return doubles_[row];
    case ColumnType::kInt64: return static_cast<double>(ints_[row]);
    case ColumnType::kString:
      throw InvalidArgument("as_double on string column '" + name_ + "'");
  }
  return 0.0;
}

std::int64_t Column::as_int(std::size_t row) const {
  CARAML_CHECK(row < size());
  switch (type_) {
    case ColumnType::kInt64: return ints_[row];
    case ColumnType::kDouble: return static_cast<std::int64_t>(doubles_[row]);
    case ColumnType::kString:
      throw InvalidArgument("as_int on string column '" + name_ + "'");
  }
  return 0;
}

const std::string& Column::as_string(std::size_t row) const {
  CARAML_CHECK(row < size());
  if (type_ != ColumnType::kString)
    throw InvalidArgument("as_string on numeric column '" + name_ + "'");
  return strings_[row];
}

std::string Column::to_text(std::size_t row) const {
  CARAML_CHECK(row < size());
  switch (type_) {
    case ColumnType::kDouble: {
      std::ostringstream os;
      os.precision(10);
      os << doubles_[row];
      return os.str();
    }
    case ColumnType::kInt64: return std::to_string(ints_[row]);
    case ColumnType::kString: return strings_[row];
  }
  return "";
}

double Column::sum() const {
  if (type_ == ColumnType::kString)
    throw InvalidArgument("sum on string column '" + name_ + "'");
  double total = 0.0;
  for (std::size_t r = 0; r < size(); ++r) total += as_double(r);
  return total;
}

double Column::mean() const {
  CARAML_CHECK_MSG(size() > 0, "mean of empty column '" + name_ + "'");
  return sum() / static_cast<double>(size());
}

double Column::min() const {
  CARAML_CHECK_MSG(size() > 0, "min of empty column '" + name_ + "'");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < size(); ++r) best = std::min(best, as_double(r));
  return best;
}

double Column::max() const {
  CARAML_CHECK_MSG(size() > 0, "max of empty column '" + name_ + "'");
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < size(); ++r) best = std::max(best, as_double(r));
  return best;
}

void DataFrame::add_column(const std::string& name, ColumnType type) {
  CARAML_CHECK_MSG(!has_column(name), "duplicate column '" + name + "'");
  CARAML_CHECK_MSG(num_rows() == 0, "cannot add column to non-empty frame");
  index_[name] = columns_.size();
  columns_.emplace_back(name, type);
}

std::size_t DataFrame::num_rows() const {
  return columns_.empty() ? 0 : columns_.front().size();
}

bool DataFrame::has_column(const std::string& name) const {
  return index_.count(name) > 0;
}

const Column& DataFrame::column(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) throw NotFound("no column '" + name + "'");
  return columns_[it->second];
}

Column& DataFrame::column(const std::string& name) {
  const auto it = index_.find(name);
  if (it == index_.end()) throw NotFound("no column '" + name + "'");
  return columns_[it->second];
}

const Column& DataFrame::column_at(std::size_t i) const {
  CARAML_CHECK(i < columns_.size());
  return columns_[i];
}

std::vector<std::string> DataFrame::column_names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name());
  return names;
}

void DataFrame::append_row(const std::vector<Value>& values) {
  CARAML_CHECK_MSG(values.size() == columns_.size(),
                   "row width mismatch in append_row");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
}

DataFrame DataFrame::filter(const std::vector<std::size_t>& row_indices) const {
  DataFrame out;
  for (const auto& c : columns_) out.add_column(c.name(), c.type());
  for (std::size_t row : row_indices) {
    CARAML_CHECK(row < num_rows());
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (const auto& c : columns_) {
      switch (c.type()) {
        case ColumnType::kDouble: values.emplace_back(c.as_double(row)); break;
        case ColumnType::kInt64: values.emplace_back(c.as_int(row)); break;
        case ColumnType::kString: values.emplace_back(c.as_string(row)); break;
      }
    }
    out.append_row(values);
  }
  return out;
}

DataFrame DataFrame::select(const std::vector<std::string>& names) const {
  DataFrame out;
  for (const auto& name : names) {
    const Column& src = column(name);
    out.add_column(src.name(), src.type());
  }
  for (std::size_t row = 0; row < num_rows(); ++row) {
    std::vector<Value> values;
    for (const auto& name : names) {
      const Column& src = column(name);
      switch (src.type()) {
        case ColumnType::kDouble: values.emplace_back(src.as_double(row)); break;
        case ColumnType::kInt64: values.emplace_back(src.as_int(row)); break;
        case ColumnType::kString: values.emplace_back(src.as_string(row)); break;
      }
    }
    out.append_row(values);
  }
  return out;
}

void DataFrame::concat(const DataFrame& other) {
  CARAML_CHECK_MSG(num_columns() == other.num_columns(),
                   "concat: column count mismatch");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    CARAML_CHECK_MSG(columns_[c].name() == other.columns_[c].name() &&
                         columns_[c].type() == other.columns_[c].type(),
                     "concat: schema mismatch at column " + columns_[c].name());
  }
  for (std::size_t row = 0; row < other.num_rows(); ++row) {
    std::vector<Value> values;
    for (const auto& c : other.columns_) {
      switch (c.type()) {
        case ColumnType::kDouble: values.emplace_back(c.as_double(row)); break;
        case ColumnType::kInt64: values.emplace_back(c.as_int(row)); break;
        case ColumnType::kString: values.emplace_back(c.as_string(row)); break;
      }
    }
    append_row(values);
  }
}

std::string DataFrame::to_csv() const {
  TextTable table(column_names());
  for (std::size_t row = 0; row < num_rows(); ++row) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto& c : columns_) cells.push_back(c.to_text(row));
    table.add_row(std::move(cells));
  }
  return table.render_csv();
}

void DataFrame::to_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << to_csv();
}

namespace {

// Minimal CSV line splitter with double-quote escaping.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}

bool looks_numeric(const std::string& s) {
  if (caraml::str::trim(s).empty()) return false;
  try {
    caraml::str::parse_double(s);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

}  // namespace

DataFrame DataFrame::from_csv(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (caraml::str::trim(line).empty()) continue;
    rows.push_back(split_csv_line(line));
  }
  if (rows.empty()) throw ParseError("from_csv: empty input");
  const auto& header = rows.front();
  DataFrame out;
  // Infer column type from the data rows: numeric iff all values numeric.
  for (std::size_t c = 0; c < header.size(); ++c) {
    bool numeric = rows.size() > 1;
    for (std::size_t r = 1; r < rows.size(); ++r) {
      if (rows[r].size() != header.size())
        throw ParseError("from_csv: ragged row " + std::to_string(r));
      if (!looks_numeric(rows[r][c])) {
        numeric = false;
        break;
      }
    }
    out.add_column(header[c],
                   numeric ? ColumnType::kDouble : ColumnType::kString);
  }
  for (std::size_t r = 1; r < rows.size(); ++r) {
    std::vector<Value> values;
    for (std::size_t c = 0; c < header.size(); ++c) {
      if (out.column_at(c).type() == ColumnType::kDouble) {
        values.emplace_back(caraml::str::parse_double(rows[r][c]));
      } else {
        values.emplace_back(rows[r][c]);
      }
    }
    out.append_row(values);
  }
  return out;
}

DataFrame DataFrame::from_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str());
}

std::string DataFrame::to_string(std::size_t max_rows) const {
  TextTable table(column_names());
  const std::size_t limit = std::min(max_rows, num_rows());
  for (std::size_t row = 0; row < limit; ++row) {
    std::vector<std::string> cells;
    for (const auto& c : columns_) cells.push_back(c.to_text(row));
    table.add_row(std::move(cells));
  }
  std::string out = table.render();
  if (limit < num_rows()) {
    out += "... (" + std::to_string(num_rows() - limit) + " more rows)\n";
  }
  return out;
}

}  // namespace caraml::df
