// Quickstart: run one CARAML benchmark point on a simulated accelerator,
// then measure its power with jpwr exactly the way the paper's §III-A4
// context-manager example does.
//
//   $ ./build/examples/quickstart
//
// Steps:
//  1. run the LLM-training benchmark (800M GPT, batch 512) on a simulated
//     GH200 node;
//  2. replay the resulting device power rail through a jpwr PowerScope
//     (background sampling thread, 100 "ms" period on a scaled clock);
//  3. print the sample DataFrame and the integrated energy table.
#include <iostream>
#include <thread>

#include "core/llm.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  // --- 1. one benchmark point ------------------------------------------------
  core::LlmRunConfig config;
  config.system_tag = "GH200";  // single GH200 superchip (JURECA eval node)
  config.global_batch = 512;
  const core::LlmRunResult result = core::run_llm_gpu(config);

  std::cout << "CARAML LLM benchmark on " << result.system << "\n"
            << "  global batch        : " << result.global_batch << "\n"
            << "  iteration time      : "
            << units::format_seconds(result.iteration_time_s) << "\n"
            << "  throughput          : "
            << units::format_fixed(result.tokens_per_s_per_gpu, 1)
            << " tokens/s/GPU\n"
            << "  achieved MFU        : "
            << units::format_fixed(result.mfu * 100.0, 1) << " %\n"
            << "  avg device power    : "
            << units::format_watts(result.avg_power_per_gpu_w) << "\n"
            << "  energy (1 h train)  : "
            << units::format_watt_hours(result.energy_per_gpu_wh) << "\n"
            << "  efficiency          : "
            << units::format_fixed(result.tokens_per_wh, 0)
            << " tokens/Wh\n\n";

  // --- 2. jpwr-style measurement ----------------------------------------------
  // met_list = [pynvml-sim over the simulated GPU rail]; the scaled clock
  // replays the simulated iteration 200x faster than wall time, so the
  // 0.5 ms wall sampling period equals the paper's 100 ms simulated period.
  std::vector<power::MethodPtr> met_list = {
      power::make_pynvml_sim({*result.device0_trace})};
  const double replay_speed = 200.0;
  power::PowerScope measured_scope(met_list, /*interval_ms=*/0.5,
                                   std::make_shared<power::ScaledClock>(
                                       replay_speed));
  // "application_call()": wait one simulated iteration of wall time.
  std::this_thread::sleep_for(std::chrono::duration<double>(
      result.iteration_time_s / replay_speed));
  measured_scope.stop();

  // --- 3. DataFrames ------------------------------------------------------------
  std::cout << "jpwr samples (head):\n"
            << measured_scope.df().to_string(8) << "\n";
  const auto energy = measured_scope.energy();
  std::cout << "jpwr energy report:\n" << energy.energy.to_string() << "\n";
  return 0;
}
