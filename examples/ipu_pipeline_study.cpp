// Deep dive into the Graphcore result (paper Table II): visualize how the
// pipeline bubble produces the IPU's throughput curve, run a *real* threaded
// pipeline over CPU stage modules, and export the simulated execution as a
// Chrome trace (open build artifacts in chrome://tracing).
#include <filesystem>
#include <iostream>

#include "core/llm.hpp"
#include "nn/layers.hpp"
#include "par/pipeline.hpp"
#include "sim/trace_export.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  // --- 1. Table II from the bubble's point of view ---------------------------
  std::cout << "Table II through the pipeline-bubble lens "
               "(4 IPU stages + host I/O stage, 32-token micro-batches):\n";
  TextTable table({"batch (tokens)", "micro-batches", "bubble", "tokens/s",
                   "% of saturation"});
  const double saturation = core::run_llm_ipu(16384).tokens_per_s /
                            (1.0 - core::run_llm_ipu(16384).pipeline_bubble);
  for (std::int64_t batch : {64, 256, 1024, 4096, 16384}) {
    const auto result = core::run_llm_ipu(batch);
    table.add_row({std::to_string(batch), std::to_string(batch / 32),
                   units::format_fixed(result.pipeline_bubble, 3),
                   units::format_fixed(result.tokens_per_s, 2),
                   units::format_fixed(result.tokens_per_s / saturation * 100,
                                       1)});
  }
  std::cout << table.render() << "\n";

  // --- 2. schedule comparison --------------------------------------------------
  std::cout << "GPipe vs 1F1B timelines (4 stages, 8 micro-batches, "
               "backward = 2x forward):\n";
  for (auto kind : {par::PipelineScheduleKind::kGPipe,
                    par::PipelineScheduleKind::kOneFOneB}) {
    const auto schedule = par::build_pipeline_schedule(kind, 4, 8, 2.0);
    std::cout << (kind == par::PipelineScheduleKind::kGPipe ? "  GPipe"
                                                            : "  1F1B ")
              << ": makespan " << schedule.makespan << " slots, bubble "
              << units::format_fixed(schedule.bubble_fraction * 100, 1)
              << " %\n";
  }
  std::cout << "\n";

  // --- 3. a real threaded pipeline over CPU stages ------------------------------
  Rng rng(3);
  auto stage1 = std::make_shared<nn::Linear>(16, 32, rng);
  auto stage2 = std::make_shared<nn::Gelu>();
  auto stage3 = std::make_shared<nn::Linear>(32, 16, rng);
  std::vector<nn::Tensor> micros;
  for (int m = 0; m < 8; ++m) micros.push_back(nn::Tensor::randn({4, 16}, rng));
  const auto outputs = par::run_pipeline_inference({stage1, stage2, stage3},
                                                   micros);
  std::cout << "threaded 3-stage pipeline processed " << outputs.size()
            << " micro-batches (first output row sum: "
            << tensor::sum(outputs.front()) << ")\n\n";

  // --- 4. chrome trace of the simulated pipeline --------------------------------
  sim::TaskGraph graph;
  std::vector<sim::Resource*> stages;
  for (int s = 0; s < 5; ++s) {
    stages.push_back(graph.add_resource("ipu_stage" + std::to_string(s)));
  }
  for (int m = 0; m < 8; ++m) {
    sim::TaskId prev = sim::kInvalidTask;
    for (int s = 0; s < 5; ++s) {
      const auto task = graph.add_task(stages[static_cast<std::size_t>(s)],
                                       0.163, 0.05,
                                       "micro" + std::to_string(m));
      if (prev != sim::kInvalidTask) graph.add_dependency(prev, task);
      prev = task;
    }
  }
  const double makespan = graph.run();
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "caraml_ipu_pipeline.json")
          .string();
  sim::write_chrome_trace(graph, trace_path);
  std::cout << "simulated pipeline makespan: "
            << units::format_seconds(makespan) << " ((8 + 5 - 1) x 163 ms)\n"
            << "chrome trace written to " << trace_path
            << " (open in chrome://tracing)\n\n"
            << "per-stage utilization:\n"
            << sim::utilization_summary(graph).to_string();
  return 0;
}
