// The paper's user workflow end-to-end (§III-B / Appendix A):
//
//   jube run llm_training/llm_benchmark_nvidia_amd.yaml --tag GH200
//   jube result ... -i last
//
// reproduced with the in-process JUBE engine: load the YAML script, pass a
// system tag, expand the parameter permutations into workpackages, execute
// the registered CARAML actions, extract figures of merit with patterns,
// and print the compact result table.
#include <iostream>
#include <set>

#include "core/caraml.hpp"
#include "util/argparse.hpp"

#ifndef CARAML_CONFIG_DIR
#define CARAML_CONFIG_DIR "configs"
#endif

int main(int argc, char** argv) {
  using namespace caraml;

  ArgParser parser("jube_workflow", "run a CARAML JUBE script");
  parser.add_option("script", "JUBE YAML script",
                    std::string(CARAML_CONFIG_DIR
                                "/llm_benchmark_nvidia_amd.yaml"));
  parser.add_option("tag", "system tag (A100, H100, WAIH100, GH200, JEDI, "
                           "MI250, GC200)",
                    std::string("GH200"));
  if (!parser.parse(argc, argv)) return 0;

  // jube run <script> --tag <tag>
  jube::Benchmark benchmark =
      jube::Benchmark::from_yaml_file(parser.get("script"));
  for (const auto& pattern : core::caraml_patterns()) {
    benchmark.add_pattern(pattern);
  }
  jube::ActionRegistry registry;
  core::register_caraml_actions(registry);

  const std::set<std::string> tags = {parser.get("tag")};
  std::cout << "jube run " << parser.get("script") << " --tag "
            << parser.get("tag") << "\n";
  const jube::RunResult result = benchmark.run(registry, tags);
  std::cout << "executed " << result.workpackages.size()
            << " workpackages\n\n";

  // jube result ... -i last
  std::cout << "jube result (benchmark '" << benchmark.name() << "'):\n";
  const bool llm = benchmark.name().find("llm") != std::string::npos;
  const std::vector<std::string> columns =
      llm ? std::vector<std::string>{"system", "global_batch", "tokens_per_s",
                                     "energy_wh", "tokens_per_wh"}
          : std::vector<std::string>{"system", "global_batch", "images_per_s",
                                     "energy_wh", "images_per_wh"};
  std::cout << result.table(columns).render();
  return 0;
}
