// Real end-to-end LLM training on the CPU substrate — the miniature version
// of the paper's workload path: synthetic OSCAR-like text -> GPT-2-style BPE
// tokenizer -> GPT decoder trained data-parallel across thread "devices"
// with gradient all-reduce, measured by jpwr's real /proc/stat method.
#include <iostream>

#include "data/bpe.hpp"
#include "data/synthetic.hpp"
#include "nn/gpt.hpp"
#include "nn/optim.hpp"
#include "par/data_parallel.hpp"
#include "power/methods_host.hpp"
#include "power/scope.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  // --- corpus + tokenizer (paper §III-A1: OSCAR + GPT-2 tokenizer) -----------
  Rng rng(2024);
  const std::string corpus = data::synthetic_oscar_text(4000, rng);
  data::BpeTokenizer tokenizer;
  tokenizer.train(corpus, /*vocab_size=*/384);
  const auto ids = tokenizer.encode(corpus);
  std::cout << "corpus: " << corpus.size() << " bytes -> " << ids.size()
            << " BPE tokens (vocab " << tokenizer.vocab_size() << ", "
            << tokenizer.num_merges() << " merges)\n";

  std::vector<std::int32_t> tokens(ids.begin(), ids.end());
  data::TokenStream stream(std::move(tokens));

  // --- data-parallel GPT training over 2 thread-devices ----------------------
  nn::GptModelConfig model_config;
  model_config.vocab_size = static_cast<std::int64_t>(tokenizer.vocab_size());
  model_config.block_size = 32;
  model_config.num_layers = 2;
  model_config.num_heads = 2;
  model_config.embed_dim = 32;

  const int world = 2;
  const std::int64_t micro_batch = 4;
  const std::int64_t seq = 24;

  power::PowerScope scope(
      {std::make_shared<power::ProcStatMethod>()}, /*interval_ms=*/50.0);

  par::DataParallelTrainer trainer(world, [&](int rank) {
    Rng init(7);  // same init on every rank; broadcast keeps them in sync
    auto model = std::make_shared<nn::GptModel>(model_config, init);
    auto optimizer = std::make_shared<nn::Adam>(model->parameters(), 3e-3f);
    (void)rank;
    return par::DataParallelTrainer::Replica{model, optimizer};
  });

  const std::int64_t steps = 30;
  auto result = trainer.train(steps, [&](int rank, std::int64_t step,
                                         par::DataParallelTrainer::Replica&
                                             replica) {
    Rng batch_rng(static_cast<std::uint64_t>(rank * 1000 + step));
    const auto batch = stream.sample_batch(micro_batch, seq, batch_rng);
    auto* gpt = dynamic_cast<nn::GptModel*>(replica.model.get());
    return gpt->train_step(batch.inputs, batch.targets);
  });
  scope.stop();

  std::cout << "\ndata-parallel GPT training (" << world << " thread-devices, "
            << steps << " steps):\n";
  for (std::int64_t s = 0; s < steps; s += 5) {
    std::cout << "  step " << s << ": loss "
              << units::format_fixed(result.losses[static_cast<std::size_t>(s)], 4)
              << "\n";
  }
  std::cout << "  final loss: "
            << units::format_fixed(result.losses.back(), 4) << " (initial "
            << units::format_fixed(result.losses.front(), 4) << ")\n"
            << "  samples/s (aggregate): "
            << units::format_fixed(result.samples_per_second, 1) << "\n\n";

  const auto energy = scope.energy();
  std::cout << "jpwr host-power measurement during training:\n"
            << energy.energy.to_string() << "\n";

  // Round-trip sanity: decode(encode(x)) == x.
  const std::string sample = corpus.substr(0, 60);
  std::cout << "tokenizer round-trip: \""
            << tokenizer.decode(tokenizer.encode(sample)) << "\"\n";

  // Sample from the trained model (a fresh replica trained the same way
  // would match rank 0's weights; retrain one briefly for the demo).
  Rng init(7);
  nn::GptModel generator(model_config, init);
  nn::Adam gen_optimizer(generator.parameters(), 3e-3f);
  for (std::int64_t s = 0; s < 60; ++s) {
    Rng batch_rng(static_cast<std::uint64_t>(s));
    const auto batch = stream.sample_batch(micro_batch, seq, batch_rng);
    gen_optimizer.zero_grad();
    generator.train_step(batch.inputs, batch.targets);
    gen_optimizer.step();
  }
  Rng sample_rng(99);
  const auto prompt_ids = tokenizer.encode(corpus.substr(0, 12));
  std::vector<std::int64_t> prompt(prompt_ids.begin(), prompt_ids.end());
  const auto generated = generator.generate(prompt, 24, 0.8f, sample_rng);
  std::vector<std::int32_t> out_ids(generated.begin(), generated.end());
  std::cout << "model sample after 60 steps: \"" << tokenizer.decode(out_ids)
            << "\"\n";
  return 0;
}
