// Hyperparameter exploration the way the paper motivates CARAML ("rapidly
// explore an architecture's (hyper-)parameter space", §II-D): sweep the
// global batch size on two systems and compare throughput, energy, and the
// efficiency crossover.
#include <iostream>

#include "core/llm.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace caraml;

  ArgParser parser("llm_sweep", "batch-size sweep of the LLM benchmark");
  parser.add_option("system-a", "first system tag", std::string("GH200"));
  parser.add_option("system-b", "second system tag", std::string("A100"));
  parser.add_option("micro-batch", "micro batch size", std::string("4"));
  if (!parser.parse(argc, argv)) return 0;

  const std::string a = parser.get("system-a");
  const std::string b = parser.get("system-b");

  TextTable table({"batch", a + " tok/s/GPU", b + " tok/s/GPU", "speedup",
                   a + " tok/Wh", b + " tok/Wh"});
  for (std::int64_t batch = 16; batch <= 4096; batch *= 2) {
    core::LlmRunConfig config_a;
    config_a.system_tag = a;
    config_a.global_batch = batch;
    config_a.micro_batch = parser.get_int("micro-batch");
    core::LlmRunConfig config_b = config_a;
    config_b.system_tag = b;

    const auto ra = core::run_llm_gpu(config_a);
    const auto rb = core::run_llm_gpu(config_b);
    if (ra.oom || rb.oom) {
      table.add_row({std::to_string(batch), ra.oom ? "OOM" : "-",
                     rb.oom ? "OOM" : "-", "-", "-", "-"});
      continue;
    }
    table.add_row(
        {std::to_string(batch),
         units::format_fixed(ra.tokens_per_s_per_gpu, 1),
         units::format_fixed(rb.tokens_per_s_per_gpu, 1),
         units::format_fixed(
             ra.tokens_per_s_per_gpu / rb.tokens_per_s_per_gpu, 2) + "x",
         units::format_fixed(ra.tokens_per_wh, 0),
         units::format_fixed(rb.tokens_per_wh, 0)});
  }
  std::cout << "LLM batch-size sweep, 800M GPT (paper Fig. 2 slice):\n"
            << table.render();
  return 0;
}
