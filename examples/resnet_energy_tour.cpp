// Energy tour: the ResNet50 benchmark across all seven Table-I systems at
// one batch size (the purchase-decision view the paper's introduction
// motivates), followed by a *real* tiny ResNet trained on label-conditioned
// synthetic images to show the actual training code path.
#include <iostream>

#include "core/resnet.hpp"
#include "data/synthetic.hpp"
#include "nn/optim.hpp"
#include "nn/resnet.hpp"
#include "topo/specs.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  // --- part 1: simulated cross-accelerator comparison -------------------------
  std::cout << "ResNet50, global batch 256, one device per system:\n";
  TextTable table({"system", "images/s", "avg W", "Wh/epoch", "images/Wh"});
  for (const auto& tag : topo::SystemRegistry::instance().tags()) {
    core::ResnetRunConfig config;
    config.system_tag = tag;
    config.devices = 1;
    config.global_batch = 256;
    const auto result = core::run_resnet(config);
    table.add_row({result.system,
                   units::format_fixed(result.images_per_s_total, 1),
                   units::format_fixed(result.avg_power_per_device_w, 1),
                   units::format_fixed(result.energy_per_epoch_wh, 1),
                   units::format_fixed(result.images_per_wh, 0)});
  }
  std::cout << table.render() << "\n";

  // --- part 2: real CPU training of a tiny ResNet -----------------------------
  Rng rng(11);
  data::SyntheticImageDataset dataset(/*classes=*/4, /*channels=*/3,
                                      /*h=*/16, /*w=*/16, /*seed=*/5);
  nn::ResNet model(nn::ResNetConfig::tiny(dataset.num_classes()), rng);
  nn::Sgd optimizer(model.parameters(), /*lr=*/0.05f, /*momentum=*/0.9f);

  std::cout << "training a tiny ResNet ("
            << model.num_parameters() << " parameters) on synthetic images:\n";
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 25; ++step) {
    const auto batch = dataset.sample_batch(16, rng);
    optimizer.zero_grad();
    const float loss = model.train_step(batch.images, batch.labels);
    nn::clip_grad_norm(model.parameters(), 5.0);
    optimizer.step();
    if (step == 0) first_loss = loss;
    last_loss = loss;
    if (step % 5 == 0) {
      std::cout << "  step " << step << ": loss "
                << units::format_fixed(loss, 4) << "\n";
    }
  }
  std::cout << "  loss " << units::format_fixed(first_loss, 4) << " -> "
            << units::format_fixed(last_loss, 4) << "\n";

  const auto eval = dataset.sample_batch(64, rng);
  const auto logits = model.forward(eval.images);
  std::cout << "  eval accuracy on 64 fresh samples: "
            << units::format_fixed(nn::accuracy(logits, eval.labels) * 100.0,
                                   1)
            << " % (chance: 25 %)\n";
  return 0;
}
