#!/usr/bin/env python3
"""Record and compare google-benchmark JSON results against a committed baseline.

Stdlib-only perf-regression harness for the tensor microbenchmarks:

    # produce fresh numbers (single-thread for machine-independent gating)
    CARAML_NUM_THREADS=1 ./build/bench/micro_tensor_ops \
        --benchmark_format=json --benchmark_out=bench.json

    # snapshot them as the committed baseline
    python3 scripts/bench_perf.py record bench.json BENCH_tensor.json \
        --note "post kernel-library rewrite"

    # CI: fail when any benchmark got >25% slower than the baseline
    python3 scripts/bench_perf.py compare BENCH_tensor.json bench.json \
        --max-regression 0.25

Comparison uses real_time (the kernels run on a thread pool; CPU time of the
benchmark thread measures dispatch, not compute). Benchmarks present in only
one of the two files are reported but never fail the check, so adding or
retiring benchmarks does not require a lockstep baseline update.
"""
import argparse
import json
import sys


def load_benchmarks(path):
    """Return {name: real_time_ns} from a google-benchmark JSON file."""
    with open(path) as handle:
        data = json.load(handle)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            sys.exit(f"{path}: unknown time_unit '{unit}' in {bench['name']}")
        out[bench["name"]] = float(bench["real_time"]) * scale
    if not out:
        sys.exit(f"{path}: no benchmarks found")
    return out


def cmd_record(args):
    benchmarks = load_benchmarks(args.results)
    baseline = {
        "note": args.note,
        "time_unit": "ns",
        "metric": "real_time",
        "benchmarks": {name: round(ns, 3) for name, ns in sorted(benchmarks.items())},
    }
    with open(args.baseline, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"recorded {len(benchmarks)} benchmarks -> {args.baseline}")
    return 0


def cmd_compare(args):
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    base = baseline["benchmarks"]
    current = load_benchmarks(args.results)

    failures = []
    width = max(len(name) for name in sorted(set(base) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(set(base) | set(current)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  {current[name]:>10.0f}ns  (new)")
            continue
        if name not in current:
            print(f"{name:<{width}}  {base[name]:>10.0f}ns  {'-':>12}  (missing)")
            continue
        ratio = current[name] / base[name]
        delta = ratio - 1.0
        marker = ""
        if delta > args.max_regression:
            marker = "  REGRESSION"
            failures.append((name, delta))
        print(
            f"{name:<{width}}  {base[name]:>10.0f}ns  {current[name]:>10.0f}ns"
            f"  {delta:+7.1%}{marker}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}:"
        )
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.max_regression:.0%}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="snapshot benchmark JSON as a baseline")
    rec.add_argument("results", help="google-benchmark JSON output")
    rec.add_argument("baseline", help="baseline file to write")
    rec.add_argument("--note", default="", help="provenance note stored in the baseline")
    rec.set_defaults(func=cmd_record)

    cmp_ = sub.add_parser("compare", help="compare benchmark JSON to a baseline")
    cmp_.add_argument("baseline", help="committed baseline file")
    cmp_.add_argument("results", help="fresh google-benchmark JSON output")
    cmp_.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fail when current/baseline - 1 exceeds this (default 0.25)",
    )
    cmp_.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
