#!/usr/bin/env python3
"""Record and compare google-benchmark JSON results against a committed baseline.

Stdlib-only perf-regression harness for the tensor microbenchmarks:

    # produce fresh numbers (single-thread for machine-independent gating)
    CARAML_NUM_THREADS=1 ./build/bench/micro_tensor_ops \
        --benchmark_format=json --benchmark_out=bench.json

    # snapshot them as the committed baseline
    python3 scripts/bench_perf.py record bench.json BENCH_tensor.json \
        --note "post kernel-library rewrite"

    # CI: fail when any benchmark got >25% slower than the baseline
    python3 scripts/bench_perf.py compare BENCH_tensor.json bench.json \
        --max-regression 0.25

    # CI: fail when the multi-thread speedup curve collapses — e.g. a grain
    # bug that serializes the pool shows up here even if absolute single-run
    # times stay within the compare tolerance
    python3 scripts/bench_perf.py scaling \
        BENCH_tensor.json BENCH_tensor_mt.json st.json mt.json --max-drop 0.20

    # CI: fail when a bf16/int8 kernel's speedup over its fp32 twin drops
    # >20% below the committed baseline. Pairing is by name: a benchmark
    # containing "Bf16" or "Int8" gates against the benchmark named the same
    # minus that token (BM_MatmulBf16Wide/4096 <-> BM_MatmulWide/4096).
    python3 scripts/bench_perf.py dtype-speedup \
        BENCH_tensor_dtype.json fresh.json --max-drop 0.20

Comparison uses real_time (the kernels run on a thread pool; CPU time of the
benchmark thread measures dispatch, not compute). Benchmarks present in only
one of the two files are reported but never fail the check, so adding or
retiring benchmarks does not require a lockstep baseline update. All
subcommands accept either raw google-benchmark JSON or a baseline previously
written by `record`.
"""
import argparse
import json
import sys


def load_benchmarks(path):
    """Return {name: real_time_ns} from benchmark or baseline JSON.

    Accepts either raw google-benchmark output (a list of benchmark dicts) or
    a baseline file written by `record` (a flat {name: ns} mapping), so the
    scaling check can mix committed baselines with fresh CI runs.
    """
    with open(path) as handle:
        data = json.load(handle)
    benches = data.get("benchmarks", [])
    if isinstance(benches, dict):  # `record` baseline: already {name: ns}
        out = {name: float(ns) for name, ns in benches.items()}
        if not out:
            sys.exit(f"{path}: no benchmarks found")
        return out
    out = {}
    for bench in benches:
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None:
            sys.exit(f"{path}: benchmark entry is missing its 'name' key")
        if "real_time" not in bench:
            sys.exit(f"{path}: benchmark '{name}' is missing its 'real_time' key")
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            sys.exit(f"{path}: unknown time_unit '{unit}' in {name}")
        out[name] = float(bench["real_time"]) * scale
    if not out:
        sys.exit(f"{path}: no benchmarks found")
    return out


def cmd_record(args):
    benchmarks = load_benchmarks(args.results)
    baseline = {
        "note": args.note,
        "time_unit": "ns",
        "metric": "real_time",
        "benchmarks": {name: round(ns, 3) for name, ns in sorted(benchmarks.items())},
    }
    with open(args.baseline, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"recorded {len(benchmarks)} benchmarks -> {args.baseline}")
    return 0


def cmd_compare(args):
    base = load_benchmarks(args.baseline)
    current = load_benchmarks(args.results)

    failures = []
    width = max(len(name) for name in sorted(set(base) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(set(base) | set(current)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>12}  {current[name]:>10.0f}ns  (new)")
            continue
        if name not in current:
            print(f"{name:<{width}}  {base[name]:>10.0f}ns  {'-':>12}  (missing)")
            continue
        ratio = current[name] / base[name]
        delta = ratio - 1.0
        marker = ""
        if delta > args.max_regression:
            marker = "  REGRESSION"
            failures.append((name, delta))
        print(
            f"{name:<{width}}  {base[name]:>10.0f}ns  {current[name]:>10.0f}ns"
            f"  {delta:+7.1%}{marker}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%}:"
        )
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.max_regression:.0%}")
    return 0


def cmd_scaling(args):
    base_st = load_benchmarks(args.baseline_st)
    base_mt = load_benchmarks(args.baseline_mt)
    cur_st = load_benchmarks(args.results_st)
    cur_mt = load_benchmarks(args.results_mt)

    # Only benchmarks present in all four files carry a comparable speedup;
    # one-sided benches are reported but never fail, matching `compare`.
    names = sorted(set(base_st) & set(base_mt) & set(cur_st) & set(cur_mt))
    skipped = sorted((set(base_st) | set(base_mt) | set(cur_st) | set(cur_mt)) - set(names))
    if not names:
        sys.exit("scaling: no benchmark appears in all four files")

    failures = []
    width = max(len(name) for name in names)
    print(f"{'benchmark':<{width}}  {'base MT/ST':>10}  {'cur MT/ST':>10}  delta")
    for name in names:
        base_speedup = base_st[name] / base_mt[name]
        cur_speedup = cur_st[name] / cur_mt[name]
        delta = cur_speedup / base_speedup - 1.0
        marker = ""
        if cur_speedup < base_speedup * (1.0 - args.max_drop):
            marker = "  SCALING LOSS"
            failures.append((name, delta))
        print(
            f"{name:<{width}}  {base_speedup:>9.2f}x  {cur_speedup:>9.2f}x"
            f"  {delta:+7.1%}{marker}"
        )
    for name in skipped:
        print(f"{name:<{width}}  (not in all four files, skipped)")

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) lost more than "
            f"{args.max_drop:.0%} of their multi-thread speedup:"
        )
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no benchmark lost more than {args.max_drop:.0%} of its speedup")
    return 0


def dtype_pairs(names):
    """Yield (dtype_bench, fp32_partner) for every Bf16/Int8 benchmark name."""
    for name in sorted(names):
        for token in ("Bf16", "Int8"):
            if token in name:
                yield name, name.replace(token, "", 1)
                break


def cmd_dtype_speedup(args):
    base = load_benchmarks(args.baseline)
    current = load_benchmarks(args.results)

    pairs = list(dtype_pairs(base))
    if not pairs:
        sys.exit(f"{args.baseline}: no Bf16/Int8 benchmark to gate")
    # Unlike compare/scaling, a missing half of a tagged pair is an error, not
    # a skip: silently dropping the fp32 anchor (or the dtype bench) would
    # disarm the gate without failing anything.
    for name, partner in pairs:
        for key, path, mapping in (
            (partner, args.baseline, base),
            (name, args.results, current),
            (partner, args.results, current),
        ):
            if key not in mapping:
                sys.exit(
                    f"{path}: missing benchmark '{key}' needed to gate the "
                    f"dtype speedup of '{name}'"
                )

    failures = []
    width = max(len(name) for name, _ in pairs)
    print(f"{'benchmark':<{width}}  {'base vs fp32':>12}  {'cur vs fp32':>12}  delta")
    for name, partner in pairs:
        base_speedup = base[partner] / base[name]
        cur_speedup = current[partner] / current[name]
        delta = cur_speedup / base_speedup - 1.0
        marker = ""
        if cur_speedup < base_speedup * (1.0 - args.max_drop):
            marker = "  SPEEDUP LOSS"
            failures.append((name, delta))
        print(
            f"{name:<{width}}  {base_speedup:>11.2f}x  {cur_speedup:>11.2f}x"
            f"  {delta:+7.1%}{marker}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} dtype benchmark(s) lost more than "
            f"{args.max_drop:.0%} of their speedup over fp32:"
        )
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(
        f"\nOK: no dtype benchmark lost more than {args.max_drop:.0%} of its "
        "speedup over fp32"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="snapshot benchmark JSON as a baseline")
    rec.add_argument("results", help="google-benchmark JSON output")
    rec.add_argument("baseline", help="baseline file to write")
    rec.add_argument("--note", default="", help="provenance note stored in the baseline")
    rec.set_defaults(func=cmd_record)

    cmp_ = sub.add_parser("compare", help="compare benchmark JSON to a baseline")
    cmp_.add_argument("baseline", help="committed baseline file")
    cmp_.add_argument("results", help="fresh google-benchmark JSON output")
    cmp_.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="fail when current/baseline - 1 exceeds this (default 0.25)",
    )
    cmp_.set_defaults(func=cmd_compare)

    sca = sub.add_parser(
        "scaling",
        help="compare the MT/ST speedup per benchmark against a baseline pair",
    )
    sca.add_argument("baseline_st", help="committed single-thread baseline")
    sca.add_argument("baseline_mt", help="committed multi-thread baseline")
    sca.add_argument("results_st", help="fresh single-thread benchmark JSON")
    sca.add_argument("results_mt", help="fresh multi-thread benchmark JSON")
    sca.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="fail when a benchmark's MT/ST speedup falls below "
        "baseline * (1 - this) (default 0.20)",
    )
    sca.set_defaults(func=cmd_scaling)

    dts = sub.add_parser(
        "dtype-speedup",
        help="gate the bf16/int8 speedup over fp32 name-pairs against a baseline",
    )
    dts.add_argument("baseline", help="committed baseline with the dtype pairs")
    dts.add_argument("results", help="fresh google-benchmark JSON output")
    dts.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="fail when a pair's dtype/fp32 speedup falls below "
        "baseline * (1 - this) (default 0.20)",
    )
    dts.set_defaults(func=cmd_dtype_speedup)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
