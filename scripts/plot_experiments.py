#!/usr/bin/env python3
"""Plot the CSVs produced by `caraml export` as paper-style figures.

Usage:
    ./build/src/core/caraml export --out experiments_csv
    python3 scripts/plot_experiments.py experiments_csv [output_dir]

Produces fig2.png (three stacked panels, log-x batch axis), fig3.png, and
one heatmap PNG per fig4_<TAG>.csv — the same shapes as the paper's Figs.
2-4. Requires matplotlib; exits with a clear message if it is missing.
"""
import csv
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def plot_series_panels(rows, metrics, titles, out_path, value_key="system"):
    systems = sorted({r[value_key] for r in rows})
    fig, axes = plt.subplots(len(metrics), 1, figsize=(7, 3.2 * len(metrics)),
                             sharex=True)
    if len(metrics) == 1:
        axes = [axes]
    for axis, metric, title in zip(axes, metrics, titles):
        for system in systems:
            points = [(int(r["global_batch"]), float(r[metric]))
                      for r in rows
                      if r[value_key] == system and r["status"] == "ok"]
            if not points:
                continue
            points.sort()
            axis.plot([p[0] for p in points], [p[1] for p in points],
                      marker="o", markersize=3, label=system)
        axis.set_xscale("log", base=2)
        axis.set_ylabel(title)
        axis.grid(True, alpha=0.3)
    axes[0].legend(fontsize=7, ncol=2)
    axes[-1].set_xlabel("global batch size")
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    plt.close(fig)
    print(f"wrote {out_path}")


def plot_heatmap(rows, out_path, title):
    devices = sorted({int(r["devices"]) for r in rows})
    batches = sorted({int(r["global_batch"]) for r in rows})
    grid = [[float("nan")] * len(batches) for _ in devices]
    for r in rows:
        d = devices.index(int(r["devices"]))
        b = batches.index(int(r["global_batch"]))
        grid[d][b] = (float(r["images_per_s"])
                      if r["status"] == "ok" else float("nan"))
    fig, axis = plt.subplots(figsize=(7, 0.6 * len(devices) + 1.5))
    image = axis.imshow(grid, aspect="auto", cmap="viridis", origin="lower")
    axis.set_xticks(range(len(batches)), [str(b) for b in batches])
    axis.set_yticks(range(len(devices)), [str(d) for d in devices])
    axis.set_xlabel("global batch size")
    axis.set_ylabel("accelerators")
    axis.set_title(title)
    for d in range(len(devices)):
        for b in range(len(batches)):
            value = grid[d][b]
            text = "OOM" if value != value else f"{value:.0f}"
            axis.text(b, d, text, ha="center", va="center", fontsize=6,
                      color="white")
    fig.colorbar(image, ax=axis, label="images/s")
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    plt.close(fig)
    print(f"wrote {out_path}")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    in_dir = Path(sys.argv[1])
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else in_dir
    out_dir.mkdir(parents=True, exist_ok=True)

    fig2 = in_dir / "fig2.csv"
    if fig2.exists():
        plot_series_panels(
            read_csv(fig2),
            ["tokens_per_s_per_gpu", "energy_wh_per_gpu_1h", "tokens_per_wh"],
            ["tokens/s/GPU", "Wh/GPU (1 h)", "tokens/Wh"],
            out_dir / "fig2.png")
    fig3 = in_dir / "fig3.csv"
    if fig3.exists():
        plot_series_panels(
            read_csv(fig3),
            ["images_per_s", "energy_wh_per_epoch", "images_per_wh"],
            ["images/s", "Wh/epoch", "images/Wh"],
            out_dir / "fig3.png")
    for path in sorted(in_dir.glob("fig4_*.csv")):
        tag = path.stem.replace("fig4_", "")
        plot_heatmap(read_csv(path), out_dir / f"fig4_{tag}.png",
                     f"ResNet50 throughput — {tag}")


if __name__ == "__main__":
    main()
