#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "tensor/fused.hpp"
#include "tensor/gemm.hpp"
#include "tensor/reference.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::tensor {
namespace {

// Naive reference GEMM.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

// Naive reference conv2d (NCHW, OCHW weights).
Tensor naive_conv2d(const Tensor& input, const Tensor& weight,
                    const Conv2dArgs& args) {
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  const std::int64_t oh = (h + 2 * args.padding - kh) / args.stride + 1;
  const std::int64_t ow = (w + 2 * args.padding - kw) / args.stride + 1;
  Tensor out({n, o, oh, ow});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t oc = 0; oc < o; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = oy * args.stride + ky - args.padding;
                const std::int64_t ix = ox * args.stride + kx - args.padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(
                           input[((img * c + ic) * h + iy) * w + ix]) *
                       weight[((oc * c + ic) * kh + ky) * kw + kx];
              }
            }
          }
          out[((img * o + oc) * oh + oy) * ow + ox] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

// --- construction / shape ---------------------------------------------------------

TEST(Tensor, ZerosAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[2], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0}), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::arange(6);
  Tensor r = t.reshape({2, 3});
  EXPECT_EQ(r.at({1, 0}), 3.0f);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, Transpose2d) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor tt = t.transpose2d();
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.at({2, 1}), t.at({1, 2}));
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng a(3), b(3);
  const Tensor x = Tensor::randn({16}, a);
  const Tensor y = Tensor::randn({16}, b);
  expect_close(x, y, 0.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), Error);
}

// --- elementwise ------------------------------------------------------------------

TEST(Elementwise, AddSubMulScale) {
  const Tensor a({2}, {1.0f, 2.0f});
  const Tensor b({2}, {3.0f, 5.0f});
  expect_close(add(a, b), Tensor({2}, {4.0f, 7.0f}));
  expect_close(sub(b, a), Tensor({2}, {2.0f, 3.0f}));
  expect_close(mul(a, b), Tensor({2}, {3.0f, 10.0f}));
  expect_close(scale(a, 2.0f), Tensor({2}, {2.0f, 4.0f}));
}

TEST(Elementwise, ShapeMismatchThrows) {
  EXPECT_THROW(add(Tensor({2}), Tensor({3})), Error);
}

TEST(Elementwise, Axpy) {
  Tensor y({2}, {1.0f, 1.0f});
  axpy(y, 2.0f, Tensor({2}, {3.0f, 4.0f}));
  expect_close(y, Tensor({2}, {7.0f, 9.0f}));
}

TEST(Elementwise, ReluAndBackward) {
  const Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  expect_close(relu(x), Tensor({4}, {0.0f, 0.0f, 2.0f, 0.0f}));
  const Tensor g({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  expect_close(relu_backward(x, g), Tensor({4}, {0.0f, 0.0f, 1.0f, 0.0f}));
}

TEST(Elementwise, GeluValues) {
  const Tensor x({3}, {-2.0f, 0.0f, 2.0f});
  const Tensor y = gelu(x);
  EXPECT_NEAR(y[0], -0.0454f, 1e-3);
  EXPECT_NEAR(y[1], 0.0f, 1e-6);
  EXPECT_NEAR(y[2], 1.9546f, 1e-3);
}

TEST(Elementwise, GeluGradientMatchesFiniteDifference) {
  Rng rng(5);
  const Tensor x = Tensor::randn({32}, rng);
  const Tensor ones = Tensor::ones({32});
  const Tensor grad = gelu_backward(x, ones);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float fd = (gelu(xp)[i] - gelu(xm)[i]) / (2.0f * eps);
    EXPECT_NEAR(grad[i], fd, 2e-3) << "index " << i;
  }
}

// --- reductions -------------------------------------------------------------------

TEST(Reductions, SumMeanMaxAbs) {
  const Tensor t({4}, {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_FLOAT_EQ(sum(t), -2.0f);
  EXPECT_FLOAT_EQ(mean(t), -0.5f);
  EXPECT_FLOAT_EQ(max_abs(t), 4.0f);
}

TEST(Reductions, ArgmaxRows) {
  const Tensor t({2, 3}, {1.0f, 5.0f, 2.0f, 9.0f, 0.0f, 3.0f});
  const auto idx = argmax_rows(t);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

// --- matmul ------------------------------------------------------------------------

class MatmulSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(42);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close(matmul(a, b), naive_matmul(a, b),
               1e-3f * static_cast<float>(k));
}

TEST_P(MatmulSizes, NtEqualsTransposedOperand) {
  const auto [m, k, n] = GetParam();
  Rng rng(43);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor bt = Tensor::randn({n, k}, rng);
  expect_close(matmul_nt(a, bt), matmul(a, bt.transpose2d()),
               1e-3f * static_cast<float>(k));
}

TEST_P(MatmulSizes, TnEqualsTransposedOperand) {
  const auto [m, k, n] = GetParam();
  Rng rng(44);
  const Tensor at = Tensor::randn({k, m}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close(matmul_tn(at, b), matmul(at.transpose2d(), b),
               1e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Tensor, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 31, 13),
                      std::make_tuple(64, 32, 96),
                      std::make_tuple(128, 64, 128)));

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), Error);
  EXPECT_THROW(matmul_nt(Tensor({2, 3}), Tensor({4, 4})), Error);
  EXPECT_THROW(matmul_tn(Tensor({3, 2}), Tensor({4, 4})), Error);
}

TEST(Matmul, IdentityIsNoOp) {
  Rng rng(7);
  const Tensor a = Tensor::randn({5, 5}, rng);
  Tensor eye({5, 5});
  for (int i = 0; i < 5; ++i) eye[i * 5 + i] = 1.0f;
  expect_close(matmul(a, eye), a);
}

// --- softmax -----------------------------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  Rng rng(9);
  const Tensor x = Tensor::randn({7, 11}, rng, 3.0f);
  const Tensor y = softmax_rows(x);
  for (std::int64_t r = 0; r < 7; ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < 11; ++c) total += y[r * 11 + c];
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor x({1, 3}, {1000.0f, 1001.0f, 999.0f});
  const Tensor y = softmax_rows(x);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y[1], y[0]);
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  Rng rng(13);
  const Tensor x = Tensor::randn({2, 5}, rng);
  const Tensor g = Tensor::randn({2, 5}, rng);
  const Tensor y = softmax_rows(x);
  const Tensor dx = softmax_rows_backward(y, g);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const Tensor yp = softmax_rows(xp), ym = softmax_rows(xm);
    double fd = 0.0;
    for (std::int64_t j = 0; j < x.numel(); ++j) {
      fd += static_cast<double>(yp[j] - ym[j]) / (2.0 * eps) * g[j];
    }
    EXPECT_NEAR(dx[i], fd, 2e-3) << "index " << i;
  }
}

// --- conv2d ------------------------------------------------------------------------

struct ConvCase {
  int n, c, h, o, k, stride, padding;
};
class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, MatchesNaiveReference) {
  const ConvCase p = GetParam();
  Rng rng(21);
  const Tensor input = Tensor::randn({p.n, p.c, p.h, p.h}, rng);
  const Tensor weight = Tensor::randn({p.o, p.c, p.k, p.k}, rng);
  Conv2dArgs args;
  args.stride = p.stride;
  args.padding = p.padding;
  expect_close(conv2d(input, weight, args), naive_conv2d(input, weight, args),
               1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Tensor, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 5, 1, 3, 1, 1},
                      ConvCase{2, 3, 8, 4, 3, 1, 1},
                      ConvCase{1, 2, 9, 3, 3, 2, 1},
                      ConvCase{2, 4, 7, 2, 1, 1, 0},
                      ConvCase{1, 3, 12, 5, 7, 2, 3},
                      ConvCase{3, 2, 6, 2, 3, 3, 0}));

TEST(Conv2d, BackwardInputMatchesFiniteDifference) {
  Rng rng(23);
  const Tensor input = Tensor::randn({1, 2, 5, 5}, rng);
  const Tensor weight = Tensor::randn({3, 2, 3, 3}, rng);
  Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  const Tensor out = conv2d(input, weight, args);
  const Tensor g = Tensor::ones(out.shape());
  const Tensor dinput = conv2d_backward_input(g, weight, input.shape(), args);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < input.numel(); i += 7) {
    Tensor ip = input, im = input;
    ip[i] += eps;
    im[i] -= eps;
    const float fd =
        (sum(conv2d(ip, weight, args)) - sum(conv2d(im, weight, args))) /
        (2.0f * eps);
    EXPECT_NEAR(dinput[i], fd, 5e-2) << "index " << i;
  }
}

TEST(Conv2d, BackwardWeightMatchesFiniteDifference) {
  Rng rng(25);
  const Tensor input = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor weight = Tensor::randn({2, 2, 3, 3}, rng);
  Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  const Tensor out = conv2d(input, weight, args);
  const Tensor g = Tensor::ones(out.shape());
  const Tensor dweight =
      conv2d_backward_weight(g, input, weight.shape(), args);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < weight.numel(); i += 5) {
    Tensor wp = weight, wm = weight;
    wp[i] += eps;
    wm[i] -= eps;
    const float fd =
        (sum(conv2d(input, wp, args)) - sum(conv2d(input, wm, args))) /
        (2.0f * eps);
    EXPECT_NEAR(dweight[i], fd, 5e-2) << "index " << i;
  }
}

TEST(Conv2d, ChannelMismatchThrows) {
  Conv2dArgs args;
  EXPECT_THROW(conv2d(Tensor({1, 3, 4, 4}), Tensor({2, 4, 3, 3}), args),
               Error);
}

TEST(Im2col, ShapeAndContent) {
  // 1x1x3x3 input, 2x2 kernel, stride 1, no padding -> 4 patches of 4.
  Tensor input = Tensor::arange(9).reshape({1, 1, 3, 3});
  Conv2dArgs args;
  const Tensor cols = im2col(input, 2, 2, args);
  ASSERT_EQ(cols.dim(0), 4);
  ASSERT_EQ(cols.dim(1), 4);
  // First patch: rows 0-1, cols 0-1 -> {0, 1, 3, 4}.
  EXPECT_EQ(cols[0], 0.0f);
  EXPECT_EQ(cols[1], 1.0f);
  EXPECT_EQ(cols[2], 3.0f);
  EXPECT_EQ(cols[3], 4.0f);
}

// --- pooling ------------------------------------------------------------------------

TEST(MaxPool, ForwardAndIndices) {
  Tensor input = Tensor::arange(16).reshape({1, 1, 4, 4});
  std::vector<std::int64_t> indices;
  const Tensor out = maxpool2d(input, 2, &indices);
  ASSERT_EQ(out.numel(), 4);
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[3], 15.0f);
  EXPECT_EQ(indices[3], 15);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Tensor input = Tensor::arange(16).reshape({1, 1, 4, 4});
  std::vector<std::int64_t> indices;
  const Tensor out = maxpool2d(input, 2, &indices);
  const Tensor g = Tensor::ones(out.shape());
  const Tensor dinput = maxpool2d_backward(g, input.shape(), indices);
  EXPECT_EQ(dinput[5], 1.0f);
  EXPECT_EQ(dinput[0], 0.0f);
  EXPECT_NEAR(sum(dinput), 4.0f, 1e-6);
}

// --- kernel equivalence vs reference namespace ------------------------------
//
// The optimized GEMM packs into MR=6 x NR=16 tiles with MC/KC/NC cache
// blocking; prime and degenerate dimensions exercise every ragged-edge path
// (partial tiles in m and n, partial KC slices, m=1, k=1) in both the direct
// and the blocked/packed regimes.

void expect_close_rel(const Tensor& got, const Tensor& want,
                      float rel_tol = 1e-4f) {
  ASSERT_EQ(got.shape(), want.shape());
  const float scale = std::max(1.0f, max_abs(want));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], rel_tol * scale) << "at flat index " << i;
  }
}

struct GemmShape {
  std::int64_t m, k, n;
};

class GemmEquivalence : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmEquivalence, MatmulMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(42);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close_rel(matmul(a, b), reference::matmul(a, b));
}

TEST_P(GemmEquivalence, MatmulNtMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(43);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({n, k}, rng);
  expect_close_rel(matmul_nt(a, b), reference::matmul_nt(a, b));
}

TEST_P(GemmEquivalence, MatmulTnMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(44);
  const Tensor a = Tensor::randn({k, m}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close_rel(matmul_tn(a, b), reference::matmul_tn(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    PartialTileShapes, GemmEquivalence,
    ::testing::Values(GemmShape{1, 1, 1},      // single element
                      GemmShape{17, 19, 23},   // primes, direct path
                      GemmShape{6, 16, 16},    // exact single tile
                      GemmShape{97, 101, 103},  // primes, blocked path
                      GemmShape{1, 300, 200},  // m=1 through the blocked path
                      GemmShape{64, 1, 700},   // k=1 through the blocked path
                      GemmShape{129, 257, 65},  // ragged tiles + partial KC
                      GemmShape{5, 2048, 3},   // deep k, tiny m/n
                      GemmShape{997, 64, 48}),  // tall m: many parallel chunks
                                                // with MR-rounded grains
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

TEST(KernelEquivalence, SoftmaxMatchesReference) {
  Rng rng(7);
  const Tensor a = Tensor::randn({37, 53}, rng, 3.0f);
  expect_close_rel(softmax_rows(a), reference::softmax_rows(a));
}

TEST(KernelEquivalence, Conv2dMatchesReference) {
  Rng rng(8);
  const Tensor input = Tensor::randn({2, 3, 9, 7}, rng);
  const Tensor weight = Tensor::randn({5, 3, 3, 3}, rng);
  Conv2dArgs args;
  args.stride = 2;
  args.padding = 1;
  expect_close_rel(conv2d(input, weight, args),
                   reference::conv2d(input, weight, args));
}

// --- NaN/Inf propagation ----------------------------------------------------
//
// Regression test for the old zero-skip "optimization" (`if (a == 0)
// continue`): 0 * NaN is NaN and 0 * Inf is NaN, so a zero operand must not
// short-circuit the multiply.

TEST(GemmNanPropagation, ZeroTimesNanIsNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const float poison : {nan, inf}) {
    Tensor a({2, 3});  // all zeros
    Tensor b({3, 2});  // all zeros
    b[0] = poison;     // b(0, 0)
    const Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c[0])) << "matmul dropped 0*" << poison;
    EXPECT_FALSE(std::isnan(c[1]));

    Tensor bt({2, 3});  // matmul_nt: b stored [n, k]
    bt[0] = poison;     // bt(0, 0)
    const Tensor c_nt = matmul_nt(a, bt);
    EXPECT_TRUE(std::isnan(c_nt[0])) << "matmul_nt dropped 0*" << poison;
    EXPECT_FALSE(std::isnan(c_nt[3]));

    Tensor at({3, 2});  // matmul_tn: a stored [k, m]
    Tensor bn({3, 2});
    bn[0] = poison;  // bn(0, 0)
    const Tensor c_tn = matmul_tn(at, bn);
    EXPECT_TRUE(std::isnan(c_tn[0])) << "matmul_tn dropped 0*" << poison;
    EXPECT_FALSE(std::isnan(c_tn[1]));
  }
}

TEST(GemmNanPropagation, NanInputPoisonsBlockedPath) {
  // Large enough to take the blocked/packed kernel, not the direct loop.
  const std::int64_t n = 96;
  Rng rng(11);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  a[5 * n + 7] = std::numeric_limits<float>::quiet_NaN();
  const Tensor c = matmul(a, b);
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(c[5 * n + j])) << "column " << j;
  }
  EXPECT_FALSE(std::isnan(c[0]));
}

// --- workspace --------------------------------------------------------------

TEST(WorkspaceTest, SlabIsReusedAcrossTakes) {
  Workspace workspace;
  const float* first = nullptr;
  {
    Workspace::Buffer buffer = workspace.take(1000);
    ASSERT_GE(buffer.size(), 1000u);
    first = buffer.data();
    EXPECT_EQ(workspace.idle_slabs(), 0u);
  }
  EXPECT_EQ(workspace.idle_slabs(), 1u);
  {
    // A smaller request must reuse the parked slab, not allocate a new one.
    Workspace::Buffer buffer = workspace.take(500);
    EXPECT_EQ(buffer.data(), first);
    EXPECT_EQ(workspace.idle_slabs(), 0u);
  }
  EXPECT_EQ(workspace.idle_slabs(), 1u);
}

TEST(WorkspaceTest, TakeZeroedClearsRecycledContents) {
  Workspace workspace;
  {
    Workspace::Buffer buffer = workspace.take(64);
    for (std::size_t i = 0; i < 64; ++i) buffer.data()[i] = 3.0f;
  }
  Workspace::Buffer buffer = workspace.take_zeroed(64);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(buffer.data()[i], 0.0f);
}

TEST(WorkspaceTest, BestFitPrefersSmallestSufficientSlab) {
  Workspace workspace;
  const float* small = nullptr;
  {
    Workspace::Buffer big = workspace.take(4096);
    Workspace::Buffer little = workspace.take(128);
    small = little.data();
  }
  EXPECT_EQ(workspace.idle_slabs(), 2u);
  Workspace::Buffer buffer = workspace.take(100);
  EXPECT_EQ(buffer.data(), small);
}

TEST(WorkspaceTest, LocalIsPerThreadSingleton) {
  Workspace& a = Workspace::local();
  Workspace& b = Workspace::local();
  EXPECT_EQ(&a, &b);
}

// --- softmax degenerate shapes ----------------------------------------------

TEST(Softmax, ZeroColumnInputThrows) {
  EXPECT_THROW(softmax_rows(Tensor({3, 0})), Error);
  EXPECT_THROW(softmax_rows_backward(Tensor({3, 0}), Tensor({3, 0})), Error);
}

// --- GEMM epilogue -----------------------------------------------------------
//
// The fused epilogue must be bit-identical to running the separate passes
// (bias add, gelu, mask multiply) over the finished GEMM output: it applies
// the very same scalar operations, merely during the write-back. Shapes cover
// the direct path, and a blocked shape with several KC slices and several
// parallel row chunks (the epilogue must fire exactly once per element, on
// the final KC slice only).

struct EpilogueCase {
  std::int64_t m, k, n;
};

class GemmEpilogueEquivalence : public ::testing::TestWithParam<EpilogueCase> {
};

TEST_P(GemmEpilogueEquivalence, BiasGeluMaskMatchSeparatePasses) {
  const auto [m, k, n] = GetParam();
  Rng rng(314);
  const Tensor x = Tensor::randn({m, k}, rng);
  const Tensor w = Tensor::randn({n, k}, rng);  // used transposed (nt)
  const Tensor bias = Tensor::randn({n}, rng);
  Tensor mask({m, n});
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.next_double() < 0.25 ? 0.0f : 4.0f / 3.0f;
  }

  // Separate passes: GEMM, then bias, then gelu, then mask.
  Tensor want = matmul_nt(x, w);
  Tensor want_pre({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      want_pre[i * n + j] = want[i * n + j] + bias[j];
    }
  }
  Tensor want_out = gelu(want_pre);
  for (std::int64_t i = 0; i < want_out.numel(); ++i) want_out[i] *= mask[i];

  Tensor got(Shape{m, n});
  Tensor got_pre(Shape{m, n});
  detail::GemmEpilogue epilogue;
  epilogue.bias = bias.data();
  epilogue.gelu = true;
  epilogue.dropout_mask = mask.data();
  epilogue.pre_activation = got_pre.data();
  detail::gemm(false, true, m, n, k, x.data(), k, w.data(), k, got.data(), n,
               epilogue);

  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want_out[i]) << "output at flat index " << i;
    ASSERT_EQ(got_pre[i], want_pre[i]) << "pre-activation at flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, GemmEpilogueEquivalence,
    ::testing::Values(EpilogueCase{7, 9, 11},     // direct path
                      EpilogueCase{150, 300, 80},  // blocked: 2 KC slices,
                                                   // several row chunks
                      EpilogueCase{1, 1, 1}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

TEST(GemmEpilogueTest, AppliedToInitialValueWhenKIsZero) {
  const std::int64_t m = 3, n = 5;
  Tensor c(Shape{m, n});  // zeros
  const Tensor bias({n}, {1.0f, -2.0f, 0.5f, 3.0f, -0.25f});
  detail::GemmEpilogue epilogue;
  epilogue.bias = bias.data();
  detail::gemm(false, false, m, n, 0, nullptr, 1, nullptr, 1, c.data(), n,
               epilogue);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[i * n + j], bias[j]);
    }
  }
}

TEST(FusedLinearOps, MatchUnfusedComposition) {
  Rng rng(99);
  const Tensor x = Tensor::randn({13, 10}, rng);
  const Tensor w = Tensor::randn({7, 10}, rng);
  const Tensor bias = Tensor::randn({7}, rng);

  Tensor want = matmul_nt(x, w);
  for (std::int64_t i = 0; i < 13; ++i) {
    for (std::int64_t j = 0; j < 7; ++j) want[i * 7 + j] += bias[j];
  }
  expect_close(fused::linear(x, w, &bias), want, 0.0f);

  Tensor pre;
  const Tensor got_gelu = fused::linear_gelu(x, w, &bias, &pre);
  expect_close(pre, want, 0.0f);
  expect_close(got_gelu, gelu(want), 0.0f);

  Tensor mask({13, 7});
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = i % 3 == 0 ? 0.0f : 1.5f;
  }
  expect_close(fused::linear_dropout(x, w, &bias, mask), mul(want, mask),
               0.0f);
}

// --- fused causal attention vs naive oracle ---------------------------------
//
// The oracle recomputes attention per (b, h) in double precision straight
// from the definition (masked softmax over j <= i), reading the same packed
// qkv layout the fused kernel consumes. Shapes cover T == 1, prime T below
// one tile, T crossing the kAttentionBlock boundary with a ragged last tile,
// few and many (b, h) pairs relative to the pool, and prime head_dim.

struct AttentionShape {
  std::int64_t batch, heads, time, embed;
};

Tensor naive_causal_attention(const Tensor& qkv, const AttentionShape& s) {
  const std::int64_t hd = s.embed / s.heads;
  const std::int64_t stride = 3 * s.embed;
  const double scale = 1.0 / std::sqrt(static_cast<double>(hd));
  Tensor out({s.batch * s.time, s.embed});
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t h = 0; h < s.heads; ++h) {
      const float* base = qkv.data() + b * s.time * stride + h * hd;
      for (std::int64_t i = 0; i < s.time; ++i) {
        std::vector<double> scores(static_cast<std::size_t>(i + 1));
        double mx = -std::numeric_limits<double>::infinity();
        for (std::int64_t j = 0; j <= i; ++j) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < hd; ++c) {
            acc += static_cast<double>(base[i * stride + c]) *
                   base[j * stride + s.embed + c];
          }
          scores[static_cast<std::size_t>(j)] = acc * scale;
          mx = std::max(mx, acc * scale);
        }
        double total = 0.0;
        for (double& v : scores) {
          v = std::exp(v - mx);
          total += v;
        }
        float* dst = out.data() + (b * s.time + i) * s.embed + h * hd;
        for (std::int64_t c = 0; c < hd; ++c) {
          double acc = 0.0;
          for (std::int64_t j = 0; j <= i; ++j) {
            acc += scores[static_cast<std::size_t>(j)] / total *
                   base[j * stride + 2 * s.embed + c];
          }
          dst[c] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

// Oracle backward: recompute att per (b, h) in double, then the chain
// datt = dO·V^T, dv = att^T·dO, ds = att ∘ (datt - rowdot(att, datt)) · scale
// (masked entries zero), dq = ds·K, dk = ds^T·Q, accumulated into d_qkv.
Tensor naive_causal_attention_backward(const Tensor& qkv,
                                       const Tensor& d_heads,
                                       const AttentionShape& s) {
  const std::int64_t hd = s.embed / s.heads;
  const std::int64_t stride = 3 * s.embed;
  const double scale = 1.0 / std::sqrt(static_cast<double>(hd));
  Tensor d_qkv({s.batch * s.time, 3 * s.embed});
  for (std::int64_t b = 0; b < s.batch; ++b) {
    for (std::int64_t h = 0; h < s.heads; ++h) {
      const float* base = qkv.data() + b * s.time * stride + h * hd;
      float* d_base = d_qkv.data() + b * s.time * stride + h * hd;
      const auto at = [&](const std::int64_t which, std::int64_t t,
                          std::int64_t c) {
        return static_cast<double>(base[t * stride + which * s.embed + c]);
      };
      std::vector<double> att(static_cast<std::size_t>(s.time * s.time), 0.0);
      for (std::int64_t i = 0; i < s.time; ++i) {
        double mx = -std::numeric_limits<double>::infinity();
        for (std::int64_t j = 0; j <= i; ++j) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < hd; ++c) acc += at(0, i, c) * at(1, j, c);
          att[static_cast<std::size_t>(i * s.time + j)] = acc * scale;
          mx = std::max(mx, acc * scale);
        }
        double total = 0.0;
        for (std::int64_t j = 0; j <= i; ++j) {
          double& v = att[static_cast<std::size_t>(i * s.time + j)];
          v = std::exp(v - mx);
          total += v;
        }
        for (std::int64_t j = 0; j <= i; ++j) {
          att[static_cast<std::size_t>(i * s.time + j)] /= total;
        }
      }
      const auto d_out = [&](std::int64_t t, std::int64_t c) {
        return static_cast<double>(
            d_heads[(b * s.time + t) * s.embed + h * hd + c]);
      };
      for (std::int64_t i = 0; i < s.time; ++i) {
        // datt row + softmax backward row.
        std::vector<double> ds(static_cast<std::size_t>(i + 1));
        double row_dot = 0.0;
        for (std::int64_t j = 0; j <= i; ++j) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < hd; ++c) acc += d_out(i, c) * at(2, j, c);
          ds[static_cast<std::size_t>(j)] = acc;
          row_dot += att[static_cast<std::size_t>(i * s.time + j)] * acc;
        }
        for (std::int64_t j = 0; j <= i; ++j) {
          const double a = att[static_cast<std::size_t>(i * s.time + j)];
          const double d_score =
              a * (ds[static_cast<std::size_t>(j)] - row_dot) * scale;
          for (std::int64_t c = 0; c < hd; ++c) {
            // dq[i] += d_score * k[j]; dk[j] += d_score * q[i];
            // dv[j] += att * dO[i]
            d_base[i * stride + c] +=
                static_cast<float>(d_score * at(1, j, c));
            d_base[j * stride + s.embed + c] +=
                static_cast<float>(d_score * at(0, i, c));
            d_base[j * stride + 2 * s.embed + c] +=
                static_cast<float>(a * d_out(i, c));
          }
        }
      }
    }
  }
  return d_qkv;
}

class FusedAttentionEquivalence
    : public ::testing::TestWithParam<AttentionShape> {};

TEST_P(FusedAttentionEquivalence, ForwardMatchesNaiveOracle) {
  const AttentionShape s = GetParam();
  Rng rng(2024);
  const Tensor qkv = Tensor::randn({s.batch * s.time, 3 * s.embed}, rng);
  Tensor heads_out({s.batch * s.time, s.embed});
  Tensor lse({s.batch * s.heads, s.time});
  fused::causal_attention_forward(qkv.data(), s.batch, s.time, s.embed,
                                  s.heads, heads_out.data(), lse.data());
  expect_close_rel(heads_out, naive_causal_attention(qkv, s), 2e-5f);
}

TEST_P(FusedAttentionEquivalence, BackwardMatchesNaiveOracle) {
  const AttentionShape s = GetParam();
  Rng rng(2025);
  const Tensor qkv = Tensor::randn({s.batch * s.time, 3 * s.embed}, rng);
  const Tensor d_heads = Tensor::randn({s.batch * s.time, s.embed}, rng);
  Tensor heads_out({s.batch * s.time, s.embed});
  Tensor lse({s.batch * s.heads, s.time});
  fused::causal_attention_forward(qkv.data(), s.batch, s.time, s.embed,
                                  s.heads, heads_out.data(), lse.data());
  Tensor d_qkv({s.batch * s.time, 3 * s.embed});
  fused::causal_attention_backward(qkv.data(), heads_out.data(),
                                   d_heads.data(), lse.data(), s.batch, s.time,
                                   s.embed, s.heads, d_qkv.data());
  expect_close_rel(d_qkv, naive_causal_attention_backward(qkv, d_heads, s),
                   5e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedAttentionEquivalence,
    ::testing::Values(AttentionShape{1, 1, 1, 8},    // T == 1, one pair
                      AttentionShape{2, 4, 13, 28},  // prime T, prime head_dim
                      AttentionShape{3, 5, 70, 40},  // ragged second tile,
                                                     // 15 (b, h) pairs
                      AttentionShape{1, 2, 130, 64}),  // three tiles per row
    [](const auto& info) {
      return "b" + std::to_string(info.param.batch) + "_h" +
             std::to_string(info.param.heads) + "_t" +
             std::to_string(info.param.time) + "_c" +
             std::to_string(info.param.embed);
    });

TEST(FusedAttention, MaskedNanIsErasedUnmaskedNanPoisonsItsRow) {
  // A NaN in key row T-1 makes score (i, T-1) NaN for every query row i, but
  // that slot is causally masked for all i < T-1: the mask overwrite must
  // erase it there, and only the final row (where the slot is live) may go
  // NaN. This mirrors the head-loop engine's semantics exactly.
  const AttentionShape s{1, 2, 37, 16};
  const std::int64_t hd = s.embed / s.heads;
  Rng rng(5);
  Tensor qkv = Tensor::randn({s.batch * s.time, 3 * s.embed}, rng);
  qkv[(s.time - 1) * 3 * s.embed + s.embed + 0 * hd] =
      std::numeric_limits<float>::quiet_NaN();  // K row T-1, head 0
  Tensor heads_out({s.batch * s.time, s.embed});
  Tensor lse({s.batch * s.heads, s.time});
  fused::causal_attention_forward(qkv.data(), s.batch, s.time, s.embed,
                                  s.heads, heads_out.data(), lse.data());
  for (std::int64_t t = 0; t < s.time - 1; ++t) {
    for (std::int64_t c = 0; c < s.embed; ++c) {
      EXPECT_FALSE(std::isnan(heads_out[t * s.embed + c]))
          << "row " << t << " col " << c;
    }
  }
  for (std::int64_t c = 0; c < hd; ++c) {
    EXPECT_TRUE(std::isnan(heads_out[(s.time - 1) * s.embed + c]))
        << "head-0 col " << c;
  }
  for (std::int64_t c = hd; c < s.embed; ++c) {
    EXPECT_FALSE(std::isnan(heads_out[(s.time - 1) * s.embed + c]))
        << "head-1 col " << c;
  }
}

// The thread pool reads CARAML_NUM_THREADS once at static init, so varying it
// requires subprocesses: each child recomputes the same fused forward +
// backward and dumps the raw bytes; the parent asserts all dumps are
// byte-identical. (Per-(b, h) tile order is fixed and the GEMM accumulates
// each C element in a chunking-independent order, so the outputs must not
// depend on how pairs were distributed over threads.)
TEST(FusedAttention, DeterministicAcrossThreadCounts) {
  const AttentionShape s{2, 3, 70, 24};
  const char* dump_path = std::getenv("CARAML_ATTENTION_DUMP");
  if (dump_path != nullptr) {
    Rng rng(77);
    const Tensor qkv = Tensor::randn({s.batch * s.time, 3 * s.embed}, rng);
    const Tensor d_heads = Tensor::randn({s.batch * s.time, s.embed}, rng);
    Tensor heads_out({s.batch * s.time, s.embed});
    Tensor lse({s.batch * s.heads, s.time});
    fused::causal_attention_forward(qkv.data(), s.batch, s.time, s.embed,
                                    s.heads, heads_out.data(), lse.data());
    Tensor d_qkv({s.batch * s.time, 3 * s.embed});
    fused::causal_attention_backward(qkv.data(), heads_out.data(),
                                     d_heads.data(), lse.data(), s.batch,
                                     s.time, s.embed, s.heads, d_qkv.data());
    std::ofstream out(dump_path, std::ios::binary);
    const auto write_tensor = [&out](const Tensor& t) {
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.numel() * sizeof(float)));
    };
    write_tensor(heads_out);
    write_tensor(lse);
    write_tensor(d_qkv);
    ASSERT_TRUE(out.good());
    return;
  }

  // Resolve our own binary path up front: /proc/self/exe inside the
  // system() shell would name the shell, not this test.
  char exe[4096];
  const ssize_t exe_len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(exe_len, 0);
  exe[exe_len] = '\0';

  std::vector<std::string> dumps;
  for (const int threads : {1, 2, 8}) {
    const std::string path = ::testing::TempDir() + "caraml_att_dump_" +
                             std::to_string(threads) + ".bin";
    const std::string cmd =
        "CARAML_NUM_THREADS=" + std::to_string(threads) +
        " CARAML_ATTENTION_DUMP=" + path + " '" + exe +
        "' --gtest_filter=FusedAttention.DeterministicAcrossThreadCounts"
        " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "child failed: " << cmd;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    dumps.emplace_back(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    ASSERT_FALSE(dumps.back().empty());
  }
  EXPECT_EQ(dumps[0], dumps[1]) << "1-thread and 2-thread outputs differ";
  EXPECT_EQ(dumps[0], dumps[2]) << "1-thread and 8-thread outputs differ";
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor input = Tensor::arange(8).reshape({1, 2, 2, 2});
  const Tensor out = global_avg_pool(input);
  ASSERT_EQ(out.dim(1), 2);
  EXPECT_FLOAT_EQ(out[0], 1.5f);   // mean of 0..3
  EXPECT_FLOAT_EQ(out[1], 5.5f);   // mean of 4..7
  const Tensor g({1, 2}, {4.0f, 8.0f});
  const Tensor dinput = global_avg_pool_backward(g, input.shape());
  EXPECT_FLOAT_EQ(dinput[0], 1.0f);
  EXPECT_FLOAT_EQ(dinput[7], 2.0f);
}

}  // namespace
}  // namespace caraml::tensor
