#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/reference.hpp"
#include "tensor/tensor.hpp"
#include "tensor/workspace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::tensor {
namespace {

// Naive reference GEMM.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

// Naive reference conv2d (NCHW, OCHW weights).
Tensor naive_conv2d(const Tensor& input, const Tensor& weight,
                    const Conv2dArgs& args) {
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  const std::int64_t oh = (h + 2 * args.padding - kh) / args.stride + 1;
  const std::int64_t ow = (w + 2 * args.padding - kw) / args.stride + 1;
  Tensor out({n, o, oh, ow});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t oc = 0; oc < o; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = oy * args.stride + ky - args.padding;
                const std::int64_t ix = ox * args.stride + kx - args.padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(
                           input[((img * c + ic) * h + iy) * w + ix]) *
                       weight[((oc * c + ic) * kh + ky) * kw + kx];
              }
            }
          }
          out[((img * o + oc) * oh + oy) * ow + ox] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

// --- construction / shape ---------------------------------------------------------

TEST(Tensor, ZerosAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[2], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0}), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::arange(6);
  Tensor r = t.reshape({2, 3});
  EXPECT_EQ(r.at({1, 0}), 3.0f);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, Transpose2d) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor tt = t.transpose2d();
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.at({2, 1}), t.at({1, 2}));
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng a(3), b(3);
  const Tensor x = Tensor::randn({16}, a);
  const Tensor y = Tensor::randn({16}, b);
  expect_close(x, y, 0.0f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), Error);
}

// --- elementwise ------------------------------------------------------------------

TEST(Elementwise, AddSubMulScale) {
  const Tensor a({2}, {1.0f, 2.0f});
  const Tensor b({2}, {3.0f, 5.0f});
  expect_close(add(a, b), Tensor({2}, {4.0f, 7.0f}));
  expect_close(sub(b, a), Tensor({2}, {2.0f, 3.0f}));
  expect_close(mul(a, b), Tensor({2}, {3.0f, 10.0f}));
  expect_close(scale(a, 2.0f), Tensor({2}, {2.0f, 4.0f}));
}

TEST(Elementwise, ShapeMismatchThrows) {
  EXPECT_THROW(add(Tensor({2}), Tensor({3})), Error);
}

TEST(Elementwise, Axpy) {
  Tensor y({2}, {1.0f, 1.0f});
  axpy(y, 2.0f, Tensor({2}, {3.0f, 4.0f}));
  expect_close(y, Tensor({2}, {7.0f, 9.0f}));
}

TEST(Elementwise, ReluAndBackward) {
  const Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  expect_close(relu(x), Tensor({4}, {0.0f, 0.0f, 2.0f, 0.0f}));
  const Tensor g({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  expect_close(relu_backward(x, g), Tensor({4}, {0.0f, 0.0f, 1.0f, 0.0f}));
}

TEST(Elementwise, GeluValues) {
  const Tensor x({3}, {-2.0f, 0.0f, 2.0f});
  const Tensor y = gelu(x);
  EXPECT_NEAR(y[0], -0.0454f, 1e-3);
  EXPECT_NEAR(y[1], 0.0f, 1e-6);
  EXPECT_NEAR(y[2], 1.9546f, 1e-3);
}

TEST(Elementwise, GeluGradientMatchesFiniteDifference) {
  Rng rng(5);
  const Tensor x = Tensor::randn({32}, rng);
  const Tensor ones = Tensor::ones({32});
  const Tensor grad = gelu_backward(x, ones);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float fd = (gelu(xp)[i] - gelu(xm)[i]) / (2.0f * eps);
    EXPECT_NEAR(grad[i], fd, 2e-3) << "index " << i;
  }
}

// --- reductions -------------------------------------------------------------------

TEST(Reductions, SumMeanMaxAbs) {
  const Tensor t({4}, {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_FLOAT_EQ(sum(t), -2.0f);
  EXPECT_FLOAT_EQ(mean(t), -0.5f);
  EXPECT_FLOAT_EQ(max_abs(t), 4.0f);
}

TEST(Reductions, ArgmaxRows) {
  const Tensor t({2, 3}, {1.0f, 5.0f, 2.0f, 9.0f, 0.0f, 3.0f});
  const auto idx = argmax_rows(t);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

// --- matmul ------------------------------------------------------------------------

class MatmulSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(42);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close(matmul(a, b), naive_matmul(a, b),
               1e-3f * static_cast<float>(k));
}

TEST_P(MatmulSizes, NtEqualsTransposedOperand) {
  const auto [m, k, n] = GetParam();
  Rng rng(43);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor bt = Tensor::randn({n, k}, rng);
  expect_close(matmul_nt(a, bt), matmul(a, bt.transpose2d()),
               1e-3f * static_cast<float>(k));
}

TEST_P(MatmulSizes, TnEqualsTransposedOperand) {
  const auto [m, k, n] = GetParam();
  Rng rng(44);
  const Tensor at = Tensor::randn({k, m}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close(matmul_tn(at, b), matmul(at.transpose2d(), b),
               1e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Tensor, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 31, 13),
                      std::make_tuple(64, 32, 96),
                      std::make_tuple(128, 64, 128)));

TEST(Matmul, InnerDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), Error);
  EXPECT_THROW(matmul_nt(Tensor({2, 3}), Tensor({4, 4})), Error);
  EXPECT_THROW(matmul_tn(Tensor({3, 2}), Tensor({4, 4})), Error);
}

TEST(Matmul, IdentityIsNoOp) {
  Rng rng(7);
  const Tensor a = Tensor::randn({5, 5}, rng);
  Tensor eye({5, 5});
  for (int i = 0; i < 5; ++i) eye[i * 5 + i] = 1.0f;
  expect_close(matmul(a, eye), a);
}

// --- softmax -----------------------------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  Rng rng(9);
  const Tensor x = Tensor::randn({7, 11}, rng, 3.0f);
  const Tensor y = softmax_rows(x);
  for (std::int64_t r = 0; r < 7; ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < 11; ++c) total += y[r * 11 + c];
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor x({1, 3}, {1000.0f, 1001.0f, 999.0f});
  const Tensor y = softmax_rows(x);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_GT(y[1], y[0]);
}

TEST(Softmax, BackwardMatchesFiniteDifference) {
  Rng rng(13);
  const Tensor x = Tensor::randn({2, 5}, rng);
  const Tensor g = Tensor::randn({2, 5}, rng);
  const Tensor y = softmax_rows(x);
  const Tensor dx = softmax_rows_backward(y, g);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const Tensor yp = softmax_rows(xp), ym = softmax_rows(xm);
    double fd = 0.0;
    for (std::int64_t j = 0; j < x.numel(); ++j) {
      fd += static_cast<double>(yp[j] - ym[j]) / (2.0 * eps) * g[j];
    }
    EXPECT_NEAR(dx[i], fd, 2e-3) << "index " << i;
  }
}

// --- conv2d ------------------------------------------------------------------------

struct ConvCase {
  int n, c, h, o, k, stride, padding;
};
class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, MatchesNaiveReference) {
  const ConvCase p = GetParam();
  Rng rng(21);
  const Tensor input = Tensor::randn({p.n, p.c, p.h, p.h}, rng);
  const Tensor weight = Tensor::randn({p.o, p.c, p.k, p.k}, rng);
  Conv2dArgs args;
  args.stride = p.stride;
  args.padding = p.padding;
  expect_close(conv2d(input, weight, args), naive_conv2d(input, weight, args),
               1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Tensor, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 5, 1, 3, 1, 1},
                      ConvCase{2, 3, 8, 4, 3, 1, 1},
                      ConvCase{1, 2, 9, 3, 3, 2, 1},
                      ConvCase{2, 4, 7, 2, 1, 1, 0},
                      ConvCase{1, 3, 12, 5, 7, 2, 3},
                      ConvCase{3, 2, 6, 2, 3, 3, 0}));

TEST(Conv2d, BackwardInputMatchesFiniteDifference) {
  Rng rng(23);
  const Tensor input = Tensor::randn({1, 2, 5, 5}, rng);
  const Tensor weight = Tensor::randn({3, 2, 3, 3}, rng);
  Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  const Tensor out = conv2d(input, weight, args);
  const Tensor g = Tensor::ones(out.shape());
  const Tensor dinput = conv2d_backward_input(g, weight, input.shape(), args);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < input.numel(); i += 7) {
    Tensor ip = input, im = input;
    ip[i] += eps;
    im[i] -= eps;
    const float fd =
        (sum(conv2d(ip, weight, args)) - sum(conv2d(im, weight, args))) /
        (2.0f * eps);
    EXPECT_NEAR(dinput[i], fd, 5e-2) << "index " << i;
  }
}

TEST(Conv2d, BackwardWeightMatchesFiniteDifference) {
  Rng rng(25);
  const Tensor input = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor weight = Tensor::randn({2, 2, 3, 3}, rng);
  Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  const Tensor out = conv2d(input, weight, args);
  const Tensor g = Tensor::ones(out.shape());
  const Tensor dweight =
      conv2d_backward_weight(g, input, weight.shape(), args);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < weight.numel(); i += 5) {
    Tensor wp = weight, wm = weight;
    wp[i] += eps;
    wm[i] -= eps;
    const float fd =
        (sum(conv2d(input, wp, args)) - sum(conv2d(input, wm, args))) /
        (2.0f * eps);
    EXPECT_NEAR(dweight[i], fd, 5e-2) << "index " << i;
  }
}

TEST(Conv2d, ChannelMismatchThrows) {
  Conv2dArgs args;
  EXPECT_THROW(conv2d(Tensor({1, 3, 4, 4}), Tensor({2, 4, 3, 3}), args),
               Error);
}

TEST(Im2col, ShapeAndContent) {
  // 1x1x3x3 input, 2x2 kernel, stride 1, no padding -> 4 patches of 4.
  Tensor input = Tensor::arange(9).reshape({1, 1, 3, 3});
  Conv2dArgs args;
  const Tensor cols = im2col(input, 2, 2, args);
  ASSERT_EQ(cols.dim(0), 4);
  ASSERT_EQ(cols.dim(1), 4);
  // First patch: rows 0-1, cols 0-1 -> {0, 1, 3, 4}.
  EXPECT_EQ(cols[0], 0.0f);
  EXPECT_EQ(cols[1], 1.0f);
  EXPECT_EQ(cols[2], 3.0f);
  EXPECT_EQ(cols[3], 4.0f);
}

// --- pooling ------------------------------------------------------------------------

TEST(MaxPool, ForwardAndIndices) {
  Tensor input = Tensor::arange(16).reshape({1, 1, 4, 4});
  std::vector<std::int64_t> indices;
  const Tensor out = maxpool2d(input, 2, &indices);
  ASSERT_EQ(out.numel(), 4);
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[3], 15.0f);
  EXPECT_EQ(indices[3], 15);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Tensor input = Tensor::arange(16).reshape({1, 1, 4, 4});
  std::vector<std::int64_t> indices;
  const Tensor out = maxpool2d(input, 2, &indices);
  const Tensor g = Tensor::ones(out.shape());
  const Tensor dinput = maxpool2d_backward(g, input.shape(), indices);
  EXPECT_EQ(dinput[5], 1.0f);
  EXPECT_EQ(dinput[0], 0.0f);
  EXPECT_NEAR(sum(dinput), 4.0f, 1e-6);
}

// --- kernel equivalence vs reference namespace ------------------------------
//
// The optimized GEMM packs into MR=6 x NR=16 tiles with MC/KC/NC cache
// blocking; prime and degenerate dimensions exercise every ragged-edge path
// (partial tiles in m and n, partial KC slices, m=1, k=1) in both the direct
// and the blocked/packed regimes.

void expect_close_rel(const Tensor& got, const Tensor& want,
                      float rel_tol = 1e-4f) {
  ASSERT_EQ(got.shape(), want.shape());
  const float scale = std::max(1.0f, max_abs(want));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], rel_tol * scale) << "at flat index " << i;
  }
}

struct GemmShape {
  std::int64_t m, k, n;
};

class GemmEquivalence : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmEquivalence, MatmulMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(42);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close_rel(matmul(a, b), reference::matmul(a, b));
}

TEST_P(GemmEquivalence, MatmulNtMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(43);
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({n, k}, rng);
  expect_close_rel(matmul_nt(a, b), reference::matmul_nt(a, b));
}

TEST_P(GemmEquivalence, MatmulTnMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(44);
  const Tensor a = Tensor::randn({k, m}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  expect_close_rel(matmul_tn(a, b), reference::matmul_tn(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    PartialTileShapes, GemmEquivalence,
    ::testing::Values(GemmShape{1, 1, 1},      // single element
                      GemmShape{17, 19, 23},   // primes, direct path
                      GemmShape{6, 16, 16},    // exact single tile
                      GemmShape{97, 101, 103},  // primes, blocked path
                      GemmShape{1, 300, 200},  // m=1 through the blocked path
                      GemmShape{64, 1, 700},   // k=1 through the blocked path
                      GemmShape{129, 257, 65},  // ragged tiles + partial KC
                      GemmShape{5, 2048, 3}),  // deep k, tiny m/n
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "_k" +
             std::to_string(info.param.k) + "_n" + std::to_string(info.param.n);
    });

TEST(KernelEquivalence, SoftmaxMatchesReference) {
  Rng rng(7);
  const Tensor a = Tensor::randn({37, 53}, rng, 3.0f);
  expect_close_rel(softmax_rows(a), reference::softmax_rows(a));
}

TEST(KernelEquivalence, Conv2dMatchesReference) {
  Rng rng(8);
  const Tensor input = Tensor::randn({2, 3, 9, 7}, rng);
  const Tensor weight = Tensor::randn({5, 3, 3, 3}, rng);
  Conv2dArgs args;
  args.stride = 2;
  args.padding = 1;
  expect_close_rel(conv2d(input, weight, args),
                   reference::conv2d(input, weight, args));
}

// --- NaN/Inf propagation ----------------------------------------------------
//
// Regression test for the old zero-skip "optimization" (`if (a == 0)
// continue`): 0 * NaN is NaN and 0 * Inf is NaN, so a zero operand must not
// short-circuit the multiply.

TEST(GemmNanPropagation, ZeroTimesNanIsNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const float poison : {nan, inf}) {
    Tensor a({2, 3});  // all zeros
    Tensor b({3, 2});  // all zeros
    b[0] = poison;     // b(0, 0)
    const Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c[0])) << "matmul dropped 0*" << poison;
    EXPECT_FALSE(std::isnan(c[1]));

    Tensor bt({2, 3});  // matmul_nt: b stored [n, k]
    bt[0] = poison;     // bt(0, 0)
    const Tensor c_nt = matmul_nt(a, bt);
    EXPECT_TRUE(std::isnan(c_nt[0])) << "matmul_nt dropped 0*" << poison;
    EXPECT_FALSE(std::isnan(c_nt[3]));

    Tensor at({3, 2});  // matmul_tn: a stored [k, m]
    Tensor bn({3, 2});
    bn[0] = poison;  // bn(0, 0)
    const Tensor c_tn = matmul_tn(at, bn);
    EXPECT_TRUE(std::isnan(c_tn[0])) << "matmul_tn dropped 0*" << poison;
    EXPECT_FALSE(std::isnan(c_tn[1]));
  }
}

TEST(GemmNanPropagation, NanInputPoisonsBlockedPath) {
  // Large enough to take the blocked/packed kernel, not the direct loop.
  const std::int64_t n = 96;
  Rng rng(11);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  a[5 * n + 7] = std::numeric_limits<float>::quiet_NaN();
  const Tensor c = matmul(a, b);
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_TRUE(std::isnan(c[5 * n + j])) << "column " << j;
  }
  EXPECT_FALSE(std::isnan(c[0]));
}

// --- workspace --------------------------------------------------------------

TEST(WorkspaceTest, SlabIsReusedAcrossTakes) {
  Workspace workspace;
  const float* first = nullptr;
  {
    Workspace::Buffer buffer = workspace.take(1000);
    ASSERT_GE(buffer.size(), 1000u);
    first = buffer.data();
    EXPECT_EQ(workspace.idle_slabs(), 0u);
  }
  EXPECT_EQ(workspace.idle_slabs(), 1u);
  {
    // A smaller request must reuse the parked slab, not allocate a new one.
    Workspace::Buffer buffer = workspace.take(500);
    EXPECT_EQ(buffer.data(), first);
    EXPECT_EQ(workspace.idle_slabs(), 0u);
  }
  EXPECT_EQ(workspace.idle_slabs(), 1u);
}

TEST(WorkspaceTest, TakeZeroedClearsRecycledContents) {
  Workspace workspace;
  {
    Workspace::Buffer buffer = workspace.take(64);
    for (std::size_t i = 0; i < 64; ++i) buffer.data()[i] = 3.0f;
  }
  Workspace::Buffer buffer = workspace.take_zeroed(64);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(buffer.data()[i], 0.0f);
}

TEST(WorkspaceTest, BestFitPrefersSmallestSufficientSlab) {
  Workspace workspace;
  const float* small = nullptr;
  {
    Workspace::Buffer big = workspace.take(4096);
    Workspace::Buffer little = workspace.take(128);
    small = little.data();
  }
  EXPECT_EQ(workspace.idle_slabs(), 2u);
  Workspace::Buffer buffer = workspace.take(100);
  EXPECT_EQ(buffer.data(), small);
}

TEST(WorkspaceTest, LocalIsPerThreadSingleton) {
  Workspace& a = Workspace::local();
  Workspace& b = Workspace::local();
  EXPECT_EQ(&a, &b);
}

TEST(GlobalAvgPool, ForwardBackward) {
  Tensor input = Tensor::arange(8).reshape({1, 2, 2, 2});
  const Tensor out = global_avg_pool(input);
  ASSERT_EQ(out.dim(1), 2);
  EXPECT_FLOAT_EQ(out[0], 1.5f);   // mean of 0..3
  EXPECT_FLOAT_EQ(out[1], 5.5f);   // mean of 4..7
  const Tensor g({1, 2}, {4.0f, 8.0f});
  const Tensor dinput = global_avg_pool_backward(g, input.shape());
  EXPECT_FLOAT_EQ(dinput[0], 1.0f);
  EXPECT_FLOAT_EQ(dinput[7], 2.0f);
}

}  // namespace
}  // namespace caraml::tensor
