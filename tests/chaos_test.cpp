// Chaos-campaign tests: fault-space enumeration determinism, campaign config
// parsing, the four recovery invariants, and report reproducibility across
// job counts and cache replays.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/scenario.hpp"
#include "fault/checkpoint.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace caraml::chaos {
namespace {

// --- fault-space enumeration ------------------------------------------------------

TEST(FaultSpaceEnum, GridCollapsesSeverityForPointFaults) {
  FaultSpace space = FaultSpace::defaults();
  space.severities = {0.3, 0.6};
  // device_failure: 2 times x 1 device (severity collapsed);
  // 3 window kinds: 2 times x 1 device x 2 severities.
  EXPECT_EQ(space.grid_size(), 2u + 3u * 2u * 2u);
  const auto scenarios = enumerate_grid(space, 7, 100.0);
  EXPECT_EQ(scenarios.size(), space.grid_size());
  for (const auto& scenario : scenarios) {
    if (scenario.kind == fault::FaultKind::kDeviceFailure) {
      EXPECT_DOUBLE_EQ(scenario.severity, 1.0);
      EXPECT_DOUBLE_EQ(scenario.plan.events[0].duration_s, 0.0);
    } else {
      EXPECT_GT(scenario.plan.events[0].duration_s, 0.0);
    }
    ASSERT_EQ(scenario.plan.events.size(), 1u);
  }
}

TEST(FaultSpaceEnum, GridIsDeterministicAndSeedSensitive) {
  const FaultSpace space = FaultSpace::defaults();
  const auto a = enumerate_grid(space, 42, 100.0);
  const auto b = enumerate_grid(space, 42, 100.0);
  const auto c = enumerate_grid(space, 43, 100.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].plan.fingerprint(), b[i].plan.fingerprint());
    // A different campaign seed re-derives every plan seed.
    EXPECT_NE(a[i].plan.seed, c[i].plan.seed);
  }
}

TEST(FaultSpaceEnum, RandomDrawsStayInsideTheAxes) {
  FaultSpace space = FaultSpace::defaults();
  space.times_frac = {0.1, 0.9};
  space.severities = {0.4, 0.8};
  const auto scenarios = enumerate_random(space, 5, 100.0, 20);
  ASSERT_EQ(scenarios.size(), 20u);
  const auto again = enumerate_random(space, 5, 100.0, 20);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].id, again[i].id);
    EXPECT_GE(scenarios[i].time_frac, 0.1);
    EXPECT_LE(scenarios[i].time_frac, 0.9);
    if (scenarios[i].kind != fault::FaultKind::kDeviceFailure) {
      EXPECT_GE(scenarios[i].severity, 0.4);
      EXPECT_LE(scenarios[i].severity, 0.8);
    }
  }
}

TEST(FaultSpaceEnum, RejectsDegenerateAxes) {
  FaultSpace space = FaultSpace::defaults();
  space.times_frac = {1.0};  // injection at exactly the horizon never fires
  EXPECT_THROW(enumerate_grid(space, 1, 100.0), Error);
  space = FaultSpace::defaults();
  space.kinds.clear();
  EXPECT_THROW(enumerate_grid(space, 1, 100.0), Error);
  space = FaultSpace::defaults();
  space.severities = {1.5};
  EXPECT_THROW(enumerate_grid(space, 1, 100.0), Error);
}

// --- campaign config --------------------------------------------------------------

constexpr const char* kSmallCampaignYaml = R"(campaign:
  name: unit
  seed: 11
  workload: llm
  system: A100
  mode: grid
  steps: 6
  checkpoint_every: 2
  checkpoint_cost_s: 0.25
  restart_cost_s: 2.0
  retries: 3
  deadline_s: 120.0
  tolerance: 0.25
  model: 117M
  global_batch: 64
  micro_batch: 2
  devices: 2
  space:
    kinds: [device_failure, thermal_throttle]
    times: [0.3, 0.7]
    devices: [-1]
    severities: [0.6]
    window_frac: 0.2
)";

CampaignConfig small_campaign() {
  return CampaignConfig::from_yaml(yaml::parse(kSmallCampaignYaml));
}

TEST(CampaignConfig, ParsesYamlIncludingSpaceAxes) {
  const CampaignConfig config = small_campaign();
  EXPECT_EQ(config.name, "unit");
  EXPECT_EQ(config.seed, 11u);
  EXPECT_EQ(config.steps, 6);
  EXPECT_EQ(config.model, "117M");
  ASSERT_EQ(config.space.kinds.size(), 2u);
  EXPECT_EQ(config.space.kinds[1], fault::FaultKind::kThermalThrottle);
  EXPECT_EQ(config.space.times_frac, (std::vector<double>{0.3, 0.7}));
  EXPECT_DOUBLE_EQ(config.space.window_frac, 0.2);
  // 1 point kind x 2 times + 1 window kind x 2 times x 1 severity.
  EXPECT_EQ(config.space.grid_size(), 4u);
}

TEST(CampaignConfig, RejectsBadValues) {
  CampaignConfig config = small_campaign();
  config.workload = "gpt";
  EXPECT_THROW(run_campaign(config), Error);
  config = small_campaign();
  config.tolerance = -1.0;
  EXPECT_THROW(run_campaign(config), Error);
  config = small_campaign();
  config.mode = "random";
  config.scenarios = 0;
  EXPECT_THROW(run_campaign(config), Error);
}

TEST(CampaignConfig, FingerprintTracksOutcomeAffectingFields) {
  const CampaignConfig a = small_campaign();
  CampaignConfig b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.tolerance = 0.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- invariant checks -------------------------------------------------------------

TEST(CheckCheckpoint, RejectsCorruptedFileThroughTheInvariant) {
  const std::string dir = testing::TempDir() + "chaos_ckpt_corrupt";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/checkpoint.json";
  fault::TrainingCheckpoint checkpoint;
  checkpoint.step = 4;
  checkpoint.samples_consumed = 4 * 100;
  checkpoint.sampler_state = 9u ^ 4u;
  checkpoint.save(path);
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage\n";  // trailing bytes break the byte-exact contract
  }
  fault::RunReport report;
  report.status = "ok";
  report.steps_total = 6;
  report.steps_completed = 6;
  report.checkpoints_saved = 2;
  const InvariantResult result = check_checkpoint(path, report, 9, 100, 2);
  EXPECT_FALSE(result.passed);
  EXPECT_EQ(result.rule, "chaos/invariant-checkpoint");
}

TEST(CheckCheckpoint, AcceptsTheCheckpointTheResilientRunnerWrites) {
  const std::string dir = testing::TempDir() + "chaos_ckpt_ok";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/checkpoint.json";
  fault::TrainingCheckpoint checkpoint;
  checkpoint.step = 4;  // last boundary before step 6 with every=2
  checkpoint.samples_consumed = 4 * 100;
  checkpoint.sampler_state = 9u ^ 4u;
  checkpoint.save(path);
  fault::RunReport report;
  report.status = "ok";
  report.steps_total = 6;
  report.steps_completed = 6;
  report.checkpoints_saved = 2;
  const InvariantResult result = check_checkpoint(path, report, 9, 100, 2);
  EXPECT_TRUE(result.passed) << result.detail;
}

// --- campaign runs ----------------------------------------------------------------

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Campaign, SmallGridPassesEveryInvariant) {
  CampaignOptions options;
  options.jobs = 2;
  options.out_dir = fresh_dir("chaos_run_small");
  const CampaignReport report = run_campaign(small_campaign(), options);
  ASSERT_EQ(report.total(), 4);
  EXPECT_EQ(report.violated(), 0) << report.render_human();
  EXPECT_EQ(report.hung(), 0);
  for (const auto& scenario : report.scenarios) {
    ASSERT_EQ(scenario.invariants.size(), 4u);
    EXPECT_TRUE(scenario.survivable);
    if (scenario.kind == "device_failure") {
      EXPECT_EQ(scenario.restarts, 1);
      EXPECT_GT(scenario.time_to_recover_s, 0.0);
      EXPECT_GT(scenario.retry_backoff_s, 0.0);
    }
    EXPECT_GT(scenario.goodput_frac, 0.0);
    EXPECT_LE(scenario.goodput_frac, 1.0 + 1e-9);
  }
}

TEST(Campaign, ReportIsByteIdenticalAcrossJobCounts) {
  CampaignOptions serial;
  serial.jobs = 1;
  serial.out_dir = fresh_dir("chaos_run_serial");
  CampaignOptions parallel;
  parallel.jobs = 4;
  parallel.out_dir = fresh_dir("chaos_run_parallel");
  const CampaignReport a = run_campaign(small_campaign(), serial);
  const CampaignReport b = run_campaign(small_campaign(), parallel);
  EXPECT_EQ(a.render_json(), b.render_json());
}

TEST(Campaign, CacheReplayReproducesTheReport) {
  const std::string cache = fresh_dir("chaos_cache") + "/cache.jsonl";
  CampaignOptions options;
  options.jobs = 2;
  options.cache_path = cache;
  options.out_dir = fresh_dir("chaos_run_cached_a");
  const CampaignReport fresh = run_campaign(small_campaign(), options);
  EXPECT_EQ(fresh.cache_hits(), 0);
  options.out_dir = fresh_dir("chaos_run_cached_b");
  const CampaignReport replay = run_campaign(small_campaign(), options);
  EXPECT_EQ(replay.cache_hits(), replay.total());
  // Cached outcomes must render exactly like freshly-executed ones.
  EXPECT_EQ(fresh.render_json(), replay.render_json());
}

TEST(Campaign, NonSurvivableDeviceFailureFailsHonestly) {
  CampaignConfig config = small_campaign();
  config.retries = 1;  // no restart budget: one device failure is fatal
  config.space.kinds = {fault::FaultKind::kDeviceFailure};
  config.space.times_frac = {0.5};
  CampaignOptions options;
  options.jobs = 1;
  options.out_dir = fresh_dir("chaos_run_fatal");
  const CampaignReport report = run_campaign(config, options);
  ASSERT_EQ(report.total(), 1);
  const ScenarioOutcome& outcome = report.scenarios[0];
  EXPECT_FALSE(outcome.survivable);
  EXPECT_EQ(outcome.status, "failed");
  // An honest failure violates nothing: partial accounting, flushed
  // manifest, rejected-but-consistent checkpoint.
  EXPECT_EQ(outcome.violations(), 0) << report.render_human();
}

TEST(Campaign, InferenceWorkloadMatchesOracleExactly) {
  CampaignConfig config = small_campaign();
  config.workload = "inference";
  config.global_batch = 8;
  CampaignOptions options;
  options.jobs = 2;
  options.out_dir = fresh_dir("chaos_run_inference");
  const CampaignReport report = run_campaign(config, options);
  EXPECT_EQ(report.violated(), 0) << report.render_human();
  for (const auto& scenario : report.scenarios) {
    EXPECT_NEAR(scenario.goodput_frac, 1.0, 1e-9);
  }
}

TEST(Campaign, ViolationsFeedTheDiagnosticsEngine) {
  CampaignOptions options;
  options.jobs = 1;
  options.out_dir = fresh_dir("chaos_run_diag");
  const CampaignReport report = run_campaign(small_campaign(), options);
  check::DiagnosticList diags;
  report.to_diagnostics("campaign.yaml", diags);
  EXPECT_EQ(diags.items().size(), 0u);  // clean campaign, no diagnostics
}

}  // namespace
}  // namespace caraml::chaos
