// Tests for the epoch dataloader, streaming statistics, and GPT generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/loader.hpp"
#include "nn/gpt.hpp"
#include "nn/optim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace caraml {
namespace {

// --- ShuffledIndexSampler -----------------------------------------------------

TEST(Sampler, EpochCoversEveryIndexOnce) {
  data::ShuffledIndexSampler sampler(100, /*seed=*/7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(sampler.next());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
  EXPECT_EQ(sampler.epoch(), 0);
  sampler.next();  // rolls into epoch 1
  EXPECT_EQ(sampler.epoch(), 1);
}

TEST(Sampler, EpochsAreShuffledDifferently) {
  data::ShuffledIndexSampler sampler(64, 3);
  std::vector<std::int64_t> epoch0, epoch1;
  for (int i = 0; i < 64; ++i) epoch0.push_back(sampler.next());
  for (int i = 0; i < 64; ++i) epoch1.push_back(sampler.next());
  EXPECT_NE(epoch0, epoch1);
  // ...but each is a permutation.
  auto sorted0 = epoch0, sorted1 = epoch1;
  std::sort(sorted0.begin(), sorted0.end());
  std::sort(sorted1.begin(), sorted1.end());
  EXPECT_EQ(sorted0, sorted1);
}

TEST(Sampler, DeterministicPerSeedAndResumable) {
  data::ShuffledIndexSampler a(32, 11), b(32, 11);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(a.next(), b.next());
  // seek_epoch reproduces a fresh sampler advanced to that epoch.
  data::ShuffledIndexSampler resumed(32, 11);
  resumed.seek_epoch(1);
  data::ShuffledIndexSampler fresh(32, 11);
  for (int i = 0; i < 32; ++i) fresh.next();
  fresh.next();  // enter epoch 1
  resumed.next();
  EXPECT_EQ(resumed.epoch(), fresh.epoch());
}

TEST(Sampler, BatchSpansEpochBoundary) {
  data::ShuffledIndexSampler sampler(10, 5);
  const auto batch = sampler.next_batch(15);
  EXPECT_EQ(batch.size(), 15u);
  EXPECT_EQ(sampler.epoch(), 1);
  EXPECT_EQ(sampler.position(), 5);
}

TEST(Sampler, InvalidConfigRejected) {
  EXPECT_THROW(data::ShuffledIndexSampler(0, 1), Error);
  data::ShuffledIndexSampler sampler(4, 1);
  EXPECT_THROW(sampler.next_batch(0), Error);
  EXPECT_THROW(sampler.seek_epoch(-1), Error);
}

// --- ShardedEpochPlan -----------------------------------------------------------

TEST(ShardedPlan, RanksPartitionTheEpoch) {
  data::ShardedEpochPlan plan(103, 4, 9);
  std::set<std::int64_t> all;
  std::size_t total = 0;
  for (int r = 0; r < 4; ++r) {
    const auto shard = plan.shard(r, 0);
    total += shard.size();
    for (auto i : shard) {
      EXPECT_TRUE(all.insert(i).second) << "duplicate index " << i;
    }
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(all.size(), 103u);
}

TEST(ShardedPlan, IdenticalAcrossCallers) {
  data::ShardedEpochPlan a(50, 2, 13), b(50, 2, 13);
  EXPECT_EQ(a.shard(1, 3), b.shard(1, 3));
  EXPECT_NE(a.shard(0, 0), a.shard(0, 1));  // epochs differ
}

TEST(ShardedPlan, RankValidation) {
  data::ShardedEpochPlan plan(10, 2, 1);
  EXPECT_THROW(plan.shard(2, 0), Error);
  EXPECT_THROW(plan.shard(-1, 0), Error);
}

// --- RunningStats ------------------------------------------------------------------

TEST(Stats, MeanVarianceMinMax) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Stats, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Stats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.normal(10.0, 2.0);
    (i < 40 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, EmptyMinThrows) {
  RunningStats stats;
  EXPECT_THROW(stats.min(), Error);
}

TEST(Stats, Percentiles) {
  std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 5.5);
  EXPECT_NEAR(percentile(values, 90), 9.1, 1e-12);
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile(values, 101), Error);
}

// --- GPT generation ------------------------------------------------------------------

nn::GptModelConfig tiny_config() {
  nn::GptModelConfig config;
  config.vocab_size = 8;
  config.block_size = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.embed_dim = 16;
  return config;
}

TEST(Generate, ProducesRequestedLengthInVocab) {
  Rng rng(31);
  nn::GptModel model(tiny_config(), rng);
  Rng sample_rng(1);
  const auto out = model.generate({1, 2, 3}, 10, 1.0f, sample_rng);
  ASSERT_EQ(out.size(), 13u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  for (auto id : out) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 8);
  }
}

TEST(Generate, GreedyIsDeterministic) {
  Rng rng(32);
  nn::GptModel model(tiny_config(), rng);
  Rng r1(1), r2(99);  // greedy ignores the rng
  EXPECT_EQ(model.generate({0, 1}, 6, 0.0f, r1),
            model.generate({0, 1}, 6, 0.0f, r2));
}

TEST(Generate, SlidesPastBlockSize) {
  Rng rng(33);
  nn::GptModel model(tiny_config(), rng);
  Rng sample_rng(2);
  // Generate more tokens than the block size; must not throw.
  const auto out = model.generate({1}, 20, 0.8f, sample_rng);
  EXPECT_EQ(out.size(), 21u);
}

TEST(Generate, LearnsDeterministicCycle) {
  // Train on the repeating sequence 0,1,2,3,... and check greedy decoding
  // continues it.
  Rng rng(34);
  nn::GptModel model(tiny_config(), rng);
  nn::Adam optimizer(model.parameters(), 1e-2f);
  nn::Tensor tokens({2, 8});
  std::vector<std::int64_t> targets(16);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t t = 0; t < 8; ++t) {
      tokens[b * 8 + t] = static_cast<float>((b + t) % 4);
      targets[static_cast<std::size_t>(b * 8 + t)] = (b + t + 1) % 4;
    }
  }
  for (int step = 0; step < 80; ++step) {
    optimizer.zero_grad();
    model.train_step(tokens, targets);
    optimizer.step();
  }
  Rng sample_rng(3);
  const auto out = model.generate({0, 1, 2}, 5, 0.0f, sample_rng);
  const std::vector<std::int64_t> expected = {0, 1, 2, 3, 0, 1, 2, 3};
  EXPECT_EQ(out, expected);
}

TEST(Generate, InvalidInputsRejected) {
  Rng rng(35);
  nn::GptModel model(tiny_config(), rng);
  Rng sample_rng(4);
  EXPECT_THROW(model.generate({}, 4, 1.0f, sample_rng), Error);
  EXPECT_THROW(model.generate({1}, 4, -1.0f, sample_rng), Error);
}

}  // namespace
}  // namespace caraml
