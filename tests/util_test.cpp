#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>

#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace caraml {
namespace {

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = str::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = str::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = str::split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(str::join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(str::join({}, "-"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  hi  "), "hi");
  EXPECT_EQ(str::ltrim("  hi  "), "hi  ");
  EXPECT_EQ(str::rtrim("  hi  "), "  hi");
  EXPECT_EQ(str::trim("\t\n"), "");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(str::starts_with("tokens_per_s", "tokens"));
  EXPECT_FALSE(str::starts_with("abc", "abcd"));
  EXPECT_TRUE(str::ends_with("result.csv", ".csv"));
  EXPECT_TRUE(str::contains("a100-sxm", "100"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(str::to_lower("GH200"), "gh200");
  EXPECT_EQ(str::to_upper("mi250"), "MI250");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(str::replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(str::replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, ExpandEnvKnownVariable) {
  ::setenv("CARAML_TEST_RANK", "7", 1);
  EXPECT_EQ(str::expand_env("out_%q{CARAML_TEST_RANK}.csv"), "out_7.csv");
}

TEST(Strings, ExpandEnvUnknownVariableIsEmpty) {
  ::unsetenv("CARAML_NO_SUCH_VAR");
  EXPECT_EQ(str::expand_env("x%q{CARAML_NO_SUCH_VAR}y"), "xy");
}

TEST(Strings, ExpandEnvPercentEscape) {
  EXPECT_EQ(str::expand_env("100%%"), "100%");
}

TEST(Strings, ExpandEnvUnterminatedThrows) {
  EXPECT_THROW(str::expand_env("%q{OOPS"), ParseError);
}

TEST(Strings, SubstitutePlaceholders) {
  const auto out = str::substitute(
      "run --batch ${batch} on ${system}",
      {{"batch", "64"}, {"system", "A100"}});
  EXPECT_EQ(out, "run --batch 64 on A100");
}

TEST(Strings, SubstituteLeavesUnknown) {
  EXPECT_EQ(str::substitute("${x}", {{"y", "1"}}), "${x}");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(str::parse_int(" 42 "), 42);
  EXPECT_EQ(str::parse_int("-7"), -7);
  EXPECT_THROW(str::parse_int("12x"), ParseError);
  EXPECT_THROW(str::parse_int("abc"), ParseError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(str::parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(str::parse_double("1e3"), 1000.0);
  EXPECT_THROW(str::parse_double("1.2.3"), ParseError);
}

TEST(Strings, ParseBool) {
  EXPECT_TRUE(str::parse_bool("true"));
  EXPECT_TRUE(str::parse_bool("YES"));
  EXPECT_FALSE(str::parse_bool("0"));
  EXPECT_THROW(str::parse_bool("maybe"), ParseError);
}

// --- units ---------------------------------------------------------------------

TEST(Units, FormatBytes) {
  EXPECT_EQ(units::format_bytes(512), "512 B");
  EXPECT_EQ(units::format_bytes(2.5 * units::kGiB), "2.50 GiB");
}

TEST(Units, FormatFlops) {
  EXPECT_EQ(units::format_flops(312e12), "312.0 TFLOP/s");
  EXPECT_EQ(units::format_flops(1.5e9), "1.5 GFLOP/s");
}

TEST(Units, FormatBandwidthAndSeconds) {
  EXPECT_EQ(units::format_bandwidth(900e9), "900.0 GB/s");
  EXPECT_EQ(units::format_seconds(90.0), "1.50 min");
  EXPECT_EQ(units::format_seconds(7200.0), "2.00 h");
  EXPECT_EQ(units::format_seconds(0.5e-3), "500.00 us");
}

TEST(Units, ParseBytes) {
  EXPECT_DOUBLE_EQ(units::parse_bytes("40 GB"), 40e9);
  EXPECT_DOUBLE_EQ(units::parse_bytes("1 KiB"), 1024.0);
  EXPECT_DOUBLE_EQ(units::parse_bytes("96GB"), 96e9);
  EXPECT_THROW(units::parse_bytes("5 parsecs"), ParseError);
}

TEST(Units, ParseFlopsAndWatts) {
  EXPECT_DOUBLE_EQ(units::parse_flops("312 TFLOP/s"), 312e12);
  EXPECT_DOUBLE_EQ(units::parse_watts("700 W"), 700.0);
  EXPECT_DOUBLE_EQ(units::parse_watts("1.5 kW"), 1500.0);
}

TEST(Units, WhJoulesRoundTrip) {
  EXPECT_DOUBLE_EQ(units::wh_to_joules(units::joules_to_wh(1234.5)), 1234.5);
}

struct BandwidthCase {
  const char* text;
  double value;
};
class BandwidthParse : public ::testing::TestWithParam<BandwidthCase> {};
TEST_P(BandwidthParse, RoundTrips) {
  EXPECT_DOUBLE_EQ(units::parse_bandwidth(GetParam().text), GetParam().value);
}
INSTANTIATE_TEST_SUITE_P(
    Units, BandwidthParse,
    ::testing::Values(BandwidthCase{"900 GB/s", 900e9},
                      BandwidthCase{"4 TB/s", 4e12},
                      BandwidthCase{"64GB/s", 64e9},
                      BandwidthCase{"512 MB/s", 512e6}));

// --- rng -------------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, InvalidRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), Error);
}

// --- thread pool ----------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 50) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool pool(0), Error);
}

// --- parallel_for_range ------------------------------------------------------

TEST(ParallelForRange, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_range(0, hits.size(), 16,
                          [&](std::size_t lo, std::size_t hi) {
                            ASSERT_LT(lo, hi);
                            for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                          });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForRange, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_range(7, 7, 1,
                          [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForRange, GrainLargerThanTotalRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_range(0, 10, 1000,
                          [&](std::size_t lo, std::size_t hi) {
                            ++calls;
                            covered += hi - lo;
                          });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(covered.load(), 10u);
}

TEST(ParallelForRange, ZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_range(0, 64, 0,
                          [&](std::size_t lo, std::size_t hi) {
                            covered += hi - lo;
                          });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(ParallelForRange, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_range(0, 100, 1,
                              [](std::size_t lo, std::size_t) {
                                if (lo >= 50) throw std::runtime_error("x");
                              }),
      std::runtime_error);
}

TEST(ParallelForRange, NestedCallFromWorkerRunsInline) {
  // A parallel_for_range issued from inside a pool worker must not deadlock
  // (all workers could be blocked waiting on sub-chunks); it runs inline as
  // one chunk on the calling worker instead.
  ThreadPool pool(2);
  std::atomic<int> inner_chunks{0};
  pool.parallel_for_range(0, 4, 1, [&](std::size_t, std::size_t) {
    pool.parallel_for_range(0, 100, 1, [&](std::size_t lo, std::size_t hi) {
      if (lo == 0 && hi == 100) ++inner_chunks;
    });
  });
  EXPECT_EQ(inner_chunks.load(), 4);
}

TEST(ParallelForRange, GrainContractHoldsForAdversarialShapes) {
  // Every chunk must span at least `grain` indices (the documented contract)
  // whenever the range itself holds a full grain, chunk starts must be
  // grain-aligned relative to `begin`, and the chunks must tile the range
  // exactly. total=9/grain=4 is the historical violation: ceil-split into 3
  // chunks of 3 undershot the grain.
  const std::size_t totals[] = {1, 2, 3, 5, 8, 9, 10, 16, 17, 63, 100, 1023};
  const std::size_t grains[] = {1, 2, 3, 4, 6, 7, 16, 64};
  const std::size_t pool_sizes[] = {1, 2, 3, 8};
  for (const std::size_t workers : pool_sizes) {
    ThreadPool pool(workers);
    for (const std::size_t total : totals) {
      for (const std::size_t grain : grains) {
        const std::size_t begin = 3;  // nonzero to catch absolute alignment
        const std::size_t end = begin + total;
        std::mutex mutex;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallel_for_range(begin, end, grain,
                                [&](std::size_t lo, std::size_t hi) {
                                  std::lock_guard<std::mutex> lock(mutex);
                                  chunks.emplace_back(lo, hi);
                                });
        std::sort(chunks.begin(), chunks.end());
        SCOPED_TRACE("total=" + std::to_string(total) +
                     " grain=" + std::to_string(grain) +
                     " workers=" + std::to_string(workers));
        ASSERT_FALSE(chunks.empty());
        EXPECT_EQ(chunks.front().first, begin);
        EXPECT_EQ(chunks.back().second, end);
        for (std::size_t c = 0; c < chunks.size(); ++c) {
          const auto [lo, hi] = chunks[c];
          ASSERT_LT(lo, hi);
          if (c > 0) {
            EXPECT_EQ(lo, chunks[c - 1].second);  // exact tiling
          }
          EXPECT_EQ((lo - begin) % std::max<std::size_t>(1, grain), 0u);
          if (total >= std::max<std::size_t>(1, grain)) {
            const std::size_t span = hi - lo;
            EXPECT_GE(span, std::max<std::size_t>(1, grain));
          }
        }
      }
    }
  }
}

TEST(ParallelForRange, FreeFunctionUsesGlobalPool) {
  std::vector<std::atomic<int>> hits(300);
  parallel_for_range(0, hits.size(), 8,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                     });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- CARAML_NUM_THREADS parsing ---------------------------------------------

TEST(ParseEnvThreads, UnsetFallsBackToDefault) {
  EXPECT_EQ(ThreadPool::parse_env_threads(nullptr),
            ThreadPool::default_threads());
}

TEST(ParseEnvThreads, ValidValuesParse) {
  EXPECT_EQ(ThreadPool::parse_env_threads("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_env_threads("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_env_threads("1024"), 1024u);
}

TEST(ParseEnvThreads, GarbageIsRejectedWithClearError) {
  for (const char* bad : {"", "0", "-3", "abc", "4x", "2.5", "1025", "999999"}) {
    try {
      ThreadPool::parse_env_threads(bad);
      FAIL() << "expected rejection of '" << bad << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("CARAML_NUM_THREADS"),
                std::string::npos)
          << "error message should name the variable, got: " << e.what();
    }
  }
}

// --- argparse ----------------------------------------------------------------------

TEST(ArgParser, ParsesOptionsAndFlags) {
  ArgParser parser("p", "test");
  parser.add_option("batch", "batch size", std::string("16"));
  parser.add_flag("verbose", "verbosity");
  ASSERT_TRUE(parser.parse({"--batch", "64", "--verbose"}));
  EXPECT_EQ(parser.get_int("batch"), 64);
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(ArgParser, DefaultValueUsed) {
  ArgParser parser("p", "test");
  parser.add_option("batch", "batch size", std::string("16"));
  ASSERT_TRUE(parser.parse(std::vector<std::string>{}));
  EXPECT_EQ(parser.get_int("batch"), 16);
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser parser("p", "test");
  parser.add_option("tag", "tag");
  ASSERT_TRUE(parser.parse({"--tag=GH200"}));
  EXPECT_EQ(parser.get("tag"), "GH200");
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser parser("p", "test");
  EXPECT_THROW(parser.parse({"--nope"}), ParseError);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser parser("p", "test");
  parser.add_option("x", "x");
  EXPECT_THROW(parser.parse({"--x"}), ParseError);
}

TEST(ArgParser, RequiredOptionMissingThrows) {
  ArgParser parser("p", "test");
  parser.add_option("x", "x");
  ASSERT_TRUE(parser.parse(std::vector<std::string>{}));
  EXPECT_THROW(parser.get("x"), ParseError);
}

TEST(ArgParser, CollectPositionalsInterleavesWithOptions) {
  ArgParser parser("p", "test");
  parser.add_option("format", "f", std::string("human"));
  parser.add_flag("strict", "s");
  parser.set_collect_positionals(true);
  ASSERT_TRUE(parser.parse({"configs", "--format", "json", "a.yaml",
                            "--strict"}));
  EXPECT_EQ(parser.get("format"), "json");
  EXPECT_TRUE(parser.get_flag("strict"));
  EXPECT_EQ(parser.rest(), (std::vector<std::string>{"configs", "a.yaml"}));
}

TEST(ArgParser, CollectRestCapturesWrappedCommand) {
  ArgParser parser("jpwr", "test");
  parser.add_option("methods", "m", std::string("procstat"));
  parser.set_collect_rest(true);
  ASSERT_TRUE(parser.parse({"--methods", "rocm", "stress-ng", "--gpu", "8"}));
  ASSERT_EQ(parser.rest().size(), 3u);
  EXPECT_EQ(parser.rest()[0], "stress-ng");
  EXPECT_EQ(parser.rest()[1], "--gpu");
}

TEST(ArgParser, PositionalWithoutCollectRestThrows) {
  ArgParser parser("p", "test");
  EXPECT_THROW(parser.parse({"oops"}), ParseError);
}

// --- table --------------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "23"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name |    23 |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable table({"k"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

// --- logging -----------------------------------------------------------------------

TEST(Logging, LevelNamesRoundTrip) {
  for (auto level : {log::Level::kDebug, log::Level::kInfo, log::Level::kWarn,
                     log::Level::kError, log::Level::kOff}) {
    EXPECT_EQ(log::level_from_name(log::level_name(level)), level);
  }
  EXPECT_THROW(log::level_from_name("loud"), InvalidArgument);
}

// --- error macros ---------------------------------------------------------------------

TEST(Error, CheckThrowsWithMessage) {
  try {
    CARAML_CHECK_MSG(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(CARAML_CHECK(2 + 2 == 4));
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  // Keep the loop observable without deprecated volatile compound ops.
  EXPECT_GT(sink, 0.0);
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
  EXPECT_GE(watch.elapsed_ms(), watch.elapsed_seconds());
}

}  // namespace
}  // namespace caraml
