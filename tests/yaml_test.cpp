#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "yaml/yaml.hpp"

namespace caraml::yaml {
namespace {

TEST(Yaml, ScalarDocument) {
  const NodePtr root = parse("hello");
  ASSERT_TRUE(root->is_scalar());
  EXPECT_EQ(root->as_string(), "hello");
}

TEST(Yaml, SimpleMap) {
  const NodePtr root = parse("name: caraml\nbatch: 64\n");
  ASSERT_TRUE(root->is_map());
  EXPECT_EQ(root->at("name")->as_string(), "caraml");
  EXPECT_EQ(root->at("batch")->as_int(), 64);
}

TEST(Yaml, TypedScalarAccess) {
  const NodePtr root = parse("a: 2.5\nb: true\nc: -3\n");
  EXPECT_DOUBLE_EQ(root->at("a")->as_double(), 2.5);
  EXPECT_TRUE(root->at("b")->as_bool());
  EXPECT_EQ(root->at("c")->as_int(), -3);
}

TEST(Yaml, NestedMap) {
  const NodePtr root = parse(
      "benchmark:\n"
      "  name: llm\n"
      "  model:\n"
      "    layers: 16\n");
  EXPECT_EQ(root->at("benchmark")->at("model")->at("layers")->as_int(), 16);
}

TEST(Yaml, BlockSequence) {
  const NodePtr root = parse("items:\n  - a\n  - b\n  - c\n");
  const NodePtr items = root->at("items");
  ASSERT_TRUE(items->is_sequence());
  ASSERT_EQ(items->size(), 3u);
  EXPECT_EQ(items->item(1)->as_string(), "b");
}

TEST(Yaml, SequenceAtSameIndentAsKey) {
  const NodePtr root = parse("tags:\n- A100\n- GH200\n");
  ASSERT_TRUE(root->at("tags")->is_sequence());
  EXPECT_EQ(root->at("tags")->item(1)->as_string(), "GH200");
}

TEST(Yaml, FlowSequence) {
  const NodePtr root = parse("batches: [16, 32, 64]\n");
  const NodePtr batches = root->at("batches");
  ASSERT_TRUE(batches->is_sequence());
  ASSERT_EQ(batches->size(), 3u);
  EXPECT_EQ(batches->item(2)->as_int(), 64);
}

TEST(Yaml, NestedFlowSequence) {
  const NodePtr root = parse("grid: [[1, 2], [3, 4]]\n");
  const NodePtr grid = root->at("grid");
  ASSERT_EQ(grid->size(), 2u);
  EXPECT_EQ(grid->item(1)->item(0)->as_int(), 3);
}

TEST(Yaml, FlowMapping) {
  const NodePtr root =
      parse("event: {kind: device_failure, time_s: 12.5, device: 0}\n");
  const NodePtr event = root->at("event");
  ASSERT_TRUE(event->is_map());
  EXPECT_EQ(event->at("kind")->as_string(), "device_failure");
  EXPECT_DOUBLE_EQ(event->at("time_s")->as_double(), 12.5);
  EXPECT_EQ(event->at("device")->as_int(), 0);
}

TEST(Yaml, FlowMappingInsideSequence) {
  const NodePtr root = parse(
      "events:\n"
      "  - {kind: thermal_throttle, severity: 0.5, nested: [1, 2]}\n"
      "  - {kind: link_degrade}\n");
  const NodePtr events = root->at("events");
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ(events->item(0)->at("nested")->size(), 2u);
  EXPECT_EQ(events->item(1)->at("kind")->as_string(), "link_degrade");
}

TEST(Yaml, UnterminatedFlowMappingThrows) {
  EXPECT_THROW(parse("event: {kind: x\n"), ParseError);
  EXPECT_THROW(parse("event: {no_colon_here}\n"), ParseError);
}

TEST(Yaml, SequenceOfMaps) {
  const NodePtr root = parse(
      "parameters:\n"
      "  - name: system\n"
      "    values: [A100]\n"
      "  - name: batch\n"
      "    values: [16, 32]\n");
  const NodePtr params = root->at("parameters");
  ASSERT_EQ(params->size(), 2u);
  EXPECT_EQ(params->item(0)->at("name")->as_string(), "system");
  EXPECT_EQ(params->item(1)->at("values")->size(), 2u);
}

TEST(Yaml, QuotedStrings) {
  const NodePtr root = parse(
      "a: \"with: colon\"\n"
      "b: 'single # not comment'\n"
      "c: \"escaped \\\" quote\"\n");
  EXPECT_EQ(root->at("a")->as_string(), "with: colon");
  EXPECT_EQ(root->at("b")->as_string(), "single # not comment");
  EXPECT_EQ(root->at("c")->as_string(), "escaped \" quote");
}

TEST(Yaml, Comments) {
  const NodePtr root = parse(
      "# full-line comment\n"
      "key: value  # trailing comment\n");
  EXPECT_EQ(root->at("key")->as_string(), "value");
}

TEST(Yaml, EmptyValueBecomesEmptyScalar) {
  const NodePtr root = parse("key:\nother: x\n");
  EXPECT_TRUE(root->at("key")->is_scalar());
  EXPECT_EQ(root->at("key")->as_string(), "");
}

TEST(Yaml, DocumentStartMarkerIgnored) {
  const NodePtr root = parse("---\nkey: 1\n");
  EXPECT_EQ(root->at("key")->as_int(), 1);
}

TEST(Yaml, DuplicateKeyThrows) {
  EXPECT_THROW(parse("a: 1\na: 2\n"), ParseError);
}

TEST(Yaml, DuplicateFlowMapKeyThrows) {
  // Strict loads must not let flow mappings silently last-win.
  EXPECT_THROW(parse("event: {a: 1, a: 2}\n"), ParseError);
}

TEST(Yaml, LenientParseRecordsDuplicates) {
  ParseOptions options;
  options.allow_duplicate_keys = true;
  const Document doc = parse_document("a: 1\nb: 2\na: 3\n", options);
  EXPECT_EQ(doc.root->at("a")->as_int(), 3);  // last wins
  ASSERT_EQ(doc.duplicate_keys.size(), 1u);
  EXPECT_EQ(doc.duplicate_keys[0].key, "a");
  EXPECT_EQ(doc.duplicate_keys[0].first.line, 1u);
  EXPECT_EQ(doc.duplicate_keys[0].duplicate.line, 3u);
  EXPECT_EQ(doc.duplicate_keys[0].duplicate.column, 1u);
}

TEST(Yaml, LenientParseRecordsFlowDuplicates) {
  ParseOptions options;
  options.allow_duplicate_keys = true;
  const Document doc = parse_document("event: {a: 1, a: 2}\n", options);
  ASSERT_EQ(doc.duplicate_keys.size(), 1u);
  EXPECT_EQ(doc.duplicate_keys[0].key, "a");
  EXPECT_EQ(doc.duplicate_keys[0].first.column, 9u);
  EXPECT_EQ(doc.duplicate_keys[0].duplicate.column, 15u);
}

TEST(Yaml, NodeMarksTrackSource) {
  const NodePtr root = parse(
      "benchmark:\n"
      "  name: llm\n"
      "  batches: [16, 32]\n");
  EXPECT_EQ(root->mark().line, 1u);
  EXPECT_EQ(root->mark().column, 1u);
  const NodePtr name = root->at("benchmark")->at("name");
  EXPECT_EQ(name->mark().line, 2u);
  EXPECT_EQ(name->mark().column, 9u);
  const NodePtr batches = root->at("benchmark")->at("batches");
  EXPECT_EQ(batches->mark().line, 3u);
  EXPECT_EQ(batches->mark().column, 12u);
  EXPECT_EQ(batches->item(1)->mark().line, 3u);
  EXPECT_EQ(batches->item(1)->mark().column, 17u);
}

TEST(Yaml, ParseErrorsCarryMarks) {
  try {
    parse("a: 1\n  b: 2\n");
    FAIL() << "expected LocatedParseError";
  } catch (const LocatedParseError& e) {
    EXPECT_EQ(e.mark().line, 2u);
  }
}

TEST(Yaml, TabIndentationThrows) {
  EXPECT_THROW(parse("a:\n\tb: 1\n"), ParseError);
}

TEST(Yaml, UnterminatedFlowThrows) {
  EXPECT_THROW(parse("a: [1, 2\n"), ParseError);
}

TEST(Yaml, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse("a: \"oops\n"), ParseError);
}

TEST(Yaml, MissingKeyThrows) {
  const NodePtr root = parse("a: 1\n");
  EXPECT_THROW(root->at("b"), NotFound);
  EXPECT_EQ(root->find("b"), nullptr);
}

TEST(Yaml, GetOrDefaults) {
  const NodePtr root = parse("a: 5\n");
  EXPECT_EQ(root->get_or("missing", "fallback"), "fallback");
  EXPECT_EQ(root->get_int_or("a", 0), 5);
  EXPECT_EQ(root->get_int_or("missing", 7), 7);
  EXPECT_DOUBLE_EQ(root->get_double_or("missing", 2.5), 2.5);
  EXPECT_TRUE(root->get_bool_or("missing", true));
}

TEST(Yaml, DumpRoundTrip) {
  const std::string doc =
      "benchmark:\n"
      "  name: llm\n"
      "steps:\n"
      "  - train\n"
      "  - analyse\n";
  const NodePtr root = parse(doc);
  const NodePtr again = parse(root->dump());
  EXPECT_EQ(again->at("benchmark")->at("name")->as_string(), "llm");
  EXPECT_EQ(again->at("steps")->size(), 2u);
}

TEST(Yaml, JubeStyleDocument) {
  // The shape of the shipped configs/llm_benchmark_nvidia_amd.yaml.
  const NodePtr root = parse(
      "benchmark:\n"
      "  name: caraml-llm\n"
      "parametersets:\n"
      "  - name: systems\n"
      "    parameters:\n"
      "      - name: system\n"
      "        values: [A100, GH200]\n"
      "      - name: batch\n"
      "        values: \"16,32\"\n"
      "steps:\n"
      "  - name: train\n"
      "    do: llm_train\n");
  EXPECT_EQ(root->at("benchmark")->at("name")->as_string(), "caraml-llm");
  const NodePtr sets = root->at("parametersets");
  ASSERT_EQ(sets->size(), 1u);
  const NodePtr params = sets->item(0)->at("parameters");
  ASSERT_EQ(params->size(), 2u);
  EXPECT_EQ(params->item(0)->at("values")->item(1)->as_string(), "GH200");
  EXPECT_EQ(params->item(1)->at("values")->as_string(), "16,32");
  EXPECT_EQ(root->at("steps")->item(0)->at("do")->as_string(), "llm_train");
}

// Property test: random trees survive dump -> parse.
class YamlRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

namespace {
caraml::yaml::NodePtr random_tree(caraml::Rng& rng, int depth) {
  using caraml::yaml::Node;
  const double r = rng.next_double();
  if (depth >= 3 || r < 0.4) {
    // Scalar: plain word, number, or a string needing quotes.
    switch (rng.uniform_int(0, 3)) {
      case 0: return Node::make_scalar("word" + std::to_string(rng.uniform_int(0, 99)));
      case 1: return Node::make_scalar(std::to_string(rng.uniform_int(-50, 50)));
      case 2: return Node::make_scalar("has: colon #" + std::to_string(rng.uniform_int(0, 9)));
      default: return Node::make_scalar("");
    }
  }
  if (r < 0.7) {
    auto map = Node::make_map();
    const std::int64_t entries = rng.uniform_int(1, 4);
    for (std::int64_t i = 0; i < entries; ++i) {
      map->set("key" + std::to_string(i), random_tree(rng, depth + 1));
    }
    return map;
  }
  auto seq = Node::make_sequence();
  const std::int64_t items = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < items; ++i) {
    seq->push_back(random_tree(rng, depth + 1));
  }
  return seq;
}

void expect_equal_trees(const caraml::yaml::NodePtr& a,
                        const caraml::yaml::NodePtr& b) {
  ASSERT_EQ(a->kind(), b->kind());
  if (a->is_scalar()) {
    EXPECT_EQ(a->as_string(), b->as_string());
  } else if (a->is_map()) {
    ASSERT_EQ(a->entries().size(), b->entries().size());
    for (const auto& [key, value] : a->entries()) {
      expect_equal_trees(value, b->at(key));
    }
  } else {
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      expect_equal_trees(a->item(i), b->item(i));
    }
  }
}
}  // namespace

TEST_P(YamlRoundTrip, DumpParseIsIdentity) {
  caraml::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    NodePtr tree = random_tree(rng, 0);
    if (tree->is_scalar() && tree->as_string().empty()) continue;
    NodePtr back = parse(tree->dump());
    expect_equal_trees(tree, back);
  }
}
INSTANTIATE_TEST_SUITE_P(Yaml, YamlRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Yaml, SetAndEntries) {
  NodePtr map = Node::make_map();
  map->set("a", Node::make_scalar("1"));
  map->set("b", Node::make_scalar("2"));
  map->set("a", Node::make_scalar("3"));  // overwrite
  ASSERT_EQ(map->entries().size(), 2u);
  EXPECT_EQ(map->at("a")->as_string(), "3");
}

TEST(Yaml, EmptyDocumentIsEmptyMap) {
  const NodePtr root = parse("\n# only comments\n");
  ASSERT_TRUE(root->is_map());
  EXPECT_EQ(root->size(), 0u);
}

}  // namespace
}  // namespace caraml::yaml
