// End-to-end tests of the `caraml` and `jpwr` command-line binaries, run as
// subprocesses (paths injected by CMake).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CaramlCli, SystemsListsAllTags) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) + " systems");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  for (const char* tag :
       {"JEDI", "GH200", "H100", "WAIH100", "MI250", "GC200", "A100"}) {
    EXPECT_NE(result.output.find(tag), std::string::npos) << tag;
  }
}

TEST(CaramlCli, LlmPointPrintsMetrics) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) +
                                  " llm --system GH200 --batch 512");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("tokens/s/GPU"), std::string::npos);
  EXPECT_NE(result.output.find("tokens/Wh"), std::string::npos);
}

TEST(CaramlCli, IpuPathViaGc200Tag) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) +
                                  " llm --system GC200 --batch 1024");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Wh/epoch/IPU"), std::string::npos);
}

TEST(CaramlCli, OomReportedWithNonZeroExit) {
  const auto result = run_command(
      std::string(CARAML_CLI_PATH) +
      " resnet --system A100 --batch 2048 --devices 1");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("OOM"), std::string::npos);
}

TEST(CaramlCli, TelemetryFlagsProduceTraceMetricsAndManifest) {
  const std::string dir = ::testing::TempDir() + "caraml_cli_telemetry";
  run_command("rm -rf " + dir + " && mkdir -p " + dir);
  const auto result = run_command(
      std::string(CARAML_CLI_PATH) +
      " llm --system GH200 --batch 512 --trace-out " + dir +
      "/trace.json --metrics-out " + dir + "/out --log-format json");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("tokens/s/GPU"), std::string::npos);

  // Chrome trace contains both complete spans and power counter events.
  std::ifstream trace(dir + "/trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_NE(trace_text.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("traceEvents"), std::string::npos);

  // Metrics include the simulator event-loop counters and the PowerScope
  // jitter histogram; the energy CSV and manifest land beside them.
  std::ifstream metrics(dir + "/out/metrics.csv");
  ASSERT_TRUE(metrics.good());
  std::stringstream metrics_text;
  metrics_text << metrics.rdbuf();
  EXPECT_NE(metrics_text.str().find("sim/events_processed"),
            std::string::npos);
  EXPECT_NE(metrics_text.str().find("power/sample_jitter_ms"),
            std::string::npos);
  EXPECT_TRUE(std::ifstream(dir + "/out/energy.csv").good());
  std::ifstream manifest(dir + "/out/manifest.jsonl");
  ASSERT_TRUE(manifest.good());
  std::string line;
  ASSERT_TRUE(std::getline(manifest, line));
  EXPECT_NE(line.find("\"command\":\"llm\""), std::string::npos);
  EXPECT_NE(line.find("\"system_tag\":\"GH200\""), std::string::npos);
  EXPECT_NE(line.find("\"power_samples\""), std::string::npos);
}

TEST(CaramlCli, JsonLogFormatRejected) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) +
                                  " llm --system GH200 --batch 512 "
                                  "--log-format yaml");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("log format"), std::string::npos);
}

TEST(CaramlCli, UnknownCommandFails) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) + " frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
}

TEST(CaramlCli, HelpListsSubcommands) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) + " --help");
  EXPECT_EQ(result.exit_code, 0);
  for (const char* cmd :
       {"systems", "run", "llm", "resnet", "inference", "tts", "combine",
        "export"}) {
    EXPECT_NE(result.output.find(cmd), std::string::npos) << cmd;
  }
}

TEST(CaramlCli, AnalyseTraceRanksLoadImbalanceOnDeratedRun) {
  const std::string dir = ::testing::TempDir() + "caraml_cli_analyse";
  run_command("rm -rf " + dir + " && mkdir -p " + dir);
  const auto run = run_command(
      std::string(CARAML_CLI_PATH) +
      " llm --system A100 --batch 256 --devices 4 --derate-device 0:3"
      " --trace-out " + dir + "/trace.json");
  ASSERT_EQ(run.exit_code, 0) << run.output;

  const auto analyse = run_command(
      std::string(CARAML_CLI_PATH) + " analyse-trace " + dir +
      "/trace.json --format json --json-out " + dir + "/analysis.json");
  EXPECT_EQ(analyse.exit_code, 0) << analyse.output;
  // One device derated 3x must rank as the top bottleneck, with skew
  // quantified in the metrics.
  const std::string expected_first = "\"rule\":\"analysis/load-imbalance\"";
  const std::string::size_type first_rule = analyse.output.find("\"rule\":");
  ASSERT_NE(first_rule, std::string::npos) << analyse.output;
  EXPECT_EQ(analyse.output.compare(first_rule, expected_first.size(),
                                   expected_first),
            0)
      << analyse.output;
  EXPECT_NE(analyse.output.find("\"skew\":"), std::string::npos);
  EXPECT_NE(analyse.output.find("\"version\":1"), std::string::npos);
  // --json-out mirrors the document regardless of --format.
  std::ifstream json_file(dir + "/analysis.json");
  ASSERT_TRUE(json_file.good());
  std::stringstream json_text;
  json_text << json_file.rdbuf();
  EXPECT_NE(json_text.str().find("analysis/load-imbalance"),
            std::string::npos);

  const auto human =
      run_command(std::string(CARAML_CLI_PATH) + " analyse-trace " + dir +
                  "/trace.json");
  EXPECT_EQ(human.exit_code, 0) << human.output;
  EXPECT_NE(human.output.find("[warning] load-imbalance"), std::string::npos)
      << human.output;
}

TEST(CaramlCli, AnalyseTraceListDetectors) {
  const auto result = run_command(std::string(CARAML_CLI_PATH) +
                                  " analyse-trace --list-detectors");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  for (const char* rule :
       {"analysis/critical-path", "analysis/pipeline-bubble",
        "analysis/comm-pattern", "analysis/load-imbalance",
        "analysis/queue-wait", "analysis/energy-attribution"}) {
    EXPECT_NE(result.output.find(rule), std::string::npos) << rule;
  }
}

TEST(CaramlCli, AnalyseTraceReportsMalformedJsonWithOffset) {
  const std::string dir = ::testing::TempDir() + "caraml_cli_badtrace";
  run_command("rm -rf " + dir + " && mkdir -p " + dir);
  {
    std::ofstream bad(dir + "/bad.json");
    bad << "{\"traceEvents\":[{\"ph\":\"X\",";
  }
  const auto result = run_command(std::string(CARAML_CLI_PATH) +
                                  " analyse-trace " + dir + "/bad.json");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("bad.json"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("at offset"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("analysis/trace-error"), std::string::npos)
      << result.output;
}

TEST(CaramlCli, FailedRunStillFlushesTraceAndMetrics) {
  const std::string dir = ::testing::TempDir() + "caraml_cli_failflush";
  run_command("rm -rf " + dir + " && mkdir -p " + dir);
  // batch 250 is not divisible into 8 micro-batches: the run throws after
  // telemetry is armed, and the trace/metrics/manifest must flush anyway.
  const auto result = run_command(
      std::string(CARAML_CLI_PATH) + " llm --system GH200 --batch 250"
      " --trace-out " + dir + "/trace.json --metrics-out " + dir + "/out");
  EXPECT_EQ(result.exit_code, 1) << result.output;

  EXPECT_TRUE(std::ifstream(dir + "/trace.json").good());
  EXPECT_TRUE(std::ifstream(dir + "/out/metrics.csv").good());
  std::ifstream manifest(dir + "/out/manifest.jsonl");
  ASSERT_TRUE(manifest.good());
  std::string line;
  ASSERT_TRUE(std::getline(manifest, line));
  EXPECT_NE(line.find("\"status\":\"failed\""), std::string::npos) << line;
}

TEST(CaramlCli, SweepAnalyseAnnotatesWorkpackages) {
  const auto result = run_command(
      std::string(CARAML_CLI_PATH) + " run --script " + CARAML_CONFIG_DIR +
      "/llm_benchmark_nvidia_amd.yaml --tag A100 --analyse");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("top_bottleneck"), std::string::npos)
      << result.output;
  // Every workpackage row carries a ranked bottleneck annotation.
  EXPECT_NE(result.output.find("analysis/"), std::string::npos)
      << result.output;
}

TEST(JpwrCli, WrapsCommandAndReportsEnergy) {
  const auto result = run_command(std::string(CARAML_JPWR_PATH) +
                                  " --methods synthetic --interval 5 sleep "
                                  "0.05");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("jpwr energy report"), std::string::npos);
  EXPECT_NE(result.output.find("synthetic:synthetic0"), std::string::npos);
}

TEST(JpwrCli, PropagatesChildExitCode) {
  const auto result = run_command(std::string(CARAML_JPWR_PATH) +
                                  " --methods synthetic false");
  EXPECT_EQ(result.exit_code, 1);
}

TEST(JpwrCli, MissingCommandFails) {
  const auto result =
      run_command(std::string(CARAML_JPWR_PATH) + " --methods synthetic");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("no command given"), std::string::npos);
}

}  // namespace
