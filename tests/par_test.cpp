#include <gtest/gtest.h>

#include <atomic>

#include "nn/attention.hpp"
#include "nn/gpt.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "par/comm.hpp"
#include "par/data_parallel.hpp"
#include "par/pipeline.hpp"
#include "par/tensor_parallel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::par {
namespace {

using tensor::Tensor;

// --- collectives -------------------------------------------------------------------

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, AllReduceSumMatchesSerialSum) {
  const int ranks = GetParam();
  DeviceGroup group(ranks);
  group.run([&](Communicator& comm) {
    // Contribution of rank r: value[i] = r + i.
    Tensor value({5});
    for (std::int64_t i = 0; i < 5; ++i) {
      value[i] = static_cast<float>(comm.rank() + i);
    }
    comm.all_reduce_sum(value);
    // Expected: sum_r (r + i) = ranks*i + ranks*(ranks-1)/2.
    for (std::int64_t i = 0; i < 5; ++i) {
      const float expected = static_cast<float>(
          ranks * i + ranks * (ranks - 1) / 2);
      ASSERT_FLOAT_EQ(value[i], expected) << "rank " << comm.rank();
    }
  });
}

TEST_P(CollectiveRanks, AllReduceMeanAveragesContributions) {
  const int ranks = GetParam();
  DeviceGroup group(ranks);
  group.run([&](Communicator& comm) {
    Tensor value({1}, {static_cast<float>(comm.rank())});
    comm.all_reduce_mean(value);
    ASSERT_FLOAT_EQ(value[0], static_cast<float>(ranks - 1) / 2.0f);
  });
}

TEST_P(CollectiveRanks, BroadcastDistributesRootValue) {
  const int ranks = GetParam();
  DeviceGroup group(ranks);
  group.run([&](Communicator& comm) {
    Tensor value({2}, {static_cast<float>(comm.rank()),
                       static_cast<float>(-comm.rank())});
    comm.broadcast(value, /*root=*/0);
    ASSERT_FLOAT_EQ(value[0], 0.0f);
    ASSERT_FLOAT_EQ(value[1], 0.0f);
  });
}

TEST_P(CollectiveRanks, AllGatherCollectsEveryRank) {
  const int ranks = GetParam();
  DeviceGroup group(ranks);
  group.run([&](Communicator& comm) {
    Tensor value({1}, {static_cast<float>(comm.rank() * 10)});
    const auto gathered = comm.all_gather(value);
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
      ASSERT_FLOAT_EQ(gathered[static_cast<std::size_t>(r)][0],
                      static_cast<float>(r * 10));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Par, CollectiveRanks, ::testing::Values(1, 2, 3, 4, 8));

TEST(Collectives, RepeatedAllReducesStayConsistent) {
  DeviceGroup group(4);
  group.run([&](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      Tensor value({1}, {1.0f});
      comm.all_reduce_sum(value);
      ASSERT_FLOAT_EQ(value[0], 4.0f) << "round " << round;
    }
  });
}

TEST(Collectives, BarrierSynchronizesPhases) {
  const int ranks = 4;
  DeviceGroup group(ranks);
  std::atomic<int> phase_counter{0};
  group.run([&](Communicator& comm) {
    ++phase_counter;
    comm.barrier();
    // After the barrier, every rank must observe all arrivals.
    ASSERT_EQ(phase_counter.load(), ranks);
  });
}

TEST(Collectives, SendRecvDeliversInOrder) {
  DeviceGroup group(2);
  group.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(Tensor({1}, {1.0f}), 1);
      comm.send(Tensor({1}, {2.0f}), 1);
    } else {
      ASSERT_FLOAT_EQ(comm.recv(0)[0], 1.0f);
      ASSERT_FLOAT_EQ(comm.recv(0)[0], 2.0f);
    }
  });
}

TEST(Collectives, SendRecvTagsKeepStreamsSeparate) {
  DeviceGroup group(2);
  group.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(Tensor({1}, {7.0f}), 1, /*tag=*/7);
      comm.send(Tensor({1}, {9.0f}), 1, /*tag=*/9);
    } else {
      // Receive in the opposite order of sending.
      ASSERT_FLOAT_EQ(comm.recv(0, 9)[0], 9.0f);
      ASSERT_FLOAT_EQ(comm.recv(0, 7)[0], 7.0f);
    }
  });
}

TEST(Collectives, ShapeMismatchAcrossRanksThrows) {
  DeviceGroup group(2);
  EXPECT_THROW(group.run([&](Communicator& comm) {
    Tensor value(comm.rank() == 0 ? tensor::Shape{2} : tensor::Shape{3});
    comm.all_reduce_sum(value);
  }),
               Error);
}

TEST(DeviceGroup, ExceptionsPropagateToCaller) {
  DeviceGroup group(3);
  EXPECT_THROW(group.run([](Communicator& comm) {
    if (comm.rank() == 1) throw InvalidArgument("boom");
    // Other ranks finish without collectives so they do not deadlock.
  }),
               InvalidArgument);
}

// --- data parallel ---------------------------------------------------------------------

TEST(DataParallel, ReplicasStayBitIdentical) {
  nn::GptModelConfig config;
  config.vocab_size = 12;
  config.block_size = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.embed_dim = 8;

  DataParallelTrainer trainer(3, [&](int rank) {
    Rng init(static_cast<std::uint64_t>(100 + rank));  // different init...
    auto model = std::make_shared<nn::GptModel>(config, init);
    auto optimizer = std::make_shared<nn::Adam>(model->parameters(), 1e-3f);
    return DataParallelTrainer::Replica{model, optimizer};
  });

  // ...but broadcast_parameters at start + identical averaged gradients
  // keep replicas in lockstep. Verify by checking the losses decrease and by
  // re-running the divergence check inside a final group.
  std::atomic<double> divergence{-1.0};
  DeviceGroup group(3);
  group.run([&](Communicator& comm) {
    Rng init(static_cast<std::uint64_t>(100 + comm.rank()));
    nn::GptModel model(config, init);
    auto params = model.parameters();
    broadcast_parameters(comm, params);
    nn::Adam optimizer(params, 1e-3f);
    for (int step = 0; step < 3; ++step) {
      optimizer.zero_grad();
      Rng data(static_cast<std::uint64_t>(comm.rank() * 7 + step));
      Tensor tokens({2, 4});
      std::vector<std::int64_t> targets(8);
      for (std::int64_t i = 0; i < 8; ++i) {
        tokens[i] = static_cast<float>(data.uniform_int(0, 11));
        targets[static_cast<std::size_t>(i)] = data.uniform_int(0, 11);
      }
      model.train_step(tokens, targets);
      all_reduce_gradients(comm, params);
      optimizer.step();
    }
    const double d = parameter_divergence(comm, params);
    if (comm.rank() == 0) divergence.store(d);
  });
  EXPECT_EQ(divergence.load(), 0.0);
}

TEST(DataParallel, TrainerRunsAndReportsLosses) {
  nn::GptModelConfig config;
  config.vocab_size = 8;
  config.block_size = 4;
  config.num_layers = 1;
  config.num_heads = 1;
  config.embed_dim = 8;

  DataParallelTrainer trainer(2, [&](int) {
    Rng init(1);
    auto model = std::make_shared<nn::GptModel>(config, init);
    auto optimizer = std::make_shared<nn::Adam>(model->parameters(), 5e-3f);
    return DataParallelTrainer::Replica{model, optimizer};
  });

  const auto result = trainer.train(
      8, [&](int rank, std::int64_t step,
             DataParallelTrainer::Replica& replica) {
        (void)rank;
        (void)step;
        Tensor tokens({1, 4}, {0, 1, 2, 3});
        const std::vector<std::int64_t> targets = {1, 2, 3, 0};
        auto* gpt = dynamic_cast<nn::GptModel*>(replica.model.get());
        return gpt->train_step(tokens, targets);
      });
  ASSERT_EQ(result.losses.size(), 8u);
  EXPECT_LT(result.losses.back(), result.losses.front());
  EXPECT_GT(result.samples_per_second, 0.0);
}

// --- tensor parallel -------------------------------------------------------------------

TEST(TensorParallel, MlpMatchesSerialComputation) {
  // A 2-way tensor-parallel MLP must produce exactly the serial result when
  // its shards are assembled from the serial weights.
  const std::int64_t hidden = 8;
  Rng rng(3);
  nn::Linear fc_in(hidden, 4 * hidden, rng, true, 0.4f);
  nn::Linear fc_out(4 * hidden, hidden, rng, true, 0.4f);
  const Tensor x = Tensor::randn({3, hidden}, rng);

  // Serial reference.
  nn::Gelu gelu;
  const Tensor reference =
      fc_out.forward(gelu.forward(fc_in.forward(x)));

  const int tp = 2;
  std::vector<Tensor> outputs(static_cast<std::size_t>(tp));
  DeviceGroup group(tp);
  group.run([&](Communicator& comm) {
    Rng local(7);
    ColumnParallelLinear col(hidden, 4 * hidden, comm, local);
    RowParallelLinear row(4 * hidden, hidden, comm, local);

    // Install shards of the serial weights.
    const std::int64_t shard = 4 * hidden / tp;
    for (std::int64_t o = 0; o < shard; ++o) {
      const std::int64_t src_row = comm.rank() * shard + o;
      for (std::int64_t i = 0; i < hidden; ++i) {
        col.parameters()[0]->value[o * hidden + i] =
            fc_in.weight().value[src_row * hidden + i];
      }
      col.parameters()[1]->value[o] = fc_in.bias()->value[src_row];
    }
    // Row-parallel: input columns sharded.
    auto* row_weight = row.parameters()[0];
    for (std::int64_t o = 0; o < hidden; ++o) {
      for (std::int64_t i = 0; i < shard; ++i) {
        row_weight->value[o * shard + i] =
            fc_out.weight().value[o * 4 * hidden + comm.rank() * shard + i];
      }
    }
    if (comm.rank() == 0) {
      *row.parameters()[1] = nn::Parameter("bias", fc_out.bias()->value);
    }

    nn::Gelu local_gelu;
    Tensor y = row.forward(local_gelu.forward(col.forward(x)));
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(y);
  });

  for (int r = 0; r < tp; ++r) {
    const Tensor& y = outputs[static_cast<std::size_t>(r)];
    ASSERT_EQ(y.shape(), reference.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      ASSERT_NEAR(y[i], reference[i], 1e-4f) << "rank " << r << " idx " << i;
    }
  }
}

TEST(TensorParallel, MlpBackwardRuns) {
  DeviceGroup group(2);
  group.run([&](Communicator& comm) {
    Rng rng(5);
    TensorParallelMlp mlp(8, comm, rng);
    const Tensor x = Tensor::randn({2, 8}, rng);
    const Tensor y = mlp.forward(x);
    ASSERT_EQ(y.dim(1), 8);
    const Tensor dx = mlp.backward(Tensor::ones(y.shape()));
    ASSERT_EQ(dx.shape(), x.shape());
    ASSERT_GT(mlp.parameters().size(), 0u);
  });
}

TEST(TensorParallel, DivisibilityEnforced) {
  DeviceGroup group(3);
  EXPECT_THROW(group.run([](Communicator& comm) {
    Rng rng(1);
    ColumnParallelLinear bad(4, 8, comm, rng);  // 8 % 3 != 0
  }),
               Error);
}

TEST(TensorParallelAttention, MatchesSerialAttention) {
  // Heads split across 2 ranks with shards of the serial weights must give
  // exactly the serial forward output and input gradient.
  const std::int64_t embed = 8, heads = 4;
  Rng rng(17);
  nn::CausalSelfAttention serial(embed, heads, rng);
  const Tensor x = Tensor::randn({2, 5, embed}, rng, 0.5f);
  const Tensor reference = serial.forward(x);
  const Tensor g = Tensor::randn({2, 5, embed}, rng, 0.3f);
  const Tensor d_reference = serial.backward(g);

  auto serial_params = serial.parameters();  // qkv_w, qkv_b, proj_w, proj_b
  const int tp = 2;
  std::vector<Tensor> outputs(static_cast<std::size_t>(tp));
  std::vector<Tensor> dinputs(static_cast<std::size_t>(tp));
  DeviceGroup group(tp);
  group.run([&](Communicator& comm) {
    Rng local(1);
    TensorParallelAttention attention(embed, heads, comm, local);
    attention.load_from_serial(serial_params[0]->value,
                               serial_params[1]->value,
                               serial_params[2]->value,
                               serial_params[3]->value);
    Tensor y = attention.forward(x);
    Tensor dx = attention.backward(g);
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(y);
    dinputs[static_cast<std::size_t>(comm.rank())] = std::move(dx);
  });

  for (int r = 0; r < tp; ++r) {
    ASSERT_EQ(outputs[static_cast<std::size_t>(r)].shape(), reference.shape());
    for (std::int64_t i = 0; i < reference.numel(); ++i) {
      ASSERT_NEAR(outputs[static_cast<std::size_t>(r)][i], reference[i], 1e-4f)
          << "rank " << r << " idx " << i;
      ASSERT_NEAR(dinputs[static_cast<std::size_t>(r)][i], d_reference[i],
                  1e-4f)
          << "grad rank " << r << " idx " << i;
    }
  }
}

TEST(TensorParallelAttention, HeadDivisibilityEnforced) {
  DeviceGroup group(3);
  EXPECT_THROW(group.run([](Communicator& comm) {
    Rng rng(1);
    TensorParallelAttention bad(8, 4, comm, rng);  // 4 heads % 3 ranks != 0
  }),
               Error);
}

TEST(TensorParallelAttention, LocalHeadCount) {
  DeviceGroup group(2);
  group.run([](Communicator& comm) {
    Rng rng(2);
    TensorParallelAttention attention(16, 4, comm, rng);
    ASSERT_EQ(attention.local_heads(), 2);
    // Forward/backward run standalone (random weights).
    Rng data(3);
    const Tensor x = Tensor::randn({1, 4, 16}, data);
    const Tensor y = attention.forward(x);
    ASSERT_EQ(y.shape(), x.shape());
    const Tensor dx = attention.backward(Tensor::ones(y.shape()));
    ASSERT_EQ(dx.shape(), x.shape());
  });
}

TEST(TensorParallelBlock, MatchesSerialTransformerBlock) {
  // Full Megatron block parity: a 2-way TP block loaded with shards of a
  // serial block's weights must reproduce its forward output and input
  // gradient exactly.
  const std::int64_t embed = 8, heads = 2;
  Rng rng(41);
  nn::TransformerBlock serial(embed, heads, rng);
  const Tensor x = Tensor::randn({1, 4, embed}, rng, 0.5f);
  const Tensor reference = serial.forward(x);
  const Tensor g = Tensor::randn({1, 4, embed}, rng, 0.3f);
  const Tensor d_reference = serial.backward(g);

  // Serial parameter order: ln1(g,b), attn(qkv_w,qkv_b,proj_w,proj_b),
  // ln2(g,b), fc_in(w,b), fc_out(w,b).
  auto sp = serial.parameters();
  ASSERT_EQ(sp.size(), 12u);

  const int tp = 2;
  std::vector<Tensor> outputs(static_cast<std::size_t>(tp));
  std::vector<Tensor> dinputs(static_cast<std::size_t>(tp));
  DeviceGroup group(tp);
  group.run([&](Communicator& comm) {
    Rng local(2);
    TensorParallelBlock block(embed, heads, comm, local);
    // Layer norms: replicated.
    block.ln1().gamma().value = sp[0]->value;
    block.ln1().beta().value = sp[1]->value;
    block.ln2().gamma().value = sp[6]->value;
    block.ln2().beta().value = sp[7]->value;
    // Attention shards.
    block.attention().load_from_serial(sp[2]->value, sp[3]->value,
                                       sp[4]->value, sp[5]->value);
    // MLP shards: fc_in rows, fc_out columns.
    const std::int64_t shard = 4 * embed / tp;
    auto* col_w = block.mlp_in().parameters()[0];
    auto* col_b = block.mlp_in().parameters()[1];
    for (std::int64_t o = 0; o < shard; ++o) {
      const std::int64_t src = comm.rank() * shard + o;
      for (std::int64_t i = 0; i < embed; ++i) {
        col_w->value[o * embed + i] = sp[8]->value[src * embed + i];
      }
      col_b->value[o] = sp[9]->value[src];
    }
    auto* row_w = block.mlp_out().parameters()[0];
    for (std::int64_t o = 0; o < embed; ++o) {
      for (std::int64_t i = 0; i < shard; ++i) {
        row_w->value[o * shard + i] =
            sp[10]->value[o * 4 * embed + comm.rank() * shard + i];
      }
    }
    if (comm.rank() == 0) block.mlp_out().parameters()[1]->value = sp[11]->value;

    Tensor y = block.forward(x);
    Tensor dx = block.backward(g);
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(y);
    dinputs[static_cast<std::size_t>(comm.rank())] = std::move(dx);
  });

  for (int r = 0; r < tp; ++r) {
    for (std::int64_t i = 0; i < reference.numel(); ++i) {
      ASSERT_NEAR(outputs[static_cast<std::size_t>(r)][i], reference[i], 1e-4f)
          << "rank " << r << " idx " << i;
      ASSERT_NEAR(dinputs[static_cast<std::size_t>(r)][i], d_reference[i],
                  1e-4f)
          << "grad rank " << r << " idx " << i;
    }
  }
}

// --- pipeline schedules --------------------------------------------------------------

TEST(Pipeline, GpipeBubbleMatchesClosedForm) {
  for (int stages : {1, 2, 4, 8}) {
    for (int micro : {1, 4, 16}) {
      const auto schedule = build_pipeline_schedule(
          PipelineScheduleKind::kGPipe, stages, micro, 1.0);
      EXPECT_NEAR(schedule.bubble_fraction,
                  gpipe_bubble_fraction(stages, micro), 1e-9)
          << "p=" << stages << " m=" << micro;
    }
  }
}

TEST(Pipeline, GpipeMakespanFormula) {
  // With backward = forward = 1: makespan = 2*(m + p - 1).
  const auto schedule =
      build_pipeline_schedule(PipelineScheduleKind::kGPipe, 4, 8, 1.0);
  EXPECT_NEAR(schedule.makespan, 2.0 * (8 + 4 - 1), 1e-9);
}

TEST(Pipeline, OneFOneBNoSlowerThanGpipe) {
  for (int stages : {2, 4, 8}) {
    for (int micro : {2, 8, 32}) {
      const auto gpipe = build_pipeline_schedule(
          PipelineScheduleKind::kGPipe, stages, micro, 2.0);
      const auto one_f = build_pipeline_schedule(
          PipelineScheduleKind::kOneFOneB, stages, micro, 2.0);
      EXPECT_LE(one_f.makespan, gpipe.makespan + 1e-9)
          << "p=" << stages << " m=" << micro;
    }
  }
}

TEST(Pipeline, ScheduleContainsEverySlotExactlyOnce) {
  const auto schedule =
      build_pipeline_schedule(PipelineScheduleKind::kOneFOneB, 3, 5, 2.0);
  EXPECT_EQ(schedule.slots.size(), 3u * 5u * 2u);
  // Per stage: 5 forwards and 5 backwards.
  for (int s = 0; s < 3; ++s) {
    int fwd = 0, bwd = 0;
    for (const auto& slot : schedule.slots) {
      if (slot.stage != s) continue;
      if (slot.forward) ++fwd;
      else ++bwd;
    }
    EXPECT_EQ(fwd, 5);
    EXPECT_EQ(bwd, 5);
  }
}

TEST(Pipeline, SingleStageHasNoBubble) {
  const auto schedule =
      build_pipeline_schedule(PipelineScheduleKind::kGPipe, 1, 7, 2.0);
  EXPECT_NEAR(schedule.bubble_fraction, 0.0, 1e-9);
}

TEST(Pipeline, BubbleShrinksWithMoreMicroBatches) {
  double prev = 1.0;
  for (int micro : {2, 4, 8, 16, 32}) {
    const auto schedule = build_pipeline_schedule(
        PipelineScheduleKind::kGPipe, 4, micro, 2.0);
    EXPECT_LT(schedule.bubble_fraction, prev);
    prev = schedule.bubble_fraction;
  }
}

TEST(Pipeline, InvalidArgumentsThrow) {
  EXPECT_THROW(build_pipeline_schedule(PipelineScheduleKind::kGPipe, 0, 4),
               Error);
  EXPECT_THROW(build_pipeline_schedule(PipelineScheduleKind::kGPipe, 2, 0),
               Error);
}

// --- threaded pipeline inference --------------------------------------------------------

TEST(PipelineTrainer, MatchesSerialGradientAccumulation) {
  // GPipe training with activation recomputation must accumulate exactly
  // the gradients of processing the micro-batches serially.
  auto build_stages = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::shared_ptr<nn::Module>> stages;
    stages.push_back(std::make_shared<nn::Linear>(4, 8, rng, true, 0.4f));
    auto mid = std::make_shared<nn::Sequential>();
    mid->add(std::make_shared<nn::Gelu>());
    mid->add(std::make_shared<nn::Linear>(8, 8, rng, true, 0.4f));
    stages.push_back(mid);
    stages.push_back(std::make_shared<nn::Linear>(8, 3, rng, true, 0.4f));
    return stages;
  };

  Rng data(51);
  std::vector<Tensor> micros;
  std::vector<std::vector<std::int64_t>> targets;
  for (int i = 0; i < 4; ++i) {
    micros.push_back(Tensor::randn({2, 4}, data));
    targets.push_back({data.uniform_int(0, 2), data.uniform_int(0, 2)});
  }

  // Serial reference: same modules, micro-by-micro gradient accumulation.
  auto serial = build_stages(7);
  float serial_loss = 0.0f;
  for (std::size_t i = 0; i < micros.size(); ++i) {
    Tensor x = micros[i];
    for (auto& stage : serial) x = stage->forward(x);
    const auto result = nn::softmax_cross_entropy(x, targets[i]);
    serial_loss += result.loss / static_cast<float>(micros.size());
    Tensor g = result.grad_logits;
    for (auto it = serial.rbegin(); it != serial.rend(); ++it) {
      g = (*it)->backward(g);
    }
  }

  // Pipeline under test (identical initialization).
  auto stages = build_stages(7);
  PipelineTrainer trainer(stages);
  const float pipeline_loss = trainer.train_iteration(
      micros, [&](const Tensor& output, std::size_t micro) {
        const auto result = nn::softmax_cross_entropy(output, targets[micro]);
        return PipelineTrainer::MicroLoss{result.loss, result.grad_logits};
      });

  EXPECT_NEAR(pipeline_loss, serial_loss, 1e-5f);
  // Every parameter gradient matches the serial accumulation.
  std::vector<nn::Parameter*> serial_params;
  for (auto& stage : serial) {
    for (nn::Parameter* p : stage->parameters()) serial_params.push_back(p);
  }
  auto pipeline_params = trainer.parameters();
  ASSERT_EQ(pipeline_params.size(), serial_params.size());
  for (std::size_t i = 0; i < serial_params.size(); ++i) {
    for (std::int64_t j = 0; j < serial_params[i]->numel(); ++j) {
      ASSERT_NEAR(pipeline_params[i]->grad[j], serial_params[i]->grad[j],
                  1e-5f)
          << "param " << i << " idx " << j;
    }
  }
}

TEST(PipelineTrainer, TrainingLoopReducesLoss) {
  Rng rng(61);
  std::vector<std::shared_ptr<nn::Module>> stages;
  stages.push_back(std::make_shared<nn::Linear>(4, 16, rng, true, 0.4f));
  auto mid = std::make_shared<nn::Sequential>();
  mid->add(std::make_shared<nn::Gelu>());
  stages.push_back(mid);
  stages.push_back(std::make_shared<nn::Linear>(16, 2, rng, true, 0.4f));
  PipelineTrainer trainer(stages);
  nn::Adam optimizer(trainer.parameters(), 5e-2f);

  // Separable toy problem: sign of the first feature decides the class.
  Rng data(62);
  std::vector<Tensor> micros;
  std::vector<std::vector<std::int64_t>> targets;
  for (int i = 0; i < 3; ++i) {
    Tensor x = Tensor::randn({4, 4}, data);
    std::vector<std::int64_t> y;
    for (std::int64_t r = 0; r < 4; ++r) y.push_back(x[r * 4] > 0 ? 1 : 0);
    micros.push_back(std::move(x));
    targets.push_back(std::move(y));
  }

  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 30; ++step) {
    optimizer.zero_grad();
    const float loss = trainer.train_iteration(
        micros, [&](const Tensor& output, std::size_t micro) {
          const auto result =
              nn::softmax_cross_entropy(output, targets[micro]);
          return PipelineTrainer::MicroLoss{result.loss, result.grad_logits};
        });
    optimizer.step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.6f);
}

TEST(Pipeline, ThreadedInferenceMatchesSequentialExecution) {
  Rng rng(6);
  auto stage1 = std::make_shared<nn::Linear>(4, 6, rng, true, 0.4f);
  auto stage2 = std::make_shared<nn::Gelu>();
  auto stage3 = std::make_shared<nn::Linear>(6, 2, rng, true, 0.4f);

  std::vector<Tensor> micros;
  Rng data(8);
  for (int m = 0; m < 5; ++m) micros.push_back(Tensor::randn({3, 4}, data));

  // Sequential reference (computed first; modules are stateless in forward
  // except caches, which inference overwrites harmlessly).
  std::vector<Tensor> expected;
  for (const auto& m : micros) {
    expected.push_back(stage3->forward(stage2->forward(stage1->forward(m))));
  }

  const auto outputs =
      run_pipeline_inference({stage1, stage2, stage3}, micros);
  ASSERT_EQ(outputs.size(), micros.size());
  for (std::size_t m = 0; m < micros.size(); ++m) {
    ASSERT_EQ(outputs[m].shape(), expected[m].shape());
    for (std::int64_t i = 0; i < outputs[m].numel(); ++i) {
      ASSERT_NEAR(outputs[m][i], expected[m][i], 1e-5f);
    }
  }
}

}  // namespace
}  // namespace caraml::par
