// Golden-diagnostic tests for `caraml lint` (src/check).
//
// The corpus under tests/lint_corpus/ holds deliberately broken configs;
// each test asserts the exact rule ids and file:line:column locations the
// linter must produce — a column drifting by one means the caret no longer
// points at the offending token. The clean-corpus test runs the linter over
// every shipped file in configs/ and pins the expected result (zero errors,
// two known warnings).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "check/lint.hpp"
#include "check/rules.hpp"
#include "telemetry/json.hpp"
#include "topo/spec_yaml.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace caraml::check {
namespace {

std::string corpus(const std::string& name) {
  return std::string(CARAML_LINT_CORPUS_DIR) + "/" + name;
}

/// Compact "rule@line:col" fingerprints, in the list's sorted order.
std::vector<std::string> fingerprints(DiagnosticList& diags) {
  diags.sort();
  std::vector<std::string> out;
  for (const auto& d : diags.items()) {
    out.push_back(d.rule_id + "@" + std::to_string(d.location.line) + ":" +
                  std::to_string(d.location.column));
  }
  return out;
}

std::vector<std::string> lint_corpus_file(const std::string& name,
                                          DiagnosticList* keep = nullptr) {
  DiagnosticList diags;
  lint_file(corpus(name), LintOptions{}, diags);
  auto prints = fingerprints(diags);
  if (keep != nullptr) *keep = diags;
  return prints;
}

using V = std::vector<std::string>;

// --- golden corpus --------------------------------------------------------------

TEST(LintCorpus, DuplicateKeysBlockAndFlow) {
  EXPECT_EQ(lint_corpus_file("dup_key.yaml"),
            (V{"yaml/duplicate-key@3:3", "yaml/duplicate-key@7:24"}));
}

TEST(LintCorpus, BadAndCapturelessRegex) {
  // The llm_train cell is itself fine, so it picks up the layout analyzer's
  // info-level predictions alongside the seeded regex defects.
  EXPECT_EQ(lint_corpus_file("bad_regex.yaml"),
            (V{"layout/predicted-energy@4:5",
               "layout/predicted-oom-margin@4:5", "layout/predicted-time@4:5",
               "jube/bad-regex@8:12", "jube/regex-no-capture@10:12"}));
}

TEST(LintCorpus, ParameterCycleAndUnresolvedReference) {
  DiagnosticList diags;
  EXPECT_EQ(lint_corpus_file("param_cycle.yaml", &diags),
            (V{"jube/param-cycle@6:9", "jube/unresolved-param@11:18"}));
  // The unresolved-param location is the value token "${missing}-suffix".
  EXPECT_NE(diags.items()[1].message.find("${missing}"), std::string::npos);
}

TEST(LintCorpus, StepGraphDefects) {
  EXPECT_EQ(lint_corpus_file("steps_bad.yaml"),
            (V{"jube/dangling-depend@8:23", "jube/step-cycle@9:5",
               "jube/duplicate-step@15:5"}));
}

TEST(LintCorpus, TagSetSelectingNothing) {
  EXPECT_EQ(lint_corpus_file("tag_empty.yaml"),
            (V{"jube/tag-selects-nothing@1:1", "layout/predicted-energy@10:5",
               "layout/predicted-oom-margin@10:5",
               "layout/predicted-time@10:5"}));
}

TEST(LintCorpus, GuaranteedOomLlmWorkloadFlaggedStatically) {
  DiagnosticList diags;
  EXPECT_EQ(lint_corpus_file("oom_llm.yaml", &diags),
            (V{"layout/predicted-oom-margin@11:18", "sim/static-oom@11:18"}));
  // Warning, not error: the simulator survives an OOM (reports the cell as
  // OOM), so a lint run over such a sweep must still exit 0.
  EXPECT_FALSE(diags.has_errors());
  EXPECT_NE(diags.items()[1].message.find("175B"), std::string::npos);
  EXPECT_NE(diags.items()[1].message.find("A100"), std::string::npos);
  // The layout analyzer states the same footprint/capacity verdict, at the
  // same mark, from the shared analytic hooks.
  EXPECT_NE(diags.items()[0].message.find("37.3 GiB"), std::string::npos);
}

// --- layout analyzer corpus -----------------------------------------------------

TEST(LintCorpus, LayoutFeasibilityDefects) {
  DiagnosticList diags;
  EXPECT_EQ(lint_corpus_file("layout_bad.yaml", &diags),
            (V{"layout/invalid@5:5", "layout/invalid@10:5", "layout/oom@18:5",
               "layout/predicted-oom-margin@18:5",
               "layout/activation-pressure@26:5",
               "layout/predicted-energy@26:5",
               "layout/predicted-oom-margin@26:5", "layout/predicted-time@26:5",
               "layout/schedule-bubble@26:5", "layout/comm-bound@39:5",
               "layout/power-infeasible@39:5", "layout/power-infeasible@39:5",
               "layout/predicted-energy@39:5",
               "layout/predicted-oom-margin@39:5",
               "layout/predicted-time@39:5"}));
  // Invalid layouts are errors (they cannot run); feasibility hazards the
  // simulator would survive (OOM, pressure, comm-bound, power) are warnings.
  EXPECT_EQ(diags.count(Severity::kError), 2u);
  EXPECT_EQ(diags.count(Severity::kWarning), 5u);
  // Both the 200 W device cap and the 500 W node cap fire on slow-fabric.
  const auto& items = diags.items();
  int power = 0;
  for (const auto& d : items) power += d.rule_id == "layout/power-infeasible";
  EXPECT_EQ(power, 2);
}

TEST(LintCorpus, LayoutDtypeAxisDoublesFootprint) {
  DiagnosticList diags;
  EXPECT_EQ(lint_corpus_file("layout_dtype.yaml", &diags),
            (V{"layout/predicted-energy@7:5",
               "layout/predicted-oom-margin@7:5", "layout/predicted-time@7:5",
               "layout/oom@16:5", "layout/predicted-oom-margin@16:5",
               "layout/invalid@24:5"}));
  // Only the non-training precision is an error; the fp32 OOM is a warning
  // (the simulator survives it), the bf16 twin lints clean.
  EXPECT_EQ(diags.count(Severity::kError), 1u);
  EXPECT_EQ(diags.count(Severity::kWarning), 1u);
  // Pin the dtype-dependent margins: the identical layout goes from a
  // 5.8 GiB margin at bf16 to OOM at fp32 — the memory model doubled its
  // bytes-per-value, it did not just rescale a constant.
  const auto& items = diags.items();
  EXPECT_NE(items[1].message.find("31.5 GiB"), std::string::npos)
      << items[1].message;
  EXPECT_NE(items[1].message.find("margin 5.8 GiB"), std::string::npos)
      << items[1].message;
  EXPECT_NE(items[3].message.find("40.4 GiB"), std::string::npos)
      << items[3].message;
  EXPECT_NE(items[3].message.find("margin -3.2 GiB"), std::string::npos)
      << items[3].message;
  EXPECT_NE(items[5].message.find("int8 is inference-only"),
            std::string::npos)
      << items[5].message;
}

TEST(LintCorpus, SeededBadPipelineSchedules) {
  DiagnosticList diags;
  lint_file(corpus("schedule_bad.yaml"), LintOptions{}, diags);
  diags.sort();
  std::vector<std::string> schedule_prints;
  for (const auto& d : diags.items()) {
    if (d.rule_id.rfind("layout/schedule-", 0) == 0 &&
        d.rule_id != "layout/schedule-bubble") {
      schedule_prints.push_back(d.rule_id + "@" +
                                std::to_string(d.location.line) + ":" +
                                std::to_string(d.location.column));
    }
  }
  // Four never-scheduled backward slots, one blocking-send dependency
  // violation, one double-booked stage, one starved-but-valid timeline.
  EXPECT_EQ(schedule_prints,
            (V{"layout/schedule-deadlock@14:7", "layout/schedule-deadlock@14:7",
               "layout/schedule-deadlock@14:7", "layout/schedule-deadlock@14:7",
               "layout/schedule-deadlock@32:7", "layout/schedule-overlap@53:7",
               "layout/schedule-starved@75:7"}));
}

TEST(LintCorpus, LinkEfficiencyAndPowerCapRanges) {
  EXPECT_EQ(lint_corpus_file("link_bad.yaml"),
            (V{"sim/nonpositive-spec@4:5", "sim/nonpositive-spec@4:5",
               "sim/nonpositive-spec@6:29"}));
}

TEST(LintCorpus, FaultPlanDefects) {
  EXPECT_EQ(lint_corpus_file("fault_bad.yaml"),
            (V{"fault/unknown-field@4:15", "fault/bad-rate@5:9",
               "fault/unknown-kind@7:14", "fault/bad-severity@8:7",
               "fault/negative-time@8:7", "fault/zero-window@9:7",
               "fault/overlap@11:7", "fault/bad-device@12:7",
               "fault/beyond-horizon@12:7", "fault/retry-invalid@14:5",
               "fault/retry-unbounded@14:5"}));
}

TEST(LintCorpus, ChaosCampaignDefects) {
  EXPECT_EQ(lint_corpus_file("campaign_bad.yaml"),
            (V{"chaos/bad-mode@2:3", "chaos/bad-tolerance@2:3",
               "chaos/bad-workload@2:3", "chaos/small-campaign@2:3",
               "chaos/unknown-field@6:15", "chaos/bad-axis@8:5",
               "chaos/bad-axis@8:13", "chaos/bad-axis@9:18",
               "chaos/empty-axis@10:14", "chaos/bad-axis@11:18"}));
}

TEST(LintCorpus, ZeroTdpCalibrationTable) {
  EXPECT_EQ(
      lint_corpus_file("zero_tdp.yaml"),
      (V{"sim/anchor-mismatch@4:18", "sim/nonpositive-spec@4:18",
         "sim/anchor-mismatch@5:22", "sim/nonpositive-spec@5:22",
         "sim/anchor-mismatch@6:24", "sim/duplicate-tag@7:10",
         "sim/unknown-field@9:19", "sim/missing-tag@10:5"}));
}

// --- clean corpus: every shipped config ----------------------------------------

TEST(LintCorpus, ShippedConfigsProduceNoErrors) {
  DiagnosticList diags = lint_paths({CARAML_CONFIG_DIR});
  EXPECT_EQ(diags.count(Severity::kError), 0u) << diags.render_human();
  // The two expected warnings: the hypothetical H200X system in the shipped
  // calibration table, and the resnet50 batch-1024 cell that genuinely OOMs
  // an A100 at runtime (the lint prediction matches the simulator).
  ASSERT_EQ(diags.count(Severity::kWarning), 2u) << diags.render_human();
  diags.sort();
  const Diagnostic* unknown_system = nullptr;
  const Diagnostic* oom = nullptr;
  for (const auto& d : diags.items()) {
    if (d.rule_id == "sim/unknown-system") unknown_system = &d;
    if (d.rule_id == "sim/static-oom") oom = &d;
  }
  ASSERT_NE(unknown_system, nullptr);
  EXPECT_NE(unknown_system->location.file.find("calibration_table1.yaml"),
            std::string::npos);
  ASSERT_NE(oom, nullptr);
  EXPECT_NE(oom->location.file.find("resnet50_benchmark.yaml"),
            std::string::npos);
  EXPECT_EQ(oom->location.line, 27u);
  EXPECT_EQ(oom->location.column, 31u);  // the "1024" token in the batch list
}

TEST(LintCorpus, ShippedLayoutManifestIsCleanAndRanked) {
  DiagnosticList diags =
      lint_paths({std::string(CARAML_CONFIG_DIR) + "/layouts_paper_scale.yaml"});
  EXPECT_EQ(diags.count(Severity::kError), 0u) << diags.render_human();
  EXPECT_EQ(diags.count(Severity::kWarning), 0u) << diags.render_human();
  // Every shipped entry is feasible, so each gets the full predicted-* set
  // and a rank; the 10240-device 175B layout participates like any other.
  int ranked = 0;
  bool saw_paper_scale = false;
  for (const auto& d : diags.items()) {
    if (d.rule_id != "layout/predicted-time") continue;
    ++ranked;
    EXPECT_NE(d.message.find(", rank "), std::string::npos);
    saw_paper_scale |=
        d.message.find("waih100-175b-10240dev") != std::string::npos;
  }
  EXPECT_EQ(ranked, 5);
  EXPECT_TRUE(saw_paper_scale);
}

// --- engine ---------------------------------------------------------------------

TEST(LintEngine, ReportPullsSeverityFromCatalogue) {
  DiagnosticList diags;
  diags.report("sim/static-oom", {"f.yaml", 1, 1}, "msg");
  EXPECT_EQ(diags.items()[0].severity, Severity::kWarning);
  diags.report("jube/param-cycle", {"f.yaml", 2, 1}, "msg");
  EXPECT_EQ(diags.items()[1].severity, Severity::kError);
}

TEST(LintEngine, ReportRejectsUnregisteredRule) {
  DiagnosticList diags;
  EXPECT_THROW(diags.report("made/up-rule", {"f.yaml", 1, 1}, "msg"),
               NotFound);
}

TEST(LintEngine, ExactDuplicatesAreDropped) {
  DiagnosticList diags;
  diags.report("jube/param-cycle", {"f.yaml", 3, 7}, "same");
  diags.report("jube/param-cycle", {"f.yaml", 3, 7}, "same");
  diags.report("jube/param-cycle", {"f.yaml", 3, 7}, "different");
  EXPECT_EQ(diags.items().size(), 2u);
}

TEST(LintEngine, SortIsByFileLineColumnRule) {
  DiagnosticList diags;
  diags.report("fault/bad-rate", {"b.yaml", 1, 1}, "m");
  diags.report("jube/param-cycle", {"a.yaml", 9, 1}, "m");
  diags.report("jube/bad-regex", {"a.yaml", 2, 5}, "m");
  diags.report("jube/dangling-depend", {"a.yaml", 2, 1}, "m");
  EXPECT_EQ(fingerprints(diags),
            (V{"jube/dangling-depend@2:1", "jube/bad-regex@2:5",
               "jube/param-cycle@9:1", "fault/bad-rate@1:1"}));
}

TEST(LintEngine, HumanRenderingFollowsCompilerConvention) {
  DiagnosticList diags;
  diags.report("sim/static-oom", {"cfg.yaml", 27, 31}, "needs too much");
  const std::string text = diags.render_human();
  EXPECT_NE(text.find("cfg.yaml:27:31: warning: needs too much "
                      "[sim/static-oom]"),
            std::string::npos);
  EXPECT_NE(text.find("0 error(s), 1 warning(s), 0 info(s)"),
            std::string::npos);
}

TEST(LintEngine, JsonRenderingCarriesSummary) {
  DiagnosticList diags;
  diags.report("fault/bad-rate", {"p.yaml", 5, 9}, "rate must be >= 0");
  const std::string json = diags.render_json();
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"fault/bad-rate\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

TEST(LintEngine, JsonRenderingEscapesControlAndInvalidBytes) {
  DiagnosticList diags;
  // Messages quote bytes straight from user configs: control characters,
  // DEL, a bare continuation byte (invalid UTF-8) and a valid two-byte
  // sequence. The artifact must stay parseable JSON regardless.
  diags.report("fault/bad-rate", {"bad\x01name.yaml", 1, 1},
               std::string("ctrl \x02 del \x7f bad \xbf ok \xc3\xa9"));
  const std::string json = diags.render_json();
  EXPECT_NE(json.find("\\u0002"), std::string::npos);
  EXPECT_NE(json.find("\\u007f"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  // The stray continuation byte became U+FFFD; the valid sequence survived.
  EXPECT_NE(json.find("\xef\xbf\xbd"), std::string::npos);
  EXPECT_NE(json.find("\xc3\xa9"), std::string::npos);
  // Round-trips through the strict in-repo JSON parser.
  const auto parsed = telemetry::json::parse(json);
  EXPECT_EQ(parsed.at("summary").at("errors").as_int(), 1);
  const std::string message =
      parsed.at("diagnostics").as_array()[0].at("message").as_string();
  EXPECT_NE(message.find('\x02'), std::string::npos);
  EXPECT_NE(message.find("bad \xef\xbf\xbd ok"), std::string::npos);
}

TEST(LintEngine, ListedRulesSortDeterministically) {
  // The CLI sorts --list-rules by id; mirror the invariant here so the
  // catalogue stays renderable in a stable order however rules register.
  std::vector<std::string> ids;
  for (const auto& rule : rule_catalogue()) ids.push_back(rule.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(),
                                 std::string("layout/predicted-time")));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(),
                                 std::string("layout/schedule-deadlock")));
}

TEST(LintEngine, CatalogueIdsAreUniqueAndDocumented) {
  std::vector<std::string> ids;
  for (const auto& rule : rule_catalogue()) {
    ids.push_back(rule.id);
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  EXPECT_GE(ids.size(), 30u);
}

TEST(LintEngine, MissingPathBecomesDiagnosticNotThrow) {
  DiagnosticList diags = lint_paths({corpus("does_not_exist.yaml")});
  ASSERT_EQ(diags.items().size(), 1u);
  EXPECT_EQ(diags.items()[0].rule_id, "yaml/parse-error");
  EXPECT_TRUE(diags.has_errors());
}

// --- classification & per-layer dispatch ---------------------------------------

TEST(LintClassify, TopLevelKeysDecideKind) {
  EXPECT_EQ(classify(*yaml::parse("steps: []")), FileKind::kJube);
  EXPECT_EQ(classify(*yaml::parse("benchmark: {name: x}")), FileKind::kJube);
  EXPECT_EQ(classify(*yaml::parse("fault_plan: {events: []}")),
            FileKind::kFaultPlan);
  EXPECT_EQ(classify(*yaml::parse("events: []")), FileKind::kFaultPlan);
  EXPECT_EQ(classify(*yaml::parse("systems: []")), FileKind::kSpecTable);
  EXPECT_EQ(classify(*yaml::parse("layouts: []")), FileKind::kLayouts);
  EXPECT_EQ(classify(*yaml::parse("foo: 1")), FileKind::kUnknown);
}

TEST(LintClassify, UnknownSchemaIsWarning) {
  DiagnosticList diags;
  lint_text("foo: 1\n", "mystery.yaml", {}, diags);
  ASSERT_EQ(diags.items().size(), 1u);
  EXPECT_EQ(diags.items()[0].rule_id, "yaml/unknown-schema");
  EXPECT_FALSE(diags.has_errors());
}

TEST(LintClassify, ParseErrorCarriesLocation) {
  DiagnosticList diags;
  lint_text("ok: 1\n\tbad: tab-indent\n", "broken.yaml", {}, diags);
  ASSERT_EQ(diags.items().size(), 1u);
  EXPECT_EQ(diags.items()[0].rule_id, "yaml/parse-error");
  EXPECT_EQ(diags.items()[0].location.line, 2u);
}

TEST(LintJube, UnknownActionNeedsRegistryPredicate) {
  const std::string text =
      "benchmark: {name: x}\nsteps:\n  - name: s\n    do: bogus_action\n";
  DiagnosticList without;
  lint_text(text, "b.yaml", {}, without);
  for (const auto& d : without.items()) {
    EXPECT_NE(d.rule_id, "jube/unknown-action");
  }
  LintOptions options;
  options.known_action = [](const std::string& name) {
    return name == "llm_train";
  };
  DiagnosticList with;
  lint_text(text, "b.yaml", options, with);
  bool found = false;
  for (const auto& d : with.items()) found |= d.rule_id == "jube/unknown-action";
  EXPECT_TRUE(found);
}

// --- calibration table loader (topo/spec_yaml) ----------------------------------

TEST(SpecYaml, OverridesApplyOnTopOfRegistryEntry) {
  const topo::SpecTable table = topo::load_spec_table_file(
      std::string(CARAML_CONFIG_DIR) + "/calibration_table1.yaml");
  ASSERT_EQ(table.systems.size(), 3u);
  const topo::NodeSpec& a100 = table.systems[0];
  EXPECT_EQ(a100.jube_tag, "A100");
  EXPECT_DOUBLE_EQ(a100.device.max_mfu_gemm, 0.47);  // overridden
  EXPECT_DOUBLE_EQ(a100.device.batch_half_mfu, 26.0);
  EXPECT_GT(a100.device.peak_fp16_flops, 0.0);  // inherited from registry
  EXPECT_EQ(a100.devices_per_node, 4);
}

TEST(SpecYaml, UnknownTagStartsFromScratch) {
  const topo::SpecTable table = topo::load_spec_table_file(
      std::string(CARAML_CONFIG_DIR) + "/calibration_table1.yaml");
  const topo::NodeSpec& h200x = table.systems[2];
  EXPECT_EQ(h200x.jube_tag, "H200X");
  EXPECT_DOUBLE_EQ(h200x.device.peak_fp16_flops, 1.2e15);
  EXPECT_EQ(h200x.devices_per_node, 4);
  EXPECT_EQ(h200x.max_nodes, 2);
  EXPECT_DOUBLE_EQ(h200x.peer_link.bandwidth, 900.0e9);
  EXPECT_DOUBLE_EQ(h200x.inter_node.bandwidth, 50.0e9);
}

}  // namespace
}  // namespace caraml::check
