// Golden-diagnostic tests for `caraml lint` (src/check).
//
// The corpus under tests/lint_corpus/ holds deliberately broken configs;
// each test asserts the exact rule ids and file:line:column locations the
// linter must produce — a column drifting by one means the caret no longer
// points at the offending token. The clean-corpus test runs the linter over
// every shipped file in configs/ and pins the expected result (zero errors,
// two known warnings).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "check/lint.hpp"
#include "check/rules.hpp"
#include "topo/spec_yaml.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace caraml::check {
namespace {

std::string corpus(const std::string& name) {
  return std::string(CARAML_LINT_CORPUS_DIR) + "/" + name;
}

/// Compact "rule@line:col" fingerprints, in the list's sorted order.
std::vector<std::string> fingerprints(DiagnosticList& diags) {
  diags.sort();
  std::vector<std::string> out;
  for (const auto& d : diags.items()) {
    out.push_back(d.rule_id + "@" + std::to_string(d.location.line) + ":" +
                  std::to_string(d.location.column));
  }
  return out;
}

std::vector<std::string> lint_corpus_file(const std::string& name,
                                          DiagnosticList* keep = nullptr) {
  DiagnosticList diags;
  lint_file(corpus(name), LintOptions{}, diags);
  auto prints = fingerprints(diags);
  if (keep != nullptr) *keep = diags;
  return prints;
}

using V = std::vector<std::string>;

// --- golden corpus --------------------------------------------------------------

TEST(LintCorpus, DuplicateKeysBlockAndFlow) {
  EXPECT_EQ(lint_corpus_file("dup_key.yaml"),
            (V{"yaml/duplicate-key@3:3", "yaml/duplicate-key@7:24"}));
}

TEST(LintCorpus, BadAndCapturelessRegex) {
  EXPECT_EQ(lint_corpus_file("bad_regex.yaml"),
            (V{"jube/bad-regex@8:12", "jube/regex-no-capture@10:12"}));
}

TEST(LintCorpus, ParameterCycleAndUnresolvedReference) {
  DiagnosticList diags;
  EXPECT_EQ(lint_corpus_file("param_cycle.yaml", &diags),
            (V{"jube/param-cycle@6:9", "jube/unresolved-param@11:18"}));
  // The unresolved-param location is the value token "${missing}-suffix".
  EXPECT_NE(diags.items()[1].message.find("${missing}"), std::string::npos);
}

TEST(LintCorpus, StepGraphDefects) {
  EXPECT_EQ(lint_corpus_file("steps_bad.yaml"),
            (V{"jube/dangling-depend@8:23", "jube/step-cycle@9:5",
               "jube/duplicate-step@15:5"}));
}

TEST(LintCorpus, TagSetSelectingNothing) {
  EXPECT_EQ(lint_corpus_file("tag_empty.yaml"),
            (V{"jube/tag-selects-nothing@1:1"}));
}

TEST(LintCorpus, GuaranteedOomLlmWorkloadFlaggedStatically) {
  DiagnosticList diags;
  EXPECT_EQ(lint_corpus_file("oom_llm.yaml", &diags),
            (V{"sim/static-oom@11:18"}));
  // Warning, not error: the simulator survives an OOM (reports the cell as
  // OOM), so a lint run over such a sweep must still exit 0.
  EXPECT_FALSE(diags.has_errors());
  EXPECT_NE(diags.items()[0].message.find("175B"), std::string::npos);
  EXPECT_NE(diags.items()[0].message.find("A100"), std::string::npos);
}

TEST(LintCorpus, FaultPlanDefects) {
  EXPECT_EQ(lint_corpus_file("fault_bad.yaml"),
            (V{"fault/unknown-field@4:15", "fault/bad-rate@5:9",
               "fault/unknown-kind@7:14", "fault/bad-severity@8:7",
               "fault/negative-time@8:7", "fault/zero-window@9:7",
               "fault/overlap@11:7", "fault/bad-device@12:7",
               "fault/beyond-horizon@12:7", "fault/retry-invalid@14:5",
               "fault/retry-unbounded@14:5"}));
}

TEST(LintCorpus, ChaosCampaignDefects) {
  EXPECT_EQ(lint_corpus_file("campaign_bad.yaml"),
            (V{"chaos/bad-mode@2:3", "chaos/bad-tolerance@2:3",
               "chaos/bad-workload@2:3", "chaos/small-campaign@2:3",
               "chaos/unknown-field@6:15", "chaos/bad-axis@8:5",
               "chaos/bad-axis@8:13", "chaos/bad-axis@9:18",
               "chaos/empty-axis@10:14", "chaos/bad-axis@11:18"}));
}

TEST(LintCorpus, ZeroTdpCalibrationTable) {
  EXPECT_EQ(
      lint_corpus_file("zero_tdp.yaml"),
      (V{"sim/anchor-mismatch@4:18", "sim/nonpositive-spec@4:18",
         "sim/anchor-mismatch@5:22", "sim/nonpositive-spec@5:22",
         "sim/anchor-mismatch@6:24", "sim/duplicate-tag@7:10",
         "sim/unknown-field@9:19", "sim/missing-tag@10:5"}));
}

// --- clean corpus: every shipped config ----------------------------------------

TEST(LintCorpus, ShippedConfigsProduceNoErrors) {
  DiagnosticList diags = lint_paths({CARAML_CONFIG_DIR});
  EXPECT_EQ(diags.count(Severity::kError), 0u) << diags.render_human();
  // The two expected warnings: the hypothetical H200X system in the shipped
  // calibration table, and the resnet50 batch-1024 cell that genuinely OOMs
  // an A100 at runtime (the lint prediction matches the simulator).
  ASSERT_EQ(diags.count(Severity::kWarning), 2u) << diags.render_human();
  diags.sort();
  const auto& unknown_system = diags.items()[0];
  EXPECT_EQ(unknown_system.rule_id, "sim/unknown-system");
  EXPECT_NE(unknown_system.location.file.find("calibration_table1.yaml"),
            std::string::npos);
  const auto& oom = diags.items()[1];
  EXPECT_EQ(oom.rule_id, "sim/static-oom");
  EXPECT_NE(oom.location.file.find("resnet50_benchmark.yaml"),
            std::string::npos);
  EXPECT_EQ(oom.location.line, 27u);
  EXPECT_EQ(oom.location.column, 31u);  // the "1024" token in the batch list
}

// --- engine ---------------------------------------------------------------------

TEST(LintEngine, ReportPullsSeverityFromCatalogue) {
  DiagnosticList diags;
  diags.report("sim/static-oom", {"f.yaml", 1, 1}, "msg");
  EXPECT_EQ(diags.items()[0].severity, Severity::kWarning);
  diags.report("jube/param-cycle", {"f.yaml", 2, 1}, "msg");
  EXPECT_EQ(diags.items()[1].severity, Severity::kError);
}

TEST(LintEngine, ReportRejectsUnregisteredRule) {
  DiagnosticList diags;
  EXPECT_THROW(diags.report("made/up-rule", {"f.yaml", 1, 1}, "msg"),
               NotFound);
}

TEST(LintEngine, ExactDuplicatesAreDropped) {
  DiagnosticList diags;
  diags.report("jube/param-cycle", {"f.yaml", 3, 7}, "same");
  diags.report("jube/param-cycle", {"f.yaml", 3, 7}, "same");
  diags.report("jube/param-cycle", {"f.yaml", 3, 7}, "different");
  EXPECT_EQ(diags.items().size(), 2u);
}

TEST(LintEngine, SortIsByFileLineColumnRule) {
  DiagnosticList diags;
  diags.report("fault/bad-rate", {"b.yaml", 1, 1}, "m");
  diags.report("jube/param-cycle", {"a.yaml", 9, 1}, "m");
  diags.report("jube/bad-regex", {"a.yaml", 2, 5}, "m");
  diags.report("jube/dangling-depend", {"a.yaml", 2, 1}, "m");
  EXPECT_EQ(fingerprints(diags),
            (V{"jube/dangling-depend@2:1", "jube/bad-regex@2:5",
               "jube/param-cycle@9:1", "fault/bad-rate@1:1"}));
}

TEST(LintEngine, HumanRenderingFollowsCompilerConvention) {
  DiagnosticList diags;
  diags.report("sim/static-oom", {"cfg.yaml", 27, 31}, "needs too much");
  const std::string text = diags.render_human();
  EXPECT_NE(text.find("cfg.yaml:27:31: warning: needs too much "
                      "[sim/static-oom]"),
            std::string::npos);
  EXPECT_NE(text.find("0 error(s), 1 warning(s), 0 info(s)"),
            std::string::npos);
}

TEST(LintEngine, JsonRenderingCarriesSummary) {
  DiagnosticList diags;
  diags.report("fault/bad-rate", {"p.yaml", 5, 9}, "rate must be >= 0");
  const std::string json = diags.render_json();
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"fault/bad-rate\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

TEST(LintEngine, CatalogueIdsAreUniqueAndDocumented) {
  std::vector<std::string> ids;
  for (const auto& rule : rule_catalogue()) {
    ids.push_back(rule.id);
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  EXPECT_GE(ids.size(), 30u);
}

TEST(LintEngine, MissingPathBecomesDiagnosticNotThrow) {
  DiagnosticList diags = lint_paths({corpus("does_not_exist.yaml")});
  ASSERT_EQ(diags.items().size(), 1u);
  EXPECT_EQ(diags.items()[0].rule_id, "yaml/parse-error");
  EXPECT_TRUE(diags.has_errors());
}

// --- classification & per-layer dispatch ---------------------------------------

TEST(LintClassify, TopLevelKeysDecideKind) {
  EXPECT_EQ(classify(*yaml::parse("steps: []")), FileKind::kJube);
  EXPECT_EQ(classify(*yaml::parse("benchmark: {name: x}")), FileKind::kJube);
  EXPECT_EQ(classify(*yaml::parse("fault_plan: {events: []}")),
            FileKind::kFaultPlan);
  EXPECT_EQ(classify(*yaml::parse("events: []")), FileKind::kFaultPlan);
  EXPECT_EQ(classify(*yaml::parse("systems: []")), FileKind::kSpecTable);
  EXPECT_EQ(classify(*yaml::parse("foo: 1")), FileKind::kUnknown);
}

TEST(LintClassify, UnknownSchemaIsWarning) {
  DiagnosticList diags;
  lint_text("foo: 1\n", "mystery.yaml", {}, diags);
  ASSERT_EQ(diags.items().size(), 1u);
  EXPECT_EQ(diags.items()[0].rule_id, "yaml/unknown-schema");
  EXPECT_FALSE(diags.has_errors());
}

TEST(LintClassify, ParseErrorCarriesLocation) {
  DiagnosticList diags;
  lint_text("ok: 1\n\tbad: tab-indent\n", "broken.yaml", {}, diags);
  ASSERT_EQ(diags.items().size(), 1u);
  EXPECT_EQ(diags.items()[0].rule_id, "yaml/parse-error");
  EXPECT_EQ(diags.items()[0].location.line, 2u);
}

TEST(LintJube, UnknownActionNeedsRegistryPredicate) {
  const std::string text =
      "benchmark: {name: x}\nsteps:\n  - name: s\n    do: bogus_action\n";
  DiagnosticList without;
  lint_text(text, "b.yaml", {}, without);
  for (const auto& d : without.items()) {
    EXPECT_NE(d.rule_id, "jube/unknown-action");
  }
  LintOptions options;
  options.known_action = [](const std::string& name) {
    return name == "llm_train";
  };
  DiagnosticList with;
  lint_text(text, "b.yaml", options, with);
  bool found = false;
  for (const auto& d : with.items()) found |= d.rule_id == "jube/unknown-action";
  EXPECT_TRUE(found);
}

// --- calibration table loader (topo/spec_yaml) ----------------------------------

TEST(SpecYaml, OverridesApplyOnTopOfRegistryEntry) {
  const topo::SpecTable table = topo::load_spec_table_file(
      std::string(CARAML_CONFIG_DIR) + "/calibration_table1.yaml");
  ASSERT_EQ(table.systems.size(), 3u);
  const topo::NodeSpec& a100 = table.systems[0];
  EXPECT_EQ(a100.jube_tag, "A100");
  EXPECT_DOUBLE_EQ(a100.device.max_mfu_gemm, 0.47);  // overridden
  EXPECT_DOUBLE_EQ(a100.device.batch_half_mfu, 26.0);
  EXPECT_GT(a100.device.peak_fp16_flops, 0.0);  // inherited from registry
  EXPECT_EQ(a100.devices_per_node, 4);
}

TEST(SpecYaml, UnknownTagStartsFromScratch) {
  const topo::SpecTable table = topo::load_spec_table_file(
      std::string(CARAML_CONFIG_DIR) + "/calibration_table1.yaml");
  const topo::NodeSpec& h200x = table.systems[2];
  EXPECT_EQ(h200x.jube_tag, "H200X");
  EXPECT_DOUBLE_EQ(h200x.device.peak_fp16_flops, 1.2e15);
  EXPECT_EQ(h200x.devices_per_node, 4);
  EXPECT_EQ(h200x.max_nodes, 2);
  EXPECT_DOUBLE_EQ(h200x.peer_link.bandwidth, 900.0e9);
  EXPECT_DOUBLE_EQ(h200x.inter_node.bandwidth, 50.0e9);
}

}  // namespace
}  // namespace caraml::check
