#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "df/dataframe.hpp"
#include "util/error.hpp"

namespace caraml::df {
namespace {

DataFrame sample_frame() {
  DataFrame frame;
  frame.add_column("system", ColumnType::kString);
  frame.add_column("batch", ColumnType::kInt64);
  frame.add_column("tokens_per_s", ColumnType::kDouble);
  frame.append_row({std::string("A100"), std::int64_t{64}, 14147.9});
  frame.append_row({std::string("GH200"), std::int64_t{64}, 40776.4});
  frame.append_row({std::string("GH200"), std::int64_t{256}, 46211.6});
  return frame;
}

TEST(DataFrame, BasicShape) {
  const DataFrame frame = sample_frame();
  EXPECT_EQ(frame.num_columns(), 3u);
  EXPECT_EQ(frame.num_rows(), 3u);
  EXPECT_FALSE(frame.empty());
  EXPECT_TRUE(frame.has_column("batch"));
  EXPECT_FALSE(frame.has_column("nope"));
}

TEST(DataFrame, ColumnAccess) {
  const DataFrame frame = sample_frame();
  EXPECT_EQ(frame.column("system").as_string(1), "GH200");
  EXPECT_EQ(frame.column("batch").as_int(2), 256);
  EXPECT_DOUBLE_EQ(frame.column("tokens_per_s").as_double(0), 14147.9);
}

TEST(DataFrame, UnknownColumnThrows) {
  const DataFrame frame = sample_frame();
  EXPECT_THROW(frame.column("missing"), NotFound);
}

TEST(DataFrame, TypeMismatchThrows) {
  DataFrame frame;
  frame.add_column("x", ColumnType::kInt64);
  EXPECT_THROW(frame.append_row({std::string("not-an-int")}), InvalidArgument);
}

TEST(DataFrame, IntPromotesToDoubleColumn) {
  DataFrame frame;
  frame.add_column("x", ColumnType::kDouble);
  frame.append_row({std::int64_t{5}});
  EXPECT_DOUBLE_EQ(frame.column("x").as_double(0), 5.0);
}

TEST(DataFrame, RowWidthMismatchThrows) {
  DataFrame frame = sample_frame();
  EXPECT_THROW(frame.append_row({std::string("x")}), Error);
}

TEST(DataFrame, DuplicateColumnThrows) {
  DataFrame frame;
  frame.add_column("x", ColumnType::kDouble);
  EXPECT_THROW(frame.add_column("x", ColumnType::kInt64), Error);
}

TEST(DataFrame, AddColumnAfterRowsThrows) {
  DataFrame frame = sample_frame();
  EXPECT_THROW(frame.add_column("late", ColumnType::kDouble), Error);
}

TEST(Column, Aggregations) {
  const DataFrame frame = sample_frame();
  const Column& column = frame.column("tokens_per_s");
  EXPECT_NEAR(column.sum(), 14147.9 + 40776.4 + 46211.6, 1e-6);
  EXPECT_NEAR(column.mean(), (14147.9 + 40776.4 + 46211.6) / 3.0, 1e-6);
  EXPECT_DOUBLE_EQ(column.min(), 14147.9);
  EXPECT_DOUBLE_EQ(column.max(), 46211.6);
}

TEST(Column, StringAggregationThrows) {
  const DataFrame frame = sample_frame();
  EXPECT_THROW(frame.column("system").sum(), InvalidArgument);
}

TEST(Column, EmptyMeanThrows) {
  Column column("x", ColumnType::kDouble);
  EXPECT_THROW(column.mean(), Error);
}

TEST(DataFrame, Select) {
  const DataFrame frame = sample_frame();
  const DataFrame out = frame.select({"batch", "system"});
  EXPECT_EQ(out.num_columns(), 2u);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column_at(0).name(), "batch");
  EXPECT_EQ(out.column("system").as_string(0), "A100");
}

TEST(DataFrame, FilterByRowIndices) {
  const DataFrame frame = sample_frame();
  const DataFrame out = frame.filter({2, 0});
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column("batch").as_int(0), 256);
  EXPECT_EQ(out.column("batch").as_int(1), 64);
}

TEST(DataFrame, Concat) {
  DataFrame a = sample_frame();
  const DataFrame b = sample_frame();
  a.concat(b);
  EXPECT_EQ(a.num_rows(), 6u);
  EXPECT_EQ(a.column("system").as_string(5), "GH200");
}

TEST(DataFrame, ConcatSchemaMismatchThrows) {
  DataFrame a = sample_frame();
  DataFrame b;
  b.add_column("other", ColumnType::kDouble);
  EXPECT_THROW(a.concat(b), Error);
}

TEST(DataFrame, CsvRoundTrip) {
  const DataFrame frame = sample_frame();
  const DataFrame back = DataFrame::from_csv(frame.to_csv());
  ASSERT_EQ(back.num_rows(), 3u);
  ASSERT_EQ(back.num_columns(), 3u);
  // Numeric columns round-trip as doubles; strings stay strings.
  EXPECT_EQ(back.column("system").type(), ColumnType::kString);
  EXPECT_EQ(back.column("batch").type(), ColumnType::kDouble);
  EXPECT_NEAR(back.column("tokens_per_s").as_double(2), 46211.6, 1e-6);
  EXPECT_EQ(back.column("system").as_string(1), "GH200");
}

TEST(DataFrame, CsvQuotedCells) {
  DataFrame frame;
  frame.add_column("label", ColumnType::kString);
  frame.append_row({std::string("has,comma")});
  frame.append_row({std::string("has\"quote")});
  const DataFrame back = DataFrame::from_csv(frame.to_csv());
  EXPECT_EQ(back.column("label").as_string(0), "has,comma");
  EXPECT_EQ(back.column("label").as_string(1), "has\"quote");
}

TEST(DataFrame, FromCsvEmptyThrows) {
  EXPECT_THROW(DataFrame::from_csv("  \n \n"), ParseError);
}

TEST(DataFrame, FromCsvRaggedThrows) {
  EXPECT_THROW(DataFrame::from_csv("a,b\n1\n"), ParseError);
}

TEST(DataFrame, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "caraml_df_test.csv").string();
  sample_frame().to_csv_file(path);
  const DataFrame back = DataFrame::from_csv_file(path);
  EXPECT_EQ(back.num_rows(), 3u);
  std::remove(path.c_str());
}

TEST(DataFrame, ToStringTruncates) {
  DataFrame frame;
  frame.add_column("i", ColumnType::kInt64);
  for (std::int64_t i = 0; i < 30; ++i) frame.append_row({i});
  const std::string out = frame.to_string(5);
  EXPECT_NE(out.find("25 more rows"), std::string::npos);
}

TEST(ColumnType, Names) {
  EXPECT_EQ(column_type_name(ColumnType::kDouble), "double");
  EXPECT_EQ(column_type_name(ColumnType::kInt64), "int64");
  EXPECT_EQ(column_type_name(ColumnType::kString), "string");
}

}  // namespace
}  // namespace caraml::df
