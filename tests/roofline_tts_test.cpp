// Tests for the roofline kernel profiles and the time-to-solution model.
#include <gtest/gtest.h>

#include "core/time_to_solution.hpp"
#include "sim/roofline.hpp"
#include "topo/specs.hpp"
#include "util/error.hpp"

namespace caraml {
namespace {

// --- kernel profiles ------------------------------------------------------------

TEST(Roofline, GemmFlopsAndBytes) {
  const auto profile = sim::gemm_profile(128, 256, 64);
  EXPECT_DOUBLE_EQ(profile.flops, 2.0 * 128 * 256 * 64);
  EXPECT_DOUBLE_EQ(profile.bytes,
                   2.0 * (128.0 * 64 + 64.0 * 256 + 128.0 * 256));
}

TEST(Roofline, IntensityGrowsWithGemmSize) {
  double prev = 0.0;
  for (std::int64_t n : {32, 128, 512, 2048}) {
    const double intensity =
        sim::gemm_profile(n, n, n).arithmetic_intensity();
    EXPECT_GT(intensity, prev);
    prev = intensity;
  }
  // Square GEMM intensity approaches n/3 FLOP/byte at fp16.
  EXPECT_NEAR(sim::gemm_profile(2048, 2048, 2048).arithmetic_intensity(),
              2048.0 / 3.0, 2.0);
}

TEST(Roofline, GemvIsMemoryBoundEverywhere) {
  // The decode-step shape: every weight read once, ~2 FLOPs per weight.
  const auto profile = sim::gemv_profile(4096, 4096);
  EXPECT_LT(profile.arithmetic_intensity(), 1.5);
  for (const char* maker : {"A100", "GH200", "H100"}) {
    const auto& device = topo::SystemRegistry::instance().by_tag(maker).device;
    EXPECT_FALSE(sim::is_compute_bound(device, profile)) << maker;
  }
}

TEST(Roofline, LargeGemmIsComputeBoundOnEveryGpu) {
  const auto profile = sim::gemm_profile(4096, 4096, 4096);
  for (const auto& node : topo::SystemRegistry::instance().all()) {
    if (node.device.arch != topo::ArchClass::kGpuSimd) continue;
    EXPECT_TRUE(sim::is_compute_bound(node.device, profile))
        << node.display_name;
  }
}

TEST(Roofline, RidgePointMatchesSpecs) {
  const auto device = topo::make_a100_sxm4();
  EXPECT_NEAR(sim::ridge_intensity(device), 312e12 / 1555e9, 1e-6);
}

TEST(Roofline, KernelTimeTakesTheBindingRoof) {
  const auto device = topo::make_a100_sxm4();
  // Memory-bound: time ~= bytes / bandwidth.
  const auto gemv = sim::gemv_profile(8192, 8192);
  EXPECT_NEAR(sim::kernel_time(device, gemv, 1.0),
              gemv.bytes / device.mem_bandwidth + device.launch_overhead_s,
              1e-9);
  // Compute-bound: time ~= flops / (peak * eff).
  const auto gemm = sim::gemm_profile(8192, 8192, 8192);
  EXPECT_NEAR(sim::kernel_time(device, gemm, 0.5),
              gemm.flops / (device.peak_fp16_flops * 0.5) +
                  device.launch_overhead_s,
              1e-6);
}

TEST(Roofline, ConvProfileMatchesDirectCount) {
  // 3x3 conv, 64->64 channels, 56x56 output, batch 2.
  const auto profile = sim::conv2d_profile(2, 64, 64, 56, 56, 3, 3);
  EXPECT_DOUBLE_EQ(profile.flops, 2.0 * 2 * 56 * 56 * 64 * 64 * 9);
  EXPECT_GT(profile.arithmetic_intensity(), 50.0);  // convs reuse heavily
}

TEST(Roofline, ElementwiseIsDeeplyMemoryBound) {
  const auto profile = sim::elementwise_profile(1 << 20);
  EXPECT_LT(profile.arithmetic_intensity(), 0.5);
}

TEST(Roofline, InvalidInputsThrow) {
  EXPECT_THROW(sim::gemm_profile(0, 4, 4), Error);
  const auto device = topo::make_a100_sxm4();
  EXPECT_THROW(sim::kernel_time(device, sim::gemm_profile(4, 4, 4), 1.5),
               Error);
}

// --- time to solution -------------------------------------------------------------

TEST(TimeToSolution, ScalingLawInvertsExactly) {
  core::LossScalingLaw law;
  const double tokens = law.tokens_to_reach(2.3);
  EXPECT_NEAR(law.loss_at(tokens), 2.3, 1e-9);
}

TEST(TimeToSolution, LowerLossNeedsMoreTokens) {
  core::LossScalingLaw law;
  EXPECT_GT(law.tokens_to_reach(2.0), law.tokens_to_reach(2.5));
}

TEST(TimeToSolution, TargetBelowIrreducibleThrows) {
  core::LossScalingLaw law;
  EXPECT_THROW(law.tokens_to_reach(law.l_inf), Error);
  EXPECT_THROW(law.tokens_to_reach(1.0), Error);
}

TEST(TimeToSolution, FasterSystemFinishesSooner) {
  core::LlmRunConfig jedi;
  jedi.system_tag = "JEDI";
  jedi.global_batch = 1024;
  core::LlmRunConfig a100 = jedi;
  a100.system_tag = "A100";
  const auto fast = core::estimate_time_to_solution(jedi, 2.2);
  const auto slow = core::estimate_time_to_solution(a100, 2.2);
  EXPECT_LT(fast.hours_to_solution, slow.hours_to_solution);
  EXPECT_EQ(fast.tokens_needed, slow.tokens_needed);  // same law
}

TEST(TimeToSolution, EnergyConsistentWithPowerAndTime) {
  core::LlmRunConfig config;
  config.system_tag = "GH200";
  config.global_batch = 1024;
  const auto result = core::estimate_time_to_solution(config, 2.3);
  const auto run = core::run_llm_gpu(config);
  const double expected_kwh = run.avg_power_per_gpu_w *
                              result.hours_to_solution / 1000.0;
  EXPECT_NEAR(result.node_energy_kwh, expected_kwh, expected_kwh * 1e-6);
}

TEST(TimeToSolution, OomConfigurationRejected) {
  core::LlmRunConfig config;
  config.system_tag = "A100";
  config.model = models::GptConfig::gpt_175b();
  config.global_batch = 16;
  EXPECT_THROW(core::estimate_time_to_solution(config, 2.2), Error);
}

}  // namespace
}  // namespace caraml
