#include <gtest/gtest.h>

#include "core/caraml.hpp"
#include "core/llm.hpp"
#include "core/experiments.hpp"
#include "core/resnet.hpp"
#include "util/error.hpp"

namespace caraml::core {
namespace {

LlmRunResult run_llm(const std::string& tag, std::int64_t batch,
                     int devices = -1) {
  LlmRunConfig config;
  config.system_tag = tag;
  config.global_batch = batch;
  config.devices = devices;
  return run_llm_gpu(config);
}

// --- layout validity (paper §IV-A) ------------------------------------------------

TEST(LlmLayout, Batch16ImpossibleAtDp8) {
  // "When using data parallelism of 8 the global batch size of 16 is not
  // possible since it is not divisible by micro-batch-size times data
  // parallel" (paper §IV-A).
  EXPECT_FALSE(llm_layout_valid(16, 4, 8));
  EXPECT_TRUE(llm_layout_valid(16, 4, 4));
  EXPECT_TRUE(llm_layout_valid(32, 4, 8));
  EXPECT_FALSE(llm_layout_valid(0, 4, 4));
  EXPECT_FALSE(llm_layout_valid(16, 0, 4));
}

TEST(LlmLayout, InvalidLayoutThrows) {
  LlmRunConfig config;
  config.system_tag = "MI250";
  config.global_batch = 16;
  config.devices = 8;
  EXPECT_THROW(run_llm_gpu(config), Error);
}

// --- headline anchors from the paper text ------------------------------------------

TEST(LlmAnchors, Gh200BestThroughputNear47505) {
  const auto result = run_llm("GH200", 4096);
  EXPECT_NEAR(result.tokens_per_s_per_gpu, 47505.0, 47505.0 * 0.05);
}

TEST(LlmAnchors, Gh200OverA100SpeedupNear2p45) {
  const double gh = run_llm("GH200", 4096).tokens_per_s_per_gpu;
  const double a100 = run_llm("A100", 4096).tokens_per_s_per_gpu;
  EXPECT_NEAR(gh / a100, 2.45, 0.15);
}

TEST(LlmAnchors, WestAiProcesses1p3xTheJrdcH100) {
  const double sxm = run_llm("WAIH100", 2048).tokens_per_s_per_gpu;
  const double pcie = run_llm("H100", 2048).tokens_per_s_per_gpu;
  EXPECT_NEAR(sxm / pcie, 1.3, 0.1);
}

TEST(LlmAnchors, JrdcGh200About20PercentFasterThanJedi) {
  const double jrdc = run_llm("GH200", 2048).tokens_per_s_per_gpu;
  const double jedi = run_llm("JEDI", 2048).tokens_per_s_per_gpu;
  EXPECT_NEAR(jrdc / jedi, 1.2, 0.08);
  // ...with correspondingly higher energy per device (paper: ~20%).
  const double e_jrdc = run_llm("GH200", 2048).energy_per_gpu_wh;
  const double e_jedi = run_llm("JEDI", 2048).energy_per_gpu_wh;
  EXPECT_NEAR(e_jrdc / e_jedi, 1.2, 0.1);
}

TEST(LlmAnchors, H100PcieIsMostEnergyEfficient) {
  // Paper §IV-A: the H100-PCIe outperforms all other devices in tokens/Wh
  // by up to 25%, even against GH200.
  const double pcie = run_llm("H100", 2048).tokens_per_wh;
  for (const char* tag : {"GH200", "JEDI", "WAIH100", "A100"}) {
    const double other = run_llm(tag, 2048).tokens_per_wh;
    EXPECT_GT(pcie, other) << tag;
  }
  const double gh = run_llm("GH200", 2048).tokens_per_wh;
  EXPECT_LT(pcie / gh, 1.3);  // "up to 25%"
  EXPECT_GT(pcie / gh, 1.05);
}

TEST(LlmAnchors, JediEfficiencySlightlyBetterThanJrdc) {
  const double jedi = run_llm("JEDI", 4096).tokens_per_wh;
  const double jrdc = run_llm("GH200", 4096).tokens_per_wh;
  EXPECT_GT(jedi, jrdc);                 // "even slightly better for JEDI"
  EXPECT_LT(jedi / jrdc, 1.1);           // but only slightly
}

TEST(LlmAnchors, Mi250FourGcdsBeatEightPerDevice) {
  // Paper §IV-A: 4 GCDs (2 GPUs) performs slightly better per device than
  // 8 GCDs (4 GPUs), with lower energy per device and better efficiency.
  const auto gcd = run_llm("MI250", 1024, /*devices=*/4);
  const auto gpu = run_llm("MI250", 1024, /*devices=*/8);
  EXPECT_GT(gcd.tokens_per_s_per_gpu, gpu.tokens_per_s_per_gpu);
  EXPECT_LT(gcd.energy_per_gpu_wh, gpu.energy_per_gpu_wh);
  EXPECT_GT(gcd.tokens_per_wh, gpu.tokens_per_wh);
}

// --- shape properties ------------------------------------------------------------------

class LlmBatchSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(LlmBatchSweep, ThroughputMonotoneAndSaturating) {
  double prev = 0.0;
  for (std::int64_t batch : {64, 256, 1024, 4096}) {
    const auto result = run_llm(GetParam(), batch);
    ASSERT_FALSE(result.oom);
    EXPECT_GT(result.tokens_per_s_per_gpu, prev) << "batch " << batch;
    prev = result.tokens_per_s_per_gpu;
  }
  // Saturation: the 1024 -> 4096 gain is below 10%.
  const double late_gain = run_llm(GetParam(), 4096).tokens_per_s_per_gpu /
                           run_llm(GetParam(), 1024).tokens_per_s_per_gpu;
  EXPECT_LT(late_gain, 1.10);
}

TEST_P(LlmBatchSweep, PowerBoundedByIdleAndTdp) {
  const auto& node = topo::SystemRegistry::instance().by_tag(GetParam());
  for (std::int64_t batch : {16, 1024}) {
    const auto result = run_llm(GetParam(), batch);
    EXPECT_GE(result.avg_power_per_gpu_w, node.device.idle_watts);
    EXPECT_LE(result.avg_power_per_gpu_w, node.device.tdp_watts);
  }
}

TEST_P(LlmBatchSweep, MfuBelowCalibratedMaximum) {
  const auto& node = topo::SystemRegistry::instance().by_tag(GetParam());
  const auto result = run_llm(GetParam(), 4096);
  EXPECT_LE(result.mfu, node.device.max_mfu_gemm + 1e-6);
  EXPECT_GT(result.mfu, 0.3 * node.device.max_mfu_gemm);
}

INSTANTIATE_TEST_SUITE_P(Core, LlmBatchSweep,
                         ::testing::Values("JEDI", "GH200", "H100", "WAIH100",
                                           "A100"));

TEST(Llm, LargerModelsNeedModelParallelism) {
  LlmRunConfig config;
  config.system_tag = "GH200";
  config.model = models::GptConfig::gpt_13b();
  config.global_batch = 16;
  config.micro_batch = 1;
  const auto result = run_llm_gpu(config);
  EXPECT_TRUE(result.oom);
  EXPECT_NE(result.oom_message.find("OOM"), std::string::npos);
}

TEST(Llm, TensorParallelMakes13bFitOnJedi) {
  LlmRunConfig config;
  config.system_tag = "JEDI";
  config.model = models::GptConfig::gpt_13b();
  config.global_batch = 64;
  config.micro_batch = 1;
  config.tensor_parallel = 4;
  const auto result = run_llm_gpu(config);
  EXPECT_FALSE(result.oom);
  EXPECT_GT(result.tokens_per_s_per_gpu, 0.0);
}

TEST(Llm, PipelineBubbleReducesThroughputAtSmallBatch) {
  LlmRunConfig base;
  base.system_tag = "JEDI";
  base.model = models::GptConfig::gpt_13b();
  base.global_batch = 8;
  base.micro_batch = 1;
  base.tensor_parallel = 4;
  const auto tp = run_llm_gpu(base);

  LlmRunConfig pipe = base;
  pipe.tensor_parallel = 1;
  pipe.pipeline_parallel = 4;
  const auto pp = run_llm_gpu(pipe);
  ASSERT_FALSE(tp.oom);
  ASSERT_FALSE(pp.oom);
  // At 8 micro-batches over 4 stages the bubble costs ~(p-1)/(m+p-1) = 27%.
  EXPECT_LT(pp.tokens_per_s_total, tp.tokens_per_s_total);
}

TEST(Llm, GpuRunnerRejectsGraphcore) {
  LlmRunConfig config;
  config.system_tag = "GC200";
  EXPECT_THROW(run_llm_gpu(config), Error);
}

TEST(Llm, PowerTraceExposedForJpwr) {
  const auto result = run_llm("A100", 256);
  ASSERT_TRUE(result.device0_trace.has_value());
  EXPECT_GT(result.device0_trace->average_power(), 0.0);
}

// --- IPU GPT (Table II) ------------------------------------------------------------------

struct TableIIRow {
  std::int64_t batch;
  double tokens_per_s, energy_wh, tokens_per_wh;
};

class TableII : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(TableII, ReproducesPaperWithin6Percent) {
  const TableIIRow row = GetParam();
  const auto result = run_llm_ipu(row.batch);
  EXPECT_NEAR(result.tokens_per_s, row.tokens_per_s, row.tokens_per_s * 0.06);
  // Energy: within 15% (the batch-64 row of the paper deviates from the
  // otherwise linear trend; see EXPERIMENTS.md).
  EXPECT_NEAR(result.energy_per_epoch_wh, row.energy_wh, row.energy_wh * 0.15);
  EXPECT_NEAR(result.tokens_per_wh, row.tokens_per_wh,
              row.tokens_per_wh * 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Core, TableII,
    ::testing::Values(TableIIRow{64, 64.99, 15.68, 4.08},
                      TableIIRow{256, 129.96, 18.37, 13.93},
                      TableIIRow{1024, 172.94, 19.07, 53.71},
                      TableIIRow{4096, 188.88, 21.88, 187.22},
                      TableIIRow{16384, 193.41, 33.00, 496.43}));

TEST(IpuGpt, BubbleShrinksWithBatch) {
  EXPECT_GT(run_llm_ipu(64).pipeline_bubble,
            run_llm_ipu(4096).pipeline_bubble);
}

TEST(IpuGpt, InvalidBatchRejected) {
  EXPECT_THROW(run_llm_ipu(10), Error);  // not a multiple of 32 tokens
}

// --- ResNet (Fig. 3 / Table III / Fig. 4) ---------------------------------------------------

TEST(Resnet, ThroughputRisesWithBatchOnGpus) {
  for (const char* tag : {"GH200", "A100", "H100"}) {
    ResnetRunConfig small;
    small.system_tag = tag;
    small.devices = 1;
    small.global_batch = 16;
    ResnetRunConfig large = small;
    large.global_batch = 512;
    EXPECT_GT(run_resnet_gpu(large).images_per_s_total,
              run_resnet_gpu(small).images_per_s_total)
        << tag;
  }
}

TEST(Resnet, A100OomsAtLargeSingleDeviceBatch) {
  ResnetRunConfig config;
  config.system_tag = "A100";
  config.devices = 1;
  config.global_batch = 2048;
  EXPECT_TRUE(run_resnet_gpu(config).oom);
  config.global_batch = 512;
  EXPECT_FALSE(run_resnet_gpu(config).oom);
}

TEST(Resnet, BiggerMemoryDelaysOom) {
  // GH200 (96 GB) sustains the batch that OOMs the A100 (40 GB).
  ResnetRunConfig config;
  config.system_tag = "GH200";
  config.devices = 1;
  config.global_batch = 2048;
  EXPECT_FALSE(run_resnet_gpu(config).oom);
}

TEST(Resnet, DataParallelSpreadsMemory) {
  // Batch 2048 OOMs one A100 but fits 4 (per-device 512).
  ResnetRunConfig config;
  config.system_tag = "A100";
  config.devices = 4;
  config.global_batch = 2048;
  EXPECT_FALSE(run_resnet_gpu(config).oom);
}

TEST(Resnet, JrdcBeatsJediAtLargeBatchViaHostMemory) {
  // Paper §IV-B: GH200 (JRDC) beats (JEDI), especially at larger batches,
  // thanks to 4x CPU memory per device for data loading.
  ResnetRunConfig jedi;
  jedi.system_tag = "JEDI";
  jedi.devices = 1;
  jedi.global_batch = 2048;
  ResnetRunConfig jrdc = jedi;
  jrdc.system_tag = "GH200";
  EXPECT_GT(run_resnet_gpu(jrdc).images_per_s_total,
            run_resnet_gpu(jedi).images_per_s_total);
}

TEST(Resnet, SyntheticDataSkipsHostPipeline) {
  ResnetRunConfig real;
  real.system_tag = "JEDI";
  real.devices = 1;
  real.global_batch = 2048;
  ResnetRunConfig synthetic = real;
  synthetic.synthetic_data = true;
  EXPECT_GE(run_resnet_gpu(synthetic).images_per_s_total,
            run_resnet_gpu(real).images_per_s_total);
}

TEST(Resnet, Mi250WinsEfficiencyAtLargeBatchOnly) {
  // Paper §IV-B: MI250 best images/Wh at higher batches; H100/GH200 better
  // at small batches.
  ResnetRunConfig mi250;
  mi250.system_tag = "MI250";
  mi250.devices = 2;
  ResnetRunConfig h100 = mi250;
  h100.system_tag = "H100";
  h100.devices = 1;

  mi250.global_batch = h100.global_batch = 16;
  EXPECT_LT(run_resnet_gpu(mi250).images_per_wh,
            run_resnet_gpu(h100).images_per_wh);
  mi250.global_batch = h100.global_batch = 1024;
  EXPECT_GT(run_resnet_gpu(mi250).images_per_wh,
            run_resnet_gpu(h100).images_per_wh);
}

TEST(Resnet, OneMi250MoreEfficientThanOneGcd) {
  // Paper §IV-B: using both GCDs gives slightly lower epoch energy and
  // slightly higher efficiency than a single GCD.
  ResnetRunConfig gcd;
  gcd.system_tag = "MI250";
  gcd.devices = 1;
  gcd.global_batch = 512;
  ResnetRunConfig gpu = gcd;
  gpu.devices = 2;
  const auto r_gcd = run_resnet_gpu(gcd);
  const auto r_gpu = run_resnet_gpu(gpu);
  EXPECT_LT(r_gpu.energy_per_epoch_wh, r_gcd.energy_per_epoch_wh);
  EXPECT_GT(r_gpu.images_per_wh, r_gcd.images_per_wh);
  EXPECT_LT(r_gpu.images_per_wh / r_gcd.images_per_wh, 1.25);  // "slightly"
}

// --- Table III -------------------------------------------------------------------------------

struct TableIIIRow {
  std::int64_t batch;
  double images_per_s, energy_wh, images_per_wh;
};

class TableIII : public ::testing::TestWithParam<TableIIIRow> {};

TEST_P(TableIII, ReproducesPaperWithin5Percent) {
  const TableIIIRow row = GetParam();
  const auto result = run_resnet_ipu(row.batch, 1);
  EXPECT_NEAR(result.images_per_s_total, row.images_per_s,
              row.images_per_s * 0.05);
  EXPECT_NEAR(result.energy_per_epoch_wh, row.energy_wh, row.energy_wh * 0.05);
  EXPECT_NEAR(result.images_per_wh, row.images_per_wh,
              row.images_per_wh * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Core, TableIII,
    ::testing::Values(TableIIIRow{16, 1827.72, 32.09, 39925.87},
                      TableIIIRow{128, 1888.11, 31.67, 40452.50},
                      TableIIIRow{1024, 1893.07, 31.50, 40668.79},
                      TableIIIRow{4096, 1891.58, 31.51, 40660.14}));

TEST(IpuResnet, FlatThroughputAcrossBatches) {
  // SRAM caps the micro-batch at 16, so throughput barely moves (paper:
  // "model performance does not scale on increasing the global batch size").
  const double at16 = run_resnet_ipu(16, 1).images_per_s_total;
  const double at4096 = run_resnet_ipu(4096, 1).images_per_s_total;
  EXPECT_NEAR(at4096 / at16, 1.0, 0.05);
}

TEST(IpuResnet, TwoIpusBestAtBatch16) {
  // Paper §IV-B (Fig. 4g): for global batch 16 the best throughput uses 2
  // IPUs — the batch fits on-chip and fewer IPU-Links are involved.
  const double one = run_resnet_ipu(16, 1).images_per_s_total;
  const double two = run_resnet_ipu(16, 2).images_per_s_total;
  const double four = run_resnet_ipu(16, 4).images_per_s_total;
  EXPECT_GT(two, one);
  EXPECT_GT(two, four);
}

TEST(IpuResnet, ScalesAcrossIpusAtLargeBatch) {
  const double one = run_resnet_ipu(1024, 1).images_per_s_total;
  const double four = run_resnet_ipu(1024, 4).images_per_s_total;
  EXPECT_GT(four, 3.0 * one);
}

TEST(IpuResnet, InvalidIpuCountRejected) {
  EXPECT_THROW(run_resnet_ipu(64, 5), Error);
  EXPECT_THROW(run_resnet_ipu(10, 4), Error);
}

// --- Fig. 4 heatmap properties -----------------------------------------------------------------

TEST(Fig4, BestCellIsLargestBatchMostGpus) {
  // Paper: "In nearly all GPU cases, the best value achieved is for the
  // largest batch size using most GPUs." Check on the WestAI system.
  double best = 0.0;
  int best_devices = 0;
  std::int64_t best_batch = 0;
  for (int devices : {1, 2, 4}) {
    for (std::int64_t batch : {256, 1024, 2048}) {
      if (batch % devices != 0) continue;
      ResnetRunConfig config;
      config.system_tag = "WAIH100";
      config.devices = devices;
      config.global_batch = batch;
      const auto result = run_resnet_gpu(config);
      if (result.oom) continue;
      if (result.images_per_s_total > best) {
        best = result.images_per_s_total;
        best_devices = devices;
        best_batch = batch;
      }
    }
  }
  EXPECT_EQ(best_devices, 4);
  EXPECT_EQ(best_batch, 2048);
}

TEST(Fig4, MultiNodeScalingContinues) {
  ResnetRunConfig one_node;
  one_node.system_tag = "JEDI";
  one_node.devices = 4;
  one_node.global_batch = 2048;
  ResnetRunConfig two_nodes = one_node;
  two_nodes.devices = 8;
  EXPECT_GT(run_resnet_gpu(two_nodes).images_per_s_total,
            run_resnet_gpu(one_node).images_per_s_total);
}

TEST(Fig4, DeviceCountsIncludeMultiNodeRows) {
  const auto jedi = fig4_device_counts("JEDI");
  EXPECT_GE(jedi.size(), 5u);  // 1,2,4 then 8,16,...
  EXPECT_EQ(fig4_device_counts("GH200"), std::vector<int>{1});
  const auto gc200 = fig4_device_counts("GC200");
  EXPECT_EQ(gc200, (std::vector<int>{1, 2, 4}));
}

TEST(Fig4, TooManyNodesRejected) {
  ResnetRunConfig config;
  config.system_tag = "A100";
  config.devices = 32;  // A100 system has max 4 nodes = 16 devices
  config.global_batch = 2048;
  EXPECT_THROW(run_resnet_gpu(config), Error);
}

// --- series / sweep definitions -------------------------------------------------------------

TEST(Series, Fig2HasSevenSeriesIncludingMcmSplit) {
  const auto series = fig2_series();
  EXPECT_EQ(series.size(), 7u);
  EXPECT_EQ(series[5].label, "MI250:GCD");
  EXPECT_EQ(series[5].devices, 4);
  EXPECT_EQ(series[6].devices, 8);
}

TEST(Series, BatchSweepsMatchPaperRanges) {
  EXPECT_EQ(fig2_batches().front(), 16);
  EXPECT_EQ(fig2_batches().back(), 4096);
  EXPECT_EQ(fig3_batches().back(), 2048);
  EXPECT_EQ(table2_batches().front(), 64);
  EXPECT_EQ(table2_batches().back(), 16384);
  EXPECT_EQ(table3_batches().back(), 4096);
}

// --- experiment data export -------------------------------------------------------------

TEST(Experiments, Table2FrameMatchesRunner) {
  const auto frame = table2_dataframe();
  ASSERT_EQ(frame.num_rows(), table2_batches().size());
  EXPECT_EQ(frame.column("batch_tokens").as_int(0), 64);
  const auto direct = run_llm_ipu(64);
  EXPECT_NEAR(frame.column("tokens_per_s").as_double(0),
              direct.tokens_per_s, 1e-9);
}

TEST(Experiments, Fig4FrameMarksOomCells) {
  const auto frame = fig4_dataframe("A100");
  bool found_oom = false, found_ok = false;
  for (std::size_t row = 0; row < frame.num_rows(); ++row) {
    const std::string status = frame.column("status").as_string(row);
    if (status == "oom") found_oom = true;
    if (status == "ok") {
      found_ok = true;
      EXPECT_GT(frame.column("images_per_s").as_double(row), 0.0);
    }
  }
  EXPECT_TRUE(found_oom);
  EXPECT_TRUE(found_ok);
}

TEST(Experiments, Table3FrameColumns) {
  const auto frame = table3_dataframe();
  EXPECT_EQ(frame.num_rows(), table3_batches().size());
  EXPECT_NEAR(frame.column("images_per_s").as_double(0), 1827.0, 30.0);
}

// --- JUBE actions ---------------------------------------------------------------------------

TEST(Actions, LlmActionEmitsFiguresOfMerit) {
  jube::ActionRegistry registry;
  register_caraml_actions(registry);
  const std::string output = registry.at("llm_train")(
      {{"system", "A100"}, {"global_batch", "256"}});
  EXPECT_NE(output.find("tokens_per_s:"), std::string::npos);
  EXPECT_NE(output.find("tokens_per_wh:"), std::string::npos);
}

TEST(Actions, ResnetActionReportsOom) {
  jube::ActionRegistry registry;
  register_caraml_actions(registry);
  const std::string output = registry.at("resnet_train")(
      {{"system", "A100"}, {"global_batch", "2048"}, {"devices", "1"}});
  EXPECT_NE(output.find("status: OOM"), std::string::npos);
}

TEST(Actions, ResnetVariantSelectable) {
  jube::ActionRegistry registry;
  register_caraml_actions(registry);
  // Synthetic data skips the host input pipeline, which would otherwise cap
  // the lighter ResNet18 (paper: synthetic tag available for this purpose).
  const std::string r18 = registry.at("resnet_train")(
      {{"system", "GH200"}, {"global_batch", "256"}, {"devices", "1"},
       {"variant", "resnet18"}, {"synthetic", "true"}});
  const std::string r50 = registry.at("resnet_train")(
      {{"system", "GH200"}, {"global_batch", "256"}, {"devices", "1"},
       {"variant", "resnet50"}, {"synthetic", "true"}});
  // ResNet18 has ~1/3 the FLOPs -> visibly higher throughput.
  const auto parse = [](const std::string& out) {
    const auto pos = out.find("images_per_s: ");
    return std::stod(out.substr(pos + 14));
  };
  EXPECT_GT(parse(r18), 2.0 * parse(r50));
  EXPECT_THROW(registry.at("resnet_train")(
                   {{"system", "A100"}, {"variant", "vgg16"}}),
               Error);
}

TEST(Actions, LlmModelSelectable) {
  jube::ActionRegistry registry;
  register_caraml_actions(registry);
  // 13B needs tp to fit on JEDI; the action accepts model/tp/pp keys.
  const std::string out = registry.at("llm_train")(
      {{"system", "JEDI"}, {"global_batch", "64"}, {"micro_batch", "1"},
       {"model", "13B"}, {"tp", "4"}});
  EXPECT_NE(out.find("tokens_per_s:"), std::string::npos);
  EXPECT_THROW(registry.at("llm_train")({{"model", "9000B"}}), Error);
}

TEST(Actions, IpuActionUsesTable2Path) {
  jube::ActionRegistry registry;
  register_caraml_actions(registry);
  const std::string output = registry.at("llm_train")(
      {{"system", "GC200"}, {"global_batch", "1024"}});
  EXPECT_NE(output.find("tokens_per_s:"), std::string::npos);
}

}  // namespace
}  // namespace caraml::core
