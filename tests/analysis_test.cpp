// Tests for src/analysis: the Chrome-trace reader (including the byte-exact
// round trip against a golden fixture), the timeline model, the energy
// integration math, and the bottleneck detectors end to end.

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/analyse.hpp"
#include "analysis/energy.hpp"
#include "analysis/timeline.hpp"
#include "analysis/trace_reader.hpp"
#include "check/rules.hpp"
#include "core/inference.hpp"
#include "core/llm.hpp"
#include "telemetry/json.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"

namespace {

using namespace caraml;
using analysis::Interval;

double metric(const analysis::Finding& finding, const std::string& key) {
  for (const auto& [name, value] : finding.metrics) {
    if (name == key) return value;
  }
  ADD_FAILURE() << "finding '" << finding.detector << "' has no metric '"
                << key << "'";
  return 0.0;
}

const analysis::Finding* find_finding(const analysis::AnalysisReport& report,
                                      const std::string& rule_id) {
  for (const auto& finding : report.findings) {
    if (finding.rule_id == rule_id) return &finding;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Chrome-trace reader + byte-exact round trip (golden fixture).
// ---------------------------------------------------------------------------

// A tracer exercising the writer's sharp edges: names that need JSON
// escaping, timestamps past 10 virtual seconds (which the old 6-significant-
// digit writer truncated), long-fraction values, and non-finite counters.
void fill_fixture_tracer(telemetry::Tracer& tracer) {
  tracer.set_enabled(true);
  const std::uint32_t dev0 = tracer.track("dev0");
  const std::uint32_t dev1 = tracer.track("dev1");
  const std::uint32_t link0 = tracer.track("link0");
  const std::uint32_t host = tracer.track("host0");
  const std::uint32_t weird = tracer.track("weird \"track\"\\\n");
  const std::uint32_t power = tracer.track("power");
  tracer.add_span("host", host, 0.0, 0.25);
  tracer.add_span("micro", dev0, 0.25, 12.3456789, "utilization",
                  0.123456789012345);
  tracer.add_span("micro", dev1, 0.25, 6.5, "utilization", 0.5);
  tracer.add_span("bubble", dev1, 6.75, 0.125);
  tracer.add_span("allreduce.s0.d0", link0, 12.59567890123, 0.001);
  tracer.add_span("with \"quotes\" and \\slashes\\", weird, 1.0, 2.0);
  tracer.add_counter("power/dev0_w", "watts", power, 0.0, 312.49999999999994);
  tracer.add_counter("power/dev0_w", "watts", power, 12.6,
                     1.0 / 0.0);  // inf must serialize as a valid number
}

TEST(TraceReader, RoundTripIsByteIdentical) {
  telemetry::Tracer tracer;
  fill_fixture_tracer(tracer);
  const std::string text = tracer.to_chrome_trace();
  const analysis::Trace trace = analysis::parse_chrome_trace(text);
  EXPECT_EQ(analysis::to_chrome_trace(trace), text);
}

TEST(TraceReader, RoundTripMatchesGoldenFixture) {
  const std::string path =
      std::string(CARAML_GOLDEN_DIR) + "/trace_roundtrip.json";
  telemetry::Tracer tracer;
  fill_fixture_tracer(tracer);
  const std::string text = tracer.to_chrome_trace();
  if (std::getenv("CARAML_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << text;
    GTEST_SKIP() << "golden fixture regenerated";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden fixture " << path
                  << " (regenerate with CARAML_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  ASSERT_EQ(text, buffer.str())
      << "writer output drifted from the committed fixture";
  const analysis::Trace trace = analysis::parse_chrome_trace(buffer.str());
  EXPECT_EQ(analysis::to_chrome_trace(trace), buffer.str());
}

TEST(TraceReader, SnapshotMatchesParsedFile) {
  telemetry::Tracer tracer;
  fill_fixture_tracer(tracer);
  const analysis::Trace from_text =
      analysis::parse_chrome_trace(tracer.to_chrome_trace());
  const analysis::Trace from_snapshot = analysis::snapshot(tracer);
  ASSERT_EQ(from_snapshot.spans.size(), from_text.spans.size());
  ASSERT_EQ(from_snapshot.counters.size(), from_text.counters.size());
  EXPECT_EQ(analysis::to_chrome_trace(from_snapshot),
            analysis::to_chrome_trace(from_text));
}

TEST(TraceReader, AcceptsBareEventArray) {
  const analysis::Trace trace = analysis::parse_chrome_trace(
      R"([{"ph":"X","name":"micro","tid":0,"ts":0,"dur":5}])");
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].name, "micro");
  EXPECT_EQ(trace.track_name(0), "tid0");  // no metadata: synthesized name
}

TEST(TraceReader, SkipsUnknownPhases) {
  const analysis::Trace trace = analysis::parse_chrome_trace(
      R"([{"ph":"B","name":"x","tid":0,"ts":0},)"
      R"({"ph":"X","name":"y","tid":0,"ts":0,"dur":1}])");
  EXPECT_EQ(trace.skipped_events, 1u);
  EXPECT_EQ(trace.spans.size(), 1u);
}

TEST(TraceReader, MalformedJsonReportsFileAndOffset) {
  try {
    analysis::parse_chrome_trace("{\"traceEvents\":[", "t.json");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("t.json"), std::string::npos) << message;
    EXPECT_NE(message.find("at offset"), std::string::npos) << message;
  }
}

TEST(TraceReader, SchemaViolationNamesTheEvent) {
  try {
    analysis::parse_chrome_trace(
        R"([{"ph":"X","name":"a","tid":0,"ts":0,"dur":1},)"
        R"({"ph":"C","name":"c","tid":0,"ts":0}])",
        "t.json");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("t.json"), std::string::npos) << message;
    EXPECT_NE(message.find("event #1"), std::string::npos) << message;
  }
}

// ---------------------------------------------------------------------------
// Timeline model.
// ---------------------------------------------------------------------------

TEST(Timeline, IntervalAlgebra) {
  const auto merged = analysis::union_intervals(
      {{0.0, 1.0}, {0.5, 2.0}, {3.0, 4.0}, {4.0, 4.0}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].end, 2.0);
  EXPECT_DOUBLE_EQ(analysis::total_length(merged), 3.0);

  const auto common =
      analysis::intersect_intervals({{0.0, 2.0}}, {{1.0, 3.0}});
  ASSERT_EQ(common.size(), 1u);
  EXPECT_DOUBLE_EQ(common[0].start, 1.0);
  EXPECT_DOUBLE_EQ(common[0].end, 2.0);

  const auto rest =
      analysis::subtract_intervals({{0.0, 4.0}}, {{1.0, 2.0}, {3.0, 5.0}});
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_DOUBLE_EQ(rest[0].end, 1.0);
  EXPECT_DOUBLE_EQ(rest[1].start, 2.0);
  EXPECT_DOUBLE_EQ(rest[1].end, 3.0);
}

TEST(Timeline, TrackClassification) {
  EXPECT_EQ(analysis::classify_track("dev3"), analysis::TrackKind::kCompute);
  EXPECT_EQ(analysis::classify_track("stage0"), analysis::TrackKind::kCompute);
  EXPECT_EQ(analysis::classify_track("host1"), analysis::TrackKind::kHost);
  EXPECT_EQ(analysis::classify_track("link12"), analysis::TrackKind::kLink);
  EXPECT_EQ(analysis::classify_track("power"), analysis::TrackKind::kPower);
  EXPECT_EQ(analysis::classify_track("thread/3"), analysis::TrackKind::kOther);
  EXPECT_EQ(analysis::classify_track("device"), analysis::TrackKind::kOther);
}

TEST(Timeline, BuildAggregatesPhasesAndCounters) {
  analysis::Trace trace;
  trace.tracks = {"dev0", "power"};
  trace.spans.push_back({"micro", 0, 0.0, 1.0e6, "", 0.0, false});
  trace.spans.push_back({"bubble", 0, 1.0e6, 0.5e6, "", 0.0, false});
  trace.spans.push_back({"optimizer", 0, 2.0e6, 0.5e6, "", 0.0, false});
  trace.counters.push_back({"power/dev0_w", "watts", 1, 0.0, 300.0});
  trace.counters.push_back({"queue_wait/dev0", "seconds", 1, 0.0, 0.25});

  const analysis::Timeline timeline = analysis::build_timeline(trace);
  ASSERT_EQ(timeline.tracks.size(), 1u);
  const auto& dev = timeline.tracks[0];
  EXPECT_DOUBLE_EQ(dev.busy_s, 2.0);
  EXPECT_DOUBLE_EQ(dev.bubble_s, 0.5);
  EXPECT_DOUBLE_EQ(dev.gap_s, 0.5);  // the [1.5, 2.0] hole
  EXPECT_DOUBLE_EQ(timeline.makespan_s, 2.5);
  ASSERT_EQ(timeline.power.size(), 1u);
  EXPECT_EQ(timeline.power[0].name, "power/dev0_w");
  ASSERT_EQ(timeline.queue_wait.count("dev0"), 1u);
  EXPECT_DOUBLE_EQ(timeline.queue_wait.at("dev0").total_s, 0.25);
}

// ---------------------------------------------------------------------------
// Energy integration (hand-computed values).
// ---------------------------------------------------------------------------

TEST(Energy, StepIntegralHandComputed) {
  const std::vector<std::pair<double, double>> samples = {{0.0, 100.0},
                                                          {1.0, 50.0}};
  EXPECT_DOUBLE_EQ(analysis::integrate_step(samples, 0.0, 2.0), 150.0);
  EXPECT_DOUBLE_EQ(analysis::integrate_step(samples, 0.5, 1.5), 75.0);
  EXPECT_DOUBLE_EQ(analysis::integrate_step(samples, 1.0, 4.0), 150.0);
  EXPECT_DOUBLE_EQ(analysis::integrate_step(samples, 2.0, 2.0), 0.0);
}

TEST(Energy, EmptyAndSingleSampleEdgeCases) {
  EXPECT_DOUBLE_EQ(analysis::integrate_step({}, 0.0, 10.0), 0.0);
  const std::vector<std::pair<double, double>> one = {{2.0, 10.0}};
  // Value holds from its sample onward; zero before the first sample.
  EXPECT_DOUBLE_EQ(analysis::integrate_step(one, 0.0, 5.0), 30.0);
  EXPECT_DOUBLE_EQ(analysis::integrate_step(one, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(analysis::integrate_step(one, 3.0, 4.0), 10.0);
}

TEST(Energy, AttributionSplitsTotal) {
  analysis::CounterSeries series;
  series.name = "power/dev0_w";
  series.series = "watts";
  series.samples = {{0.0, 100.0}};
  const analysis::EnergyBreakdown breakdown = analysis::attribute_energy(
      series, {{"compute", {{0.0, 1.0}}}, {"idle", {{1.0, 2.0}}}}, 2.0);
  EXPECT_DOUBLE_EQ(breakdown.total_j, 200.0);
  ASSERT_EQ(breakdown.shares.size(), 2u);
  EXPECT_DOUBLE_EQ(breakdown.shares[0].joules, 100.0);
  EXPECT_DOUBLE_EQ(breakdown.shares[1].joules, 100.0);
  EXPECT_DOUBLE_EQ(breakdown.shares[0].intervals_s, 1.0);
}

// ---------------------------------------------------------------------------
// Detectors.
// ---------------------------------------------------------------------------

TEST(Detectors, EmptyTraceYieldsNoData) {
  const analysis::AnalysisReport report = analysis::analyse(analysis::Trace{});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule_id, "analysis/no-data");
  EXPECT_EQ(analysis::bottleneck_summary(report), "analysis/no-data:0.00");
}

TEST(Detectors, ImbalancedRunRanksLoadImbalanceFirst) {
  core::LlmRunConfig config;
  config.system_tag = "A100";
  config.global_batch = 256;
  config.devices = 4;
  config.device_compute_derate = {{0, 3.0}};
  telemetry::Tracer tracer;
  tracer.set_enabled(true);
  config.trace_sink = &tracer;
  const core::LlmRunResult result = core::run_llm_gpu(config);
  ASSERT_FALSE(result.oom);

  const analysis::AnalysisReport report =
      analysis::analyse(analysis::snapshot(tracer));
  ASSERT_FALSE(report.findings.empty());
  // The acceptance scenario: one device 3x slower must surface as the top
  // bottleneck, with the skew quantified (3c vs mean 1.5c -> 2.0).
  EXPECT_EQ(report.findings[0].rule_id, "analysis/load-imbalance");
  EXPECT_EQ(report.findings[0].severity, check::Severity::kWarning);
  EXPECT_NEAR(metric(report.findings[0], "skew"), 2.0, 0.05);
  EXPECT_GT(report.findings[0].score, 0.3);
  for (const auto& finding : report.findings) {
    EXPECT_GE(finding.score, 0.0) << finding.detector;
    EXPECT_LE(finding.score, 1.0) << finding.detector;
  }
  const analysis::Finding* bubble =
      find_finding(report, "analysis/pipeline-bubble");
  ASSERT_NE(bubble, nullptr);
  // The slow device is the critical track and never stalls: the bubble
  // fraction must not mistake the fast devices' allreduce waits for bubbles.
  EXPECT_LT(metric(*bubble, "bubble_fraction"), 0.1);
  const analysis::Finding* critical =
      find_finding(report, "analysis/critical-path");
  ASSERT_NE(critical, nullptr);
  EXPECT_GT(metric(*critical, "busy_fraction"), 0.8);
  const analysis::Finding* comm = find_finding(report, "analysis/comm-pattern");
  ASSERT_NE(comm, nullptr);
  EXPECT_NE(comm->message.find("ring all-reduce"), std::string::npos)
      << comm->message;
  const std::string summary = analysis::bottleneck_summary(report, 2);
  EXPECT_EQ(summary.rfind("analysis/load-imbalance:", 0), 0u) << summary;
  EXPECT_EQ(summary.find(' '), std::string::npos) << summary;
}

TEST(Detectors, BalancedRunHasLowImbalance) {
  core::LlmRunConfig config;
  config.system_tag = "A100";
  config.global_batch = 256;
  config.devices = 4;
  telemetry::Tracer tracer;
  tracer.set_enabled(true);
  config.trace_sink = &tracer;
  ASSERT_FALSE(core::run_llm_gpu(config).oom);
  const analysis::AnalysisReport report =
      analysis::analyse(analysis::snapshot(tracer));
  const analysis::Finding* imbalance =
      find_finding(report, "analysis/load-imbalance");
  ASSERT_NE(imbalance, nullptr);
  EXPECT_LT(imbalance->score, 0.05);
  EXPECT_NEAR(metric(*imbalance, "skew"), 1.0, 0.05);
}

analysis::Trace comm_fixture(const std::vector<std::string>& span_names,
                             int links) {
  analysis::Trace trace;
  trace.tracks = {"dev0", "dev1"};
  trace.spans.push_back({"micro", 0, 0.0, 1.0e6, "", 0.0, false});
  trace.spans.push_back({"micro", 1, 0.0, 1.0e6, "", 0.0, false});
  for (int l = 0; l < links; ++l) {
    trace.tracks.push_back("link" + std::to_string(l));
  }
  double t = 1.0e6;
  std::size_t next = 0;
  for (const auto& name : span_names) {
    const auto tid = static_cast<std::uint32_t>(2 + next % links);
    trace.spans.push_back({name, tid, t, 0.1e6, "", 0.0, false});
    ++next;
    t += 0.1e6;
  }
  return trace;
}

TEST(Detectors, ClassifiesRingAllReduce) {
  // 2 links, steps s0/s1 = 2*(P-1) for P=2.
  const analysis::AnalysisReport report = analysis::analyse(comm_fixture(
      {"allreduce.s0.d0", "allreduce.s0.d1", "allreduce.s1.d0",
       "allreduce.s1.d1"},
      2));
  const analysis::Finding* comm = find_finding(report, "analysis/comm-pattern");
  ASSERT_NE(comm, nullptr);
  EXPECT_NE(comm->message.find("ring all-reduce"), std::string::npos)
      << comm->message;
}

TEST(Detectors, ClassifiesHierarchicalCollective) {
  const analysis::AnalysisReport report = analysis::analyse(comm_fixture(
      {"allreduce.intra0.s0.d0", "allreduce.inter0.s0.d0",
       "allreduce.bcast.hop1"},
      2));
  const analysis::Finding* comm = find_finding(report, "analysis/comm-pattern");
  ASSERT_NE(comm, nullptr);
  EXPECT_NE(comm->message.find("hierarchical"), std::string::npos)
      << comm->message;
}

TEST(Detectors, ClassifiesAllToAll) {
  // 3 links, each carrying P-1 = 2 unstructured spans of the same group.
  const analysis::AnalysisReport report = analysis::analyse(comm_fixture(
      {"a2a.x0", "a2a.x1", "a2a.x2", "a2a.x3", "a2a.x4", "a2a.x5"}, 3));
  const analysis::Finding* comm = find_finding(report, "analysis/comm-pattern");
  ASSERT_NE(comm, nullptr);
  EXPECT_NE(comm->message.find("all-to-all"), std::string::npos)
      << comm->message;
}

TEST(Detectors, QueueWaitDominance) {
  analysis::Trace trace;
  trace.tracks = {"dev0", "host0"};
  trace.spans.push_back({"micro", 0, 0.0, 1.0e6, "", 0.0, false});
  trace.spans.push_back({"input", 1, 0.0, 0.2e6, "", 0.0, false});
  trace.counters.push_back({"queue_wait/host0", "seconds", 1, 0.0, 0.4});
  trace.counters.push_back({"queue_wait/host0", "seconds", 1, 0.2e6, 0.3});
  const analysis::AnalysisReport report = analysis::analyse(trace);
  const analysis::Finding* wait = find_finding(report, "analysis/queue-wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_DOUBLE_EQ(metric(*wait, "wait_total_s"), 0.7);
  EXPECT_DOUBLE_EQ(metric(*wait, "wait_max_s"), 0.4);
  EXPECT_GT(metric(*wait, "wait_dominance"), 0.5);
  EXPECT_EQ(wait->severity, check::Severity::kWarning);
}

TEST(Detectors, InferenceEnergySplitsPrefillAndDecode) {
  auto& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  core::InferenceConfig config;
  config.system_tag = "GH200";
  config.batch = 8;
  const core::InferenceResult result = core::run_llm_inference(config);
  tracer.set_enabled(false);
  ASSERT_FALSE(result.oom);

  const analysis::AnalysisReport report =
      analysis::analyse(analysis::snapshot(tracer));
  tracer.clear();
  const analysis::Finding* energy =
      find_finding(report, "analysis/energy-attribution");
  ASSERT_NE(energy, nullptr);
  const double prefill_j = metric(*energy, "energy_prefill_j");
  const double decode_j = metric(*energy, "energy_decode_j");
  const double total_j = metric(*energy, "total_j");
  EXPECT_GT(prefill_j, 0.0);
  EXPECT_GT(decode_j, 0.0);
  EXPECT_NEAR(prefill_j + decode_j, total_j, total_j * 0.01);
  // Cross-check against the analytic result: total energy over the request.
  EXPECT_NEAR(total_j, result.avg_power_w * result.request_latency_s,
              total_j * 0.02);
}

// ---------------------------------------------------------------------------
// Report rendering + diagnostics bridge.
// ---------------------------------------------------------------------------

TEST(Report, JsonSchemaAndDiagnostics) {
  const analysis::AnalysisReport report = analysis::analyse(comm_fixture(
      {"allreduce.s0.d0", "allreduce.s1.d0"}, 1));
  const std::string json_text = analysis::render_json(report);
  const telemetry::json::Value doc = telemetry::json::parse(json_text);
  EXPECT_EQ(doc.at("version").as_int(), 1);
  ASSERT_TRUE(doc.at("summary").is_object());
  EXPECT_EQ(static_cast<std::size_t>(doc.at("summary").at("findings").as_int()),
            report.findings.size());
  ASSERT_TRUE(doc.at("findings").is_array());
  ASSERT_FALSE(doc.at("findings").as_array().empty());
  const auto& first = doc.at("findings").as_array()[0];
  for (const char* key :
       {"rank", "detector", "rule", "severity", "score", "message",
        "metrics"}) {
    EXPECT_TRUE(first.contains(key)) << key;
  }

  check::DiagnosticList diags;
  analysis::to_diagnostics(report, diags);
  EXPECT_EQ(diags.items().size(), report.findings.size());
  EXPECT_FALSE(diags.has_errors());
  const std::string human = analysis::render_human(report);
  EXPECT_NE(human.find("1. ["), std::string::npos) << human;
}

TEST(Report, EveryDetectorRuleIsRegistered) {
  for (const auto& info : analysis::detector_catalogue()) {
    EXPECT_NE(check::find_rule(info.rule_id), nullptr) << info.rule_id;
  }
  EXPECT_NE(check::find_rule("analysis/trace-error"), nullptr);
  EXPECT_NE(check::find_rule("analysis/no-data"), nullptr);
}

}  // namespace
