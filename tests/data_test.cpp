#include <gtest/gtest.h>

#include <set>

#include "data/bpe.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::data {
namespace {

// --- BPE tokenizer ----------------------------------------------------------------

TEST(Bpe, UntrainedTokenizerIsByteLevel) {
  BpeTokenizer tokenizer;
  EXPECT_EQ(tokenizer.vocab_size(), 256u);
  const auto ids = tokenizer.encode("abc");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 'a');
  EXPECT_EQ(tokenizer.decode(ids), "abc");
}

TEST(Bpe, TrainingLearnsMerges) {
  BpeTokenizer tokenizer;
  tokenizer.train("aaabdaaabac aaab aaab aaab", 260);
  EXPECT_GT(tokenizer.num_merges(), 0u);
  EXPECT_EQ(tokenizer.vocab_size(), 260u);
}

TEST(Bpe, CompressionShortensTokenStream) {
  Rng rng(1);
  const std::string corpus = synthetic_oscar_text(500, rng);
  BpeTokenizer tokenizer;
  tokenizer.train(corpus, 384);
  const auto ids = tokenizer.encode(corpus);
  EXPECT_LT(ids.size(), corpus.size());  // merges compress
  EXPECT_LT(static_cast<double>(ids.size()), 0.8 * corpus.size());
}

TEST(Bpe, RoundTripOnTrainingText) {
  Rng rng(2);
  const std::string corpus = synthetic_oscar_text(200, rng);
  BpeTokenizer tokenizer;
  tokenizer.train(corpus, 320);
  EXPECT_EQ(tokenizer.decode(tokenizer.encode(corpus)), corpus);
}

class BpeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};
TEST_P(BpeRoundTrip, AnyByteStringSurvives) {
  // Property: decode(encode(x)) == x for arbitrary byte strings, even ones
  // unrelated to the training corpus (byte-level base alphabet).
  Rng seed_rng(GetParam());
  std::string text;
  const std::int64_t length = seed_rng.uniform_int(0, 300);
  for (std::int64_t i = 0; i < length; ++i) {
    text.push_back(static_cast<char>(seed_rng.uniform_int(0, 255)));
  }
  Rng corpus_rng(99);
  BpeTokenizer tokenizer;
  tokenizer.train(synthetic_oscar_text(300, corpus_rng), 300);
  EXPECT_EQ(tokenizer.decode(tokenizer.encode(text)), text);
}
INSTANTIATE_TEST_SUITE_P(Data, BpeRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Bpe, SaveLoadPreservesEncoding) {
  Rng rng(3);
  const std::string corpus = synthetic_oscar_text(300, rng);
  BpeTokenizer tokenizer;
  tokenizer.train(corpus, 350);
  const BpeTokenizer restored = BpeTokenizer::load(tokenizer.save());
  EXPECT_EQ(restored.vocab_size(), tokenizer.vocab_size());
  const std::string probe = corpus.substr(0, 120);
  EXPECT_EQ(restored.encode(probe), tokenizer.encode(probe));
}

TEST(Bpe, LoadRejectsMalformedInput) {
  EXPECT_THROW(BpeTokenizer::load("not a merge line\n"), ParseError);
  EXPECT_THROW(BpeTokenizer::load("999 1000\n"), ParseError);  // unknown ids
}

TEST(Bpe, TokenTextExpandsMerges) {
  BpeTokenizer tokenizer;
  tokenizer.train("ababababab", 257);  // one merge: ('a','b') -> 256
  ASSERT_EQ(tokenizer.num_merges(), 1u);
  EXPECT_EQ(tokenizer.token_text(256), "ab");
  EXPECT_THROW(tokenizer.token_text(300), Error);
}

TEST(Bpe, VocabBelow256Rejected) {
  BpeTokenizer tokenizer;
  EXPECT_THROW(tokenizer.train("abc", 100), Error);
}

// --- synthetic OSCAR text ------------------------------------------------------------

TEST(SyntheticOscar, ProducesRequestedWordCount) {
  Rng rng(4);
  const std::string text = synthetic_oscar_text(100, rng);
  std::size_t words = 1;
  for (char c : text) {
    if (c == ' ') ++words;
  }
  EXPECT_EQ(words, 100u);
  EXPECT_EQ(text.back(), '.');
}

TEST(SyntheticOscar, DeterministicPerSeed) {
  Rng a(5), b(5);
  EXPECT_EQ(synthetic_oscar_text(50, a), synthetic_oscar_text(50, b));
}

TEST(SyntheticOscar, ZipfSkewsWordFrequencies) {
  Rng rng(6);
  const std::string text = synthetic_oscar_text(2000, rng, 64);
  // The most frequent word should appear far more often than a uniform
  // distribution would suggest (2000/64 ≈ 31).
  std::map<std::string, int> counts;
  std::string word;
  for (char c : text) {
    if (c == ' ' || c == '.') {
      if (!word.empty()) ++counts[word];
      word.clear();
    } else {
      word.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  int best = 0;
  for (const auto& [w, n] : counts) best = std::max(best, n);
  EXPECT_GT(best, 80);
}

// --- token stream ---------------------------------------------------------------------

TEST(TokenStream, SampleBatchShapesAndTargets) {
  std::vector<std::int32_t> tokens;
  for (int i = 0; i < 100; ++i) tokens.push_back(i % 10);
  TokenStream stream(std::move(tokens));
  EXPECT_EQ(stream.max_token(), 9);

  Rng rng(7);
  const auto batch = stream.sample_batch(4, 8, rng);
  EXPECT_EQ(batch.inputs.dim(0), 4);
  EXPECT_EQ(batch.inputs.dim(1), 8);
  ASSERT_EQ(batch.targets.size(), 32u);
  // Targets are inputs shifted by one within the modular sequence.
  for (std::int64_t b = 0; b < 4; ++b) {
    for (std::int64_t t = 0; t < 8; ++t) {
      const auto input = static_cast<std::int64_t>(batch.inputs[b * 8 + t]);
      const auto target = batch.targets[static_cast<std::size_t>(b * 8 + t)];
      EXPECT_EQ(target, (input + 1) % 10);
    }
  }
}

TEST(TokenStream, RejectsTooLongSequences) {
  TokenStream stream({1, 2, 3, 4});
  Rng rng(8);
  EXPECT_THROW(stream.sample_batch(1, 10, rng), Error);
  EXPECT_THROW(TokenStream({1}), Error);
  EXPECT_THROW(TokenStream({1, -2}), Error);
}

// --- synthetic images ---------------------------------------------------------------------

TEST(SyntheticImages, BatchShapesAndLabelRange) {
  SyntheticImageDataset dataset(4, 3, 8, 8, /*seed=*/9);
  Rng rng(10);
  const auto batch = dataset.sample_batch(16, rng);
  EXPECT_EQ(batch.images.dim(0), 16);
  EXPECT_EQ(batch.images.dim(1), 3);
  EXPECT_EQ(batch.images.dim(2), 8);
  ASSERT_EQ(batch.labels.size(), 16u);
  for (auto label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(SyntheticImages, ClassesHaveDistinctMeans) {
  SyntheticImageDataset dataset(2, 1, 16, 16, /*seed=*/11);
  Rng rng(12);
  // Average many samples per class; the class means should separate.
  double mean0 = 0.0, mean1 = 0.0;
  int n0 = 0, n1 = 0;
  for (int i = 0; i < 40; ++i) {
    const auto batch = dataset.sample_batch(4, rng);
    for (std::int64_t s = 0; s < 4; ++s) {
      double m = 0.0;
      for (std::int64_t p = 0; p < 256; ++p) m += batch.images[s * 256 + p];
      m /= 256.0;
      if (batch.labels[static_cast<std::size_t>(s)] == 0) {
        mean0 += m;
        ++n0;
      } else {
        mean1 += m;
        ++n1;
      }
    }
  }
  ASSERT_GT(n0, 0);
  ASSERT_GT(n1, 0);
  EXPECT_GT(std::abs(mean0 / n0 - mean1 / n1), 0.2);
}

TEST(SyntheticImages, DeterministicMeansPerSeed) {
  SyntheticImageDataset a(3, 2, 4, 4, 42), b(3, 2, 4, 4, 42);
  Rng ra(1), rb(1);
  const auto batch_a = a.sample_batch(2, ra);
  const auto batch_b = b.sample_batch(2, rb);
  for (std::int64_t i = 0; i < batch_a.images.numel(); ++i) {
    EXPECT_FLOAT_EQ(batch_a.images[i], batch_b.images[i]);
  }
}

TEST(SyntheticImages, RejectsDegenerateConfig) {
  EXPECT_THROW(SyntheticImageDataset(1, 3, 8, 8, 1), Error);
  SyntheticImageDataset dataset(2, 1, 4, 4, 1);
  Rng rng(2);
  EXPECT_THROW(dataset.sample_batch(0, rng), Error);
}

}  // namespace
}  // namespace caraml::data
