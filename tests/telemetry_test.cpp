// Tests for caraml::telemetry: metrics registry (concurrent updates,
// histogram percentiles), span tracing (nesting, Chrome-trace JSON
// well-formedness), run manifests (round-trip), and the observability hooks
// in the simulator (queue-wait stats) and PowerScope (sampling diagnostics).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "power/clock.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "sim/engine.hpp"
#include "sim/trace_export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace caraml;
using telemetry::Histogram;
using telemetry::Manifest;
using telemetry::Registry;
using telemetry::Tracer;

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(TelemetryMetrics, CounterConcurrentIncrementsAreExact) {
  Registry registry;
  auto& counter = registry.counter("test/hits");
  ThreadPool pool(4);
  constexpr std::size_t kIters = 10000;
  pool.parallel_for(0, kIters, [&](std::size_t) { counter.add(); });
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kIters));
  counter.add(5);
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kIters) + 5);
}

TEST(TelemetryMetrics, GaugeLastWriteWins) {
  Registry registry;
  auto& gauge = registry.gauge("test/level");
  gauge.set(1.5);
  gauge.set(-3.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.25);
}

TEST(TelemetryMetrics, RegistryGetOrCreateReturnsSameHandle) {
  Registry registry;
  auto& a = registry.counter("dup");
  auto& b = registry.counter("dup");
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(registry.has("dup"));
  EXPECT_FALSE(registry.has("missing"));
}

TEST(TelemetryMetrics, HistogramConcurrentObservationsKeepCountAndSum) {
  Registry registry;
  auto& hist =
      registry.histogram("test/latency", Histogram::linear_buckets(1, 1, 100));
  ThreadPool pool(4);
  constexpr std::size_t kIters = 8000;
  pool.parallel_for(0, kIters,
                    [&](std::size_t i) { hist.observe(double(i % 100)); });
  EXPECT_EQ(hist.count(), static_cast<std::int64_t>(kIters));
  // sum of (i % 100) over 8000 iterations = 80 * (0 + ... + 99)
  EXPECT_DOUBLE_EQ(hist.sum(), 80.0 * 4950.0);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 99.0);
}

TEST(TelemetryMetrics, HistogramPercentilesInterpolate) {
  Histogram hist(Histogram::linear_buckets(10, 10, 10));  // 10,20,...,100
  for (int v = 1; v <= 100; ++v) hist.observe(double(v));
  // Uniform 1..100: percentiles should land within one bucket width.
  EXPECT_NEAR(hist.percentile(50), 50.0, 10.0);
  EXPECT_NEAR(hist.percentile(90), 90.0, 10.0);
  EXPECT_GE(hist.percentile(99), hist.percentile(90));
  // Clamped to observed extremes.
  EXPECT_GE(hist.percentile(0), 1.0);
  EXPECT_LE(hist.percentile(100), 100.0);
}

TEST(TelemetryMetrics, HistogramEmptyPercentileThrows) {
  Histogram hist(Histogram::default_buckets());
  EXPECT_THROW(hist.percentile(50), Error);
}

TEST(TelemetryMetrics, HistogramRejectsBadBuckets) {
  EXPECT_THROW(Histogram({}), Error);
  EXPECT_THROW(Histogram({2.0, 1.0}), Error);
}

TEST(TelemetryMetrics, BucketHelpersProduceIncreasingBounds) {
  const auto lin = Histogram::linear_buckets(1.0, 2.0, 4);
  ASSERT_EQ(lin.size(), 4u);
  EXPECT_DOUBLE_EQ(lin[0], 1.0);
  EXPECT_DOUBLE_EQ(lin[3], 7.0);
  const auto exp = Histogram::exponential_buckets(1.0, 10.0, 3);
  ASSERT_EQ(exp.size(), 3u);
  EXPECT_DOUBLE_EQ(exp[2], 100.0);
}

TEST(TelemetryMetrics, DataframeSnapshotAndReset) {
  Registry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h").observe(0.5);
  const auto frame = registry.to_dataframe();
  EXPECT_EQ(frame.num_rows(), 3u);
  EXPECT_TRUE(frame.has_column("name"));
  EXPECT_TRUE(frame.has_column("p99"));

  auto& counter = registry.counter("c");
  registry.reset();
  EXPECT_EQ(counter.value(), 0);           // handle survives, value zeroed
  EXPECT_EQ(registry.names().size(), 3u);  // registrations survive
}

TEST(TelemetryMetrics, WriteFilesEmitsCsvAndJson) {
  Registry registry;
  registry.counter("written").add(3);
  const std::string dir = testing::TempDir() + "telemetry_metrics_out";
  registry.write_files(dir);
  std::ifstream csv(dir + "/metrics.csv");
  ASSERT_TRUE(csv.good());
  std::stringstream json_text;
  std::ifstream json_file(dir + "/metrics.json");
  ASSERT_TRUE(json_file.good());
  json_text << json_file.rdbuf();
  const auto parsed = telemetry::json::parse(json_text.str());
  EXPECT_EQ(parsed.at("written").at("value").as_int(), 3);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(TelemetryJson, RoundTripPreservesMemberOrder) {
  const std::string doc =
      R"({"zebra":1,"alpha":[true,null,"x\n"],"nested":{"k":-2.5}})";
  const auto value = telemetry::json::parse(doc);
  EXPECT_EQ(telemetry::json::dump(value), doc);
  EXPECT_EQ(value.at("zebra").as_int(), 1);
  EXPECT_TRUE(value.at("alpha").as_array()[0].as_bool());
  EXPECT_TRUE(value.at("alpha").as_array()[1].is_null());
  EXPECT_EQ(value.at("alpha").as_array()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(value.at("nested").at("k").as_number(), -2.5);
}

TEST(TelemetryJson, MalformedInputThrowsParseError) {
  EXPECT_THROW(telemetry::json::parse("{"), ParseError);
  EXPECT_THROW(telemetry::json::parse("[1,]"), ParseError);
  EXPECT_THROW(telemetry::json::parse("{} trailing"), ParseError);
  EXPECT_THROW(telemetry::json::parse(R"({"a":1)"), ParseError);
}

TEST(TelemetryJson, MissingKeyThrowsNotFound) {
  const auto value = telemetry::json::parse(R"({"a":1})");
  EXPECT_THROW(value.at("b"), NotFound);
  EXPECT_THROW(value.at("a").as_string(), Error);  // kind mismatch
}

// ---------------------------------------------------------------------------
// Spans / tracer
// ---------------------------------------------------------------------------

TEST(TelemetrySpan, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    telemetry::Span span("noop", tracer);
  }
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TelemetrySpan, NestedSpansShareTrackAndOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  double fake_now = 0.0;
  tracer.set_clock([&fake_now] { return fake_now; });
  {
    telemetry::Span outer("outer", tracer);
    fake_now = 1.0;
    {
      telemetry::Span inner("inner", tracer);
      fake_now = 2.0;
    }
    fake_now = 3.0;
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first; both on the calling thread's track.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].track, spans[1].track);
  EXPECT_DOUBLE_EQ(spans[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(spans[0].dur_s, 1.0);
  EXPECT_DOUBLE_EQ(spans[1].start_s, 0.0);
  EXPECT_DOUBLE_EQ(spans[1].dur_s, 3.0);
  // The outer span fully encloses the inner one.
  EXPECT_LE(spans[1].start_s, spans[0].start_s);
  EXPECT_GE(spans[1].start_s + spans[1].dur_s,
            spans[0].start_s + spans[0].dur_s);
}

TEST(TelemetrySpan, ChromeTraceIsWellFormedJsonWithAllEventKinds) {
  Tracer tracer;
  tracer.set_enabled(true);
  const auto compute = tracer.track("compute");
  const auto power = tracer.track("power");
  tracer.add_span("kernel", compute, 0.5, 1.0, "utilization", 0.8);
  tracer.add_counter("power/gpu0", "watts", power, 0.0, 120.0);
  tracer.add_counter("power/gpu0", "watts", power, 1.5, 300.0);

  const std::string doc = tracer.to_chrome_trace();
  const auto parsed = telemetry::json::parse(doc);
  const auto& events = parsed.at("traceEvents").as_array();
  int meta = 0, complete = 0, counter = 0;
  for (const auto& event : events) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") ++meta;
    if (ph == "X") ++complete;
    if (ph == "C") ++counter;
  }
  EXPECT_EQ(meta, 2);     // one thread_name record per track
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(counter, 2);

  // The complete event carries microsecond timestamps and the utilization arg.
  for (const auto& event : events) {
    if (event.at("ph").as_string() != "X") continue;
    EXPECT_EQ(event.at("name").as_string(), "kernel");
    EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 0.5e6);
    EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 1.0e6);
    EXPECT_DOUBLE_EQ(event.at("args").at("utilization").as_number(), 0.8);
  }
}

TEST(TelemetrySpan, ThreadTracksGetDistinctIds) {
  Tracer tracer;
  tracer.set_enabled(true);
  std::atomic<std::uint32_t> other_track{0};
  const std::uint32_t mine = tracer.thread_track();
  std::thread worker(
      [&] { other_track.store(tracer.thread_track()); });
  worker.join();
  EXPECT_NE(mine, other_track.load());
}

TEST(TelemetrySpan, ClearDropsEventsButKeepsEnabled) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.add_span("s", tracer.track("t"), 0.0, 1.0);
  tracer.clear();
  EXPECT_EQ(tracer.num_events(), 0u);
  EXPECT_TRUE(tracer.enabled());
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

Manifest example_manifest() {
  Manifest m;
  m.command = "llm";
  m.timestamp = "2026-08-06T12:00:00.000Z";
  m.system_tag = "GH200";
  m.git_revision = "abc1234";
  m.rng_seed = 42;
  m.config = {{"batch", "512"}, {"model", "GPT-800M"}};
  m.power_samples = 50;
  m.sample_overruns = 2;
  m.sample_jitter_ms_mean = 0.125;
  m.sample_jitter_ms_max = 1.5;
  m.num_threads = 16;
  m.results = {{"tokens_per_s", 47261.5}, {"mfu", 0.291}};
  return m;
}

TEST(TelemetryManifest, JsonLineRoundTrip) {
  const Manifest original = example_manifest();
  const std::string line = original.to_json_line();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const Manifest parsed = Manifest::from_json_line(line);
  EXPECT_EQ(parsed.schema_version, original.schema_version);
  EXPECT_EQ(parsed.command, original.command);
  EXPECT_EQ(parsed.timestamp, original.timestamp);
  EXPECT_EQ(parsed.system_tag, original.system_tag);
  EXPECT_EQ(parsed.git_revision, original.git_revision);
  EXPECT_EQ(parsed.rng_seed, original.rng_seed);
  EXPECT_EQ(parsed.config, original.config);
  EXPECT_EQ(parsed.power_samples, original.power_samples);
  EXPECT_EQ(parsed.sample_overruns, original.sample_overruns);
  EXPECT_DOUBLE_EQ(parsed.sample_jitter_ms_mean,
                   original.sample_jitter_ms_mean);
  EXPECT_DOUBLE_EQ(parsed.sample_jitter_ms_max, original.sample_jitter_ms_max);
  EXPECT_EQ(parsed.num_threads, original.num_threads);
  ASSERT_EQ(parsed.results.size(), original.results.size());
  EXPECT_DOUBLE_EQ(parsed.results.at("tokens_per_s"), 47261.5);
}

TEST(TelemetryManifest, DtypeRoundTripsWhenSet) {
  Manifest m = example_manifest();
  m.dtype = "int8";
  const std::string line = m.to_json_line();
  EXPECT_NE(line.find("\"dtype\":\"int8\""), std::string::npos) << line;
  EXPECT_EQ(Manifest::from_json_line(line).dtype, "int8");
}

TEST(TelemetryManifest, DtypeOmittedWhenEmpty) {
  // Commands without a precision axis leave dtype empty; the field must
  // stay out of the line so pre-dtype manifest consumers see no change.
  const Manifest m = example_manifest();
  const std::string line = m.to_json_line();
  EXPECT_EQ(line.find("dtype"), std::string::npos) << line;
  EXPECT_TRUE(Manifest::from_json_line(line).dtype.empty());
}

TEST(TelemetryManifest, LinesWithoutThreadCountParseWithZeroDefault) {
  Manifest m = example_manifest();
  m.num_threads = 0;
  std::string line = m.to_json_line();
  // Simulate an older line by stripping the field.
  const std::string needle = "\"num_threads\":0,";
  const auto pos = line.find(needle);
  ASSERT_NE(pos, std::string::npos) << line;
  line.erase(pos, needle.size());
  const Manifest parsed = Manifest::from_json_line(line);
  EXPECT_EQ(parsed.num_threads, 0);
}

TEST(TelemetryManifest, AppendCreatesFileAndAccumulatesLines) {
  const std::string path = testing::TempDir() +
                           "telemetry_manifest_dir/manifest.jsonl";
  std::remove(path.c_str());
  telemetry::append_manifest_line(example_manifest(), path);
  telemetry::append_manifest_line(example_manifest(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NO_THROW(Manifest::from_json_line(line));
  }
  EXPECT_EQ(lines, 2);
}

TEST(TelemetryManifest, WrongSchemaVersionRejected) {
  EXPECT_THROW(Manifest::from_json_line(R"({"schema_version":99})"), Error);
  EXPECT_THROW(Manifest::from_json_line("not json"), ParseError);
}

TEST(TelemetryManifest, TimestampLooksIso8601) {
  const std::string ts = telemetry::iso8601_utc_now();
  ASSERT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts.back(), 'Z');
}

// ---------------------------------------------------------------------------
// Simulator queue-wait observability
// ---------------------------------------------------------------------------

TEST(TelemetrySim, QueueWaitTracksContention) {
  sim::TaskGraph graph;
  auto* device = graph.add_resource("dev");
  // Both tasks ready at t=0; the second waits for the first to finish.
  const auto first = graph.add_task(device, 2.0, 1.0, "a");
  const auto second = graph.add_task(device, 1.0, 1.0, "b");
  graph.run();
  EXPECT_DOUBLE_EQ(graph.queue_wait(first), 0.0);
  EXPECT_DOUBLE_EQ(graph.queue_wait(second), 2.0);
  EXPECT_DOUBLE_EQ(device->queue_wait_max(), 2.0);
  EXPECT_DOUBLE_EQ(device->queue_wait_mean(), 1.0);

  const auto summary = sim::utilization_summary(graph);
  ASSERT_TRUE(summary.has_column("queue_wait_mean_s"));
  ASSERT_TRUE(summary.has_column("queue_wait_max_s"));
  EXPECT_DOUBLE_EQ(summary.column("queue_wait_max_s").as_double(0), 2.0);
}

// ---------------------------------------------------------------------------
// PowerScope sampling diagnostics
// ---------------------------------------------------------------------------

TEST(TelemetryPower, ScopeDiagnosticsCountSamplesAndJitter) {
  auto method = std::make_shared<power::SyntheticMethod>("s0", 100.0, 0.0, 1.0);
  power::PowerScope scope({method}, /*interval_ms=*/5.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  scope.stop();
  const auto diag = scope.diagnostics();
  EXPECT_EQ(diag.samples,
            static_cast<std::int64_t>(scope.num_samples()));
  EXPECT_GE(diag.samples, 4);
  EXPECT_GE(diag.jitter_ms_max, diag.jitter_ms_mean);
  EXPECT_GE(diag.jitter_ms_mean, 0.0);
  EXPECT_GE(diag.overruns, 0);
}

TEST(TelemetryPower, CounterTrackExportsScopeSamples) {
  auto method = std::make_shared<power::SyntheticMethod>("s0", 50.0, 0.0, 1.0);
  power::PowerScope scope({method}, /*interval_ms=*/5.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  scope.stop();

  Tracer tracer;
  tracer.set_enabled(true);
  power::append_counter_track(scope, tracer);
  const auto counters = tracer.counters();
  ASSERT_EQ(counters.size(), scope.num_samples());
  for (const auto& event : counters) {
    EXPECT_EQ(event.name, "power/synthetic:s0");
    EXPECT_EQ(event.series, "watts");
    EXPECT_DOUBLE_EQ(event.value, 50.0);
  }
}

}  // namespace
