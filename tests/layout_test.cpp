// Agreement tests for the static layout analyzer (src/check/layout_model,
// sim/layout_analytic): the closed-form predictions must track what the
// ClusterSim task graph in core::run_llm_gpu actually produces.
//
// Tolerance: per-micro-step cost is *shared* between lint and sim (the
// simulator calls sim::llm_micro_cost), so iteration time and average power
// may differ only where the analyzer mirrors the task graph analytically
// (hierarchical all-reduce overlap, power-trace integration). 5% covers
// that; in practice the deltas are well under 1%.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "check/layout_model.hpp"
#include "core/llm.hpp"
#include "jube/jube.hpp"
#include "par/pipeline.hpp"
#include "sim/layout_analytic.hpp"
#include "topo/specs.hpp"

namespace caraml::check {
namespace {

constexpr double kAgreementTol = 0.05;  // documented in docs/static-analysis.md

struct Case {
  std::string system;
  models::GptConfig model;
  int tp = 1, pp = 1, dp = 1;
  std::int64_t micro = 4, global = 256;
  int num_nodes = 1;
  int devices_per_node = -1;  // -1: dp*tp*pp / num_nodes
};

sim::LlmPrediction predict(const Case& c, const topo::NodeSpec& node,
                           int devices_per_node) {
  sim::LlmLayoutCost layout;
  layout.model = c.model;
  layout.tensor_parallel = c.tp;
  layout.pipeline_parallel = c.pp;
  layout.data_parallel = c.dp;
  layout.micro_batch = c.micro;
  layout.global_batch = c.global;
  layout.devices_per_node = devices_per_node;
  layout.num_nodes = c.num_nodes;
  return sim::predict_llm_iteration(node, layout);
}

core::LlmRunResult simulate(const Case& c, int devices_per_node) {
  core::LlmRunConfig config;
  config.system_tag = c.system;
  config.model = c.model;
  config.global_batch = c.global;
  config.micro_batch = c.micro;
  config.tensor_parallel = c.tp;
  config.pipeline_parallel = c.pp;
  config.data_parallel = c.dp;
  config.num_nodes = c.num_nodes;
  config.devices = devices_per_node;
  return core::run_llm_gpu(config);
}

void expect_agreement(const Case& c) {
  const topo::NodeSpec& node =
      topo::SystemRegistry::instance().by_tag(c.system);
  const int devices_per_node =
      c.devices_per_node > 0 ? c.devices_per_node
                             : c.tp * c.pp * c.dp / c.num_nodes;
  const sim::LlmPrediction predicted = predict(c, node, devices_per_node);
  const core::LlmRunResult simulated = simulate(c, devices_per_node);
  const std::string label = c.system + " " + c.model.name +
                            " tp=" + std::to_string(c.tp) +
                            " pp=" + std::to_string(c.pp) +
                            " dp=" + std::to_string(c.dp);

  ASSERT_EQ(predicted.oom, simulated.oom) << label;
  EXPECT_DOUBLE_EQ(predicted.memory_per_device_bytes,
                   simulated.memory_per_device_bytes)
      << label;
  if (predicted.oom) return;
  EXPECT_NEAR(predicted.iteration_time_s, simulated.iteration_time_s,
              kAgreementTol * simulated.iteration_time_s)
      << label;
  EXPECT_NEAR(predicted.avg_power_w, simulated.avg_power_per_gpu_w,
              kAgreementTol * simulated.avg_power_per_gpu_w)
      << label;
  EXPECT_NEAR(predicted.tokens_per_s_per_device,
              simulated.tokens_per_s_per_gpu,
              kAgreementTol * simulated.tokens_per_s_per_gpu)
      << label;
  EXPECT_NEAR(predicted.mfu, simulated.mfu, kAgreementTol * simulated.mfu)
      << label;
  // Energy per iteration is avg power x iteration time on both sides.
  EXPECT_NEAR(predicted.energy_per_device_j,
              simulated.avg_power_per_gpu_w * simulated.iteration_time_s,
              kAgreementTol * simulated.avg_power_per_gpu_w *
                  simulated.iteration_time_s)
      << label;
}

// --- iteration-time / energy agreement vs ClusterSim ----------------------------

TEST(LayoutAgreement, SingleNodeDataParallel) {
  expect_agreement({"A100", models::GptConfig::gpt_800m(), 1, 1, 4, 4, 256});
  expect_agreement({"GH200", models::GptConfig::gpt_800m(), 1, 1, 1, 4, 64});
}

TEST(LayoutAgreement, TensorAndPipelineParallelWithinNode) {
  expect_agreement({"A100", models::GptConfig::gpt_13b(), 2, 2, 1, 1, 8});
  expect_agreement({"WAIH100", models::GptConfig::gpt_13b(), 4, 1, 1, 2, 16});
  expect_agreement({"A100", models::GptConfig::gpt_800m(), 1, 4, 1, 4, 32});
}

TEST(LayoutAgreement, TwoNodeDataParallelOverInfiniBand) {
  // 8 A100s on 2 nodes: the analyzer's hierarchical all-reduce mirror must
  // track the simulated intra-ring / inter-ring / broadcast timeline.
  expect_agreement(
      {"A100", models::GptConfig::gpt_800m(), 1, 1, 8, 4, 256, 2});
  expect_agreement(
      {"WAIH100", models::GptConfig::gpt_13b(), 2, 2, 2, 2, 64, 2});
}

// --- OOM agreement: every analyzer-declared OOM actually OOMs -------------------

TEST(LayoutAgreement, OomVerdictsMatchSimulationAcrossGrid) {
  const std::vector<models::GptConfig> zoo = {
      models::GptConfig::gpt_117m(), models::GptConfig::gpt_800m(),
      models::GptConfig::gpt_13b(), models::GptConfig::gpt_175b()};
  int ooms = 0;
  for (const auto& model : zoo) {
    for (const std::int64_t micro : {1, 4}) {
      Case c{"A100", model, 1, 1, 4, micro, 4 * micro};
      const topo::NodeSpec& node =
          topo::SystemRegistry::instance().by_tag(c.system);
      const sim::LlmPrediction predicted = predict(c, node, 4);
      const core::LlmRunResult simulated = simulate(c, 4);
      EXPECT_EQ(predicted.oom, simulated.oom)
          << model.name << " micro=" << micro;
      ooms += predicted.oom;
    }
  }
  EXPECT_GE(ooms, 2);  // the grid must actually exercise the OOM side
}

// --- pipeline-schedule validation -----------------------------------------------

TEST(ScheduleValidation, BuiltInSchedulesValidateClean) {
  for (const auto kind : {par::PipelineScheduleKind::kGPipe,
                          par::PipelineScheduleKind::kOneFOneB}) {
    for (const int stages : {2, 4, 8}) {
      for (const int micro : {1, 4, 16}) {
        const par::PipelineSchedule schedule =
            par::build_pipeline_schedule(kind, stages, micro);
        const auto issues = par::validate_pipeline_schedule(schedule);
        EXPECT_TRUE(issues.empty())
            << "kind=" << static_cast<int>(kind) << " stages=" << stages
            << " micro=" << micro
            << (issues.empty() ? "" : ": " + issues.front().message);
      }
    }
  }
}

TEST(ScheduleValidation, SeededDefectsAreFlagged) {
  // Missing backward slots: the pipeline can never complete.
  par::PipelineSchedule missing;
  missing.num_stages = 2;
  missing.num_micro = 1;
  missing.slots = {{0, 0, true, 0}, {1, 0, true, 1}};
  auto issues = par::validate_pipeline_schedule(missing);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues.front().kind, par::ScheduleIssue::Kind::kMissingSlot);

  // Consumer starts before its producer finishes: deadlock under blocking
  // sends.
  par::PipelineSchedule early = par::build_pipeline_schedule(
      par::PipelineScheduleKind::kGPipe, 2, 2);
  for (auto& slot : early.slots) {
    if (slot.stage == 1 && slot.micro == 0 && slot.forward) slot.time = 0;
  }
  bool dependency = false;
  for (const auto& issue : par::validate_pipeline_schedule(early)) {
    dependency |= issue.kind == par::ScheduleIssue::Kind::kDependency;
  }
  EXPECT_TRUE(dependency);

  // Two slots booked on one stage at once.
  par::PipelineSchedule overlap = par::build_pipeline_schedule(
      par::PipelineScheduleKind::kGPipe, 2, 2);
  for (auto& slot : overlap.slots) {
    if (slot.stage == 0 && slot.micro == 1 && slot.forward) slot.time = 0;
  }
  bool overlapped = false;
  for (const auto& issue : par::validate_pipeline_schedule(overlap)) {
    overlapped |= issue.kind == par::ScheduleIssue::Kind::kOverlap;
  }
  EXPECT_TRUE(overlapped);

  // Valid but stretched far beyond the analytic bubble bound.
  par::PipelineSchedule starved = par::build_pipeline_schedule(
      par::PipelineScheduleKind::kGPipe, 2, 2);
  for (auto& slot : starved.slots) {
    if (!slot.forward) slot.time += 20;
  }
  bool flagged = false;
  for (const auto& issue : par::validate_pipeline_schedule(starved)) {
    flagged |= issue.kind == par::ScheduleIssue::Kind::kStarved;
  }
  EXPECT_TRUE(flagged);
}

TEST(ScheduleValidation, BubbleLowerBoundMatchesGpipeFormula) {
  EXPECT_DOUBLE_EQ(par::pipeline_bubble_lower_bound(4, 12),
                   par::gpipe_bubble_fraction(4, 12));
  EXPECT_DOUBLE_EQ(par::pipeline_bubble_lower_bound(1, 8), 0.0);
}

// --- scale: 10k+ devices in well under a second ---------------------------------

TEST(LayoutScale, TenThousandDeviceLayoutAnalyzesFast) {
  LayoutSpec spec;
  spec.node = topo::SystemRegistry::instance().by_tag("WAIH100");
  spec.model = models::GptConfig::gpt_175b();
  spec.model.activation_recompute = true;
  spec.tensor_parallel = 4;
  spec.pipeline_parallel = 16;
  spec.data_parallel = 160;  // 10240 devices, 2560 nodes
  spec.micro_batch = 1;
  spec.global_batch = 1600;

  const auto start = std::chrono::steady_clock::now();
  const LayoutAnalysis analysis = analyze_layout(spec);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(analysis.valid) << analysis.invalid_reason;
  EXPECT_FALSE(analysis.prediction.oom);
  EXPECT_EQ(analysis.num_nodes, 2560);
  EXPECT_GT(analysis.prediction.dp_inter_bytes_per_leader, 0.0);
  // Closed form, not simulation: the whole analysis is microseconds; a full
  // second of headroom keeps the bound robust on loaded CI machines.
  EXPECT_LT(elapsed_s, 1.0);
}

// --- statically-doomed workpackage gating (caraml run --skip-doomed) ------------

TEST(SkipDoomed, WorkpackageDoomReasons) {
  jube::Context doomed{{"system", "A100"}, {"model", "175B"},
                       {"global_batch", "512"}, {"micro_batch", "1"}};
  const std::string reason = workpackage_doom_reason(doomed, {"llm_train"});
  EXPECT_NE(reason.find("llm_train"), std::string::npos);
  EXPECT_NE(reason.find("static OOM"), std::string::npos);

  jube::Context fine{{"system", "A100"}, {"model", "800M"},
                     {"global_batch", "256"}, {"micro_batch", "4"}};
  EXPECT_EQ(workpackage_doom_reason(fine, {"llm_train"}), "");

  jube::Context resnet_oom{{"system", "A100"}, {"variant", "resnet50"},
                           {"global_batch", "1024"}, {"devices", "1"}};
  EXPECT_NE(workpackage_doom_reason(resnet_oom, {"resnet_train"}).find(
                "static OOM"),
            std::string::npos);

  // Unknown actions and non-GPU systems never gate.
  EXPECT_EQ(workpackage_doom_reason(doomed, {"mystery_step"}), "");
}

TEST(SkipDoomed, SweepMarksGatedWorkpackagesSkipped) {
  jube::Benchmark benchmark("gate-demo");
  jube::ParameterSet params;
  params.name = "p";
  params.parameters = {jube::Parameter{"x", {"ok", "doomed"}, ""}};
  benchmark.add_parameter_set(params);
  benchmark.add_step(jube::Step{"s", {}, "echo", ""});
  jube::ActionRegistry registry;
  int executed = 0;
  registry.register_action("echo", [&](const jube::Context& context) {
    ++executed;
    return context.at("x");
  });

  jube::SweepOptions sweep;
  sweep.static_gate = [](const jube::Context& context,
                         const std::vector<std::string>& actions) {
    EXPECT_EQ(actions, std::vector<std::string>{"echo"});
    return context.at("x") == "doomed" ? "provably cannot run" : "";
  };
  const jube::RunResult result = benchmark.run(registry, {}, sweep);
  ASSERT_EQ(result.workpackages.size(), 2u);
  EXPECT_EQ(result.skipped, 1u);
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(result.workpackages[0].status, "ok");
  EXPECT_EQ(result.workpackages[1].status, "skipped");
  EXPECT_EQ(result.workpackages[1].analysed.at("status"), "skipped");
  EXPECT_EQ(result.workpackages[1].analysed.at("skip_reason"),
            "provably cannot run");
  EXPECT_TRUE(result.workpackages[1].outputs.empty());
}

}  // namespace
}  // namespace caraml::check
