#include <gtest/gtest.h>

#include "models/gpt_cost.hpp"
#include "models/resnet_cost.hpp"
#include "util/error.hpp"

namespace caraml::models {
namespace {

// --- GPT parameter counts (the paper's model sizes) ----------------------------

TEST(GptConfig, Gpt800mTransformerParamsMatchName) {
  const GptConfig c = GptConfig::gpt_800m();
  // 12 * 16 * 2048^2 = 805M transformer parameters — the "800M" of the paper.
  EXPECT_NEAR(c.transformer_parameters(), 805.4e6, 1.0e6);
}

TEST(GptConfig, Gpt117mIsGpt2Small) {
  const GptConfig c = GptConfig::gpt_117m();
  EXPECT_EQ(c.num_layers, 12);
  EXPECT_EQ(c.hidden_size, 768);
  // ~85M transformer + ~38.6M embedding ≈ 124M total.
  EXPECT_NEAR(c.total_parameters(), 124e6, 3e6);
}

TEST(GptConfig, Gpt13bMatchesName) {
  EXPECT_NEAR(GptConfig::gpt_13b().transformer_parameters(), 12.6e9, 0.2e9);
}

TEST(GptConfig, Gpt175bMatchesName) {
  EXPECT_NEAR(GptConfig::gpt_175b().transformer_parameters(), 174e9, 2e9);
}

TEST(GptConfig, EmbeddingParamsAreVocabTimesHidden) {
  const GptConfig c = GptConfig::gpt_800m();
  EXPECT_DOUBLE_EQ(c.embedding_parameters(), 50257.0 * 2048.0);
}

TEST(GptConfig, LearnedPositionsAddParams) {
  GptConfig c = GptConfig::gpt_800m();
  const double rotary = c.embedding_parameters();
  c.rotary_embeddings = false;
  EXPECT_DOUBLE_EQ(c.embedding_parameters() - rotary, 2048.0 * 2048.0);
}

// --- GPT FLOPs ------------------------------------------------------------------

TEST(GptConfig, FlopsPerTokenForwardMatchesMegatronFormula) {
  const GptConfig c = GptConfig::gpt_800m();
  // 24*l*h^2*(1 + s/6h + V/16lh) with l=16, h=2048, s=2048, V=50257.
  const double expected =
      24.0 * 16 * 2048.0 * 2048.0 *
      (1.0 + 2048.0 / (6.0 * 2048.0) + 50257.0 / (16.0 * 16 * 2048.0));
  EXPECT_NEAR(c.flops_per_token_forward(), expected, 1.0);
}

TEST(GptConfig, TrainFlopsAreThreeTimesForward) {
  const GptConfig c = GptConfig::gpt_800m();
  EXPECT_DOUBLE_EQ(c.flops_per_token_train(),
                   3.0 * c.flops_per_token_forward());
}

TEST(GptConfig, RecomputeAddsOneForward) {
  GptConfig c = GptConfig::gpt_800m();
  c.activation_recompute = true;
  EXPECT_DOUBLE_EQ(c.flops_per_token_train(),
                   4.0 * c.flops_per_token_forward());
}

TEST(GptConfig, IterationFlopsScaleWithBatch) {
  const GptConfig c = GptConfig::gpt_800m();
  EXPECT_DOUBLE_EQ(c.flops_per_iteration(64), 4.0 * c.flops_per_iteration(16));
  EXPECT_EQ(c.tokens_per_iteration(16), 16 * 2048);
  EXPECT_THROW(c.flops_per_iteration(0), Error);
}

TEST(GptConfig, RoughlySixNFlopsPerToken) {
  // Sanity: training FLOPs/token ≈ 6 * parameters (within ~35%).
  const GptConfig c = GptConfig::gpt_800m();
  const double six_n = 6.0 * c.transformer_parameters();
  EXPECT_GT(c.flops_per_token_train(), six_n);
  EXPECT_LT(c.flops_per_token_train(), 1.4 * six_n);
}

// --- GPT memory ------------------------------------------------------------------

TEST(GptMemory, MixedPrecisionAdamIs18BytesPerParam) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  memory.config.distributed_optimizer = false;
  EXPECT_NEAR(memory.model_state_bytes(),
              memory.config.total_parameters() * 18.0, 1.0);
}

TEST(GptMemory, DistributedOptimizerShardsState) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  memory.data_parallel = 4;
  const double sharded = memory.model_state_bytes();
  memory.data_parallel = 1;
  const double full = memory.model_state_bytes();
  EXPECT_LT(sharded, full);
  EXPECT_NEAR(sharded, memory.config.total_parameters() * (6.0 + 3.0), 1.0);
}

TEST(GptMemory, TensorParallelDividesState) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_13b();
  const double full = memory.model_state_bytes();
  memory.tensor_parallel = 4;
  EXPECT_NEAR(memory.model_state_bytes(), full / 4.0, full * 1e-9);
}

TEST(GptMemory, ActivationsScaleWithMicroBatch) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  memory.micro_batch = 4;
  const double four = memory.activation_bytes();
  memory.micro_batch = 8;
  EXPECT_NEAR(memory.activation_bytes(), 2.0 * four, four * 1e-9);
}

TEST(GptMemory, FlashAttentionRemovesQuadraticTerm) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  memory.micro_batch = 4;
  const double with_flash = memory.activation_bytes();
  memory.config.flash_attention = false;
  EXPECT_GT(memory.activation_bytes(), with_flash);
}

TEST(GptMemory, FullRecomputeShrinksActivations) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  memory.micro_batch = 4;
  const double normal = memory.activation_bytes();
  memory.config.activation_recompute = true;
  EXPECT_LT(memory.activation_bytes(), normal);
}

TEST(GptMemory, Gpt800mFitsOn40GbDevice) {
  // Paper §III-A1: the 800M model fits within a single device on both AMD
  // and NVIDIA hardware (micro-batch 4, distributed optimizer).
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  memory.micro_batch = 4;
  memory.data_parallel = 4;
  EXPECT_LT(memory.total_bytes(), 40e9);
}

TEST(GptMemory, Gpt13bNeedsModelParallelism) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_13b();
  memory.micro_batch = 1;
  EXPECT_GT(memory.total_bytes(), 96e9);  // does not fit one GH200
  memory.tensor_parallel = 4;
  EXPECT_LT(memory.total_bytes(), 96e9);  // fits with tp=4
}

TEST(GptMemory, GradientCommBytesShardWithModelParallel) {
  GptMemoryModel memory;
  memory.config = GptConfig::gpt_800m();
  const double full = memory.gradient_comm_bytes();
  memory.tensor_parallel = 2;
  memory.pipeline_parallel = 2;
  EXPECT_NEAR(memory.gradient_comm_bytes(), full / 4.0, 1.0);
}

// --- ResNet -----------------------------------------------------------------------

TEST(ResNet, ResNet50ParameterCountMatchesLiterature) {
  const ResNetModel model = ResNetModel::build(ResNetVariant::kResNet50);
  EXPECT_NEAR(model.total_parameters(), 25.56e6, 0.3e6);
}

TEST(ResNet, ResNet50ForwardFlopsMatchLiterature) {
  const ResNetModel model = ResNetModel::build(ResNetVariant::kResNet50);
  // ~4.1 GMACs = ~8.2 GFLOP forward at 224x224.
  EXPECT_NEAR(model.forward_flops_per_image(), 8.2e9, 0.4e9);
  EXPECT_DOUBLE_EQ(model.train_flops_per_image(),
                   3.0 * model.forward_flops_per_image());
}

TEST(ResNet, ResNet18ParameterCount) {
  const ResNetModel model = ResNetModel::build(ResNetVariant::kResNet18);
  EXPECT_NEAR(model.total_parameters(), 11.2e6, 0.5e6);
}

TEST(ResNet, ResNet34ParameterCount) {
  const ResNetModel model = ResNetModel::build(ResNetVariant::kResNet34);
  EXPECT_NEAR(model.total_parameters(), 21.3e6, 0.8e6);
}

TEST(ResNet, LayerTableShapesAreConsistent) {
  const ResNetModel model = ResNetModel::build(ResNetVariant::kResNet50);
  // Stem output 112, stages end at 7x7; final FC layer is 2048 -> 1000.
  EXPECT_EQ(model.layers.front().out_h, 112);
  const ConvLayerSpec& fc = model.layers.back();
  EXPECT_EQ(fc.name, "fc");
  EXPECT_EQ(fc.in_channels, 2048);
  EXPECT_EQ(fc.out_channels, 1000);
  EXPECT_EQ(fc.out_h, 1);
  // 53 convs + fc for ResNet50 (49 block convs + 4 downsamples + stem).
  EXPECT_EQ(model.layers.size(), 54u);
}

TEST(ResNet, DeeperVariantsCostMore) {
  const double r18 =
      ResNetModel::build(ResNetVariant::kResNet18).forward_flops_per_image();
  const double r34 =
      ResNetModel::build(ResNetVariant::kResNet34).forward_flops_per_image();
  const double r50 =
      ResNetModel::build(ResNetVariant::kResNet50).forward_flops_per_image();
  EXPECT_LT(r18, r34);
  EXPECT_LT(r34, r50);
}

TEST(ResNet, ActivationAndStateBytesPositive) {
  const ResNetModel model = ResNetModel::build(ResNetVariant::kResNet50);
  EXPECT_GT(model.activation_bytes_per_image(), 10e6);
  EXPECT_LT(model.activation_bytes_per_image(), 100e6);
  EXPECT_NEAR(model.model_state_bytes(), model.total_parameters() * 14.0, 1.0);
  EXPECT_DOUBLE_EQ(model.gradient_comm_bytes(),
                   model.total_parameters() * 2.0);
  EXPECT_DOUBLE_EQ(model.input_bytes_per_image(), 3.0 * 224 * 224);
}

TEST(ResNet, SmallImageVariant) {
  const ResNetModel model =
      ResNetModel::build(ResNetVariant::kResNet18, /*image_size=*/32);
  EXPECT_LT(model.forward_flops_per_image(),
            ResNetModel::build(ResNetVariant::kResNet18).forward_flops_per_image());
  EXPECT_THROW(ResNetModel::build(ResNetVariant::kResNet18, 16), Error);
}

TEST(ResNet, VariantNames) {
  EXPECT_EQ(resnet_variant_name(ResNetVariant::kResNet50), "ResNet50");
  EXPECT_EQ(resnet_variant_name(ResNetVariant::kResNet18), "ResNet18");
}

struct FlopCase {
  ResNetVariant variant;
  double min_flops, max_flops;
};
class ResNetFlops : public ::testing::TestWithParam<FlopCase> {};
TEST_P(ResNetFlops, ForwardFlopsInRange) {
  const ResNetModel model = ResNetModel::build(GetParam().variant);
  EXPECT_GE(model.forward_flops_per_image(), GetParam().min_flops);
  EXPECT_LE(model.forward_flops_per_image(), GetParam().max_flops);
}
INSTANTIATE_TEST_SUITE_P(
    Models, ResNetFlops,
    ::testing::Values(FlopCase{ResNetVariant::kResNet18, 3.0e9, 4.2e9},
                      FlopCase{ResNetVariant::kResNet34, 6.5e9, 8.0e9},
                      FlopCase{ResNetVariant::kResNet50, 7.8e9, 8.6e9}));

}  // namespace
}  // namespace caraml::models
