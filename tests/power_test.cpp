#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "power/clock.hpp"
#include "power/methods_host.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "topo/specs.hpp"
#include "util/error.hpp"

namespace caraml::power {
namespace {

sim::PowerTrace square_wave_trace(double busy_watts_util, double horizon) {
  auto device = topo::make_a100_sxm4();
  std::vector<sim::BusyInterval> intervals;
  for (double t = 0.0; t + 1.0 <= horizon; t += 2.0) {
    intervals.push_back(sim::BusyInterval{t, t + 1.0, busy_watts_util, 0});
  }
  return sim::PowerTrace(device, intervals, horizon);
}

// --- clocks ----------------------------------------------------------------------

TEST(Clock, WallClockAdvances) {
  WallClock clock;
  const double t0 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(clock.now(), t0);
}

TEST(Clock, ScaledClockRunsFaster) {
  ScaledClock fast(1000.0);
  WallClock wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(fast.now(), wall.now());
  EXPECT_DOUBLE_EQ(fast.speed(), 1000.0);
}

// --- trapezoid integration ----------------------------------------------------------

TEST(Integration, ConstantPower) {
  const std::vector<double> times = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> watts = {100.0, 100.0, 100.0, 100.0};
  EXPECT_NEAR(integrate_trapezoid_joules(times, watts), 300.0, 1e-9);
}

TEST(Integration, LinearRamp) {
  const std::vector<double> times = {0.0, 2.0};
  const std::vector<double> watts = {0.0, 100.0};
  EXPECT_NEAR(integrate_trapezoid_joules(times, watts), 100.0, 1e-9);
}

TEST(Integration, EmptyAndSingleSample) {
  EXPECT_DOUBLE_EQ(integrate_trapezoid_joules({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(integrate_trapezoid_joules({1.0}, {50.0}), 0.0);
}

TEST(Integration, MismatchedLengthsThrow) {
  EXPECT_THROW(integrate_trapezoid_joules({0.0, 1.0}, {5.0}), Error);
}

TEST(Integration, DecreasingTimestampsThrow) {
  EXPECT_THROW(integrate_trapezoid_joules({1.0, 0.0}, {5.0, 5.0}), Error);
}

class SyntheticIntegration : public ::testing::TestWithParam<double> {};
TEST_P(SyntheticIntegration, DenseTrapezoidMatchesClosedForm) {
  // Property: for the sinusoidal synthetic method, dense trapezoid
  // integration converges to the analytic energy for any period.
  const double period = GetParam();
  SyntheticMethod method("c", 200.0, 80.0, period);
  std::vector<double> times, watts;
  const double horizon = 3.0 * period;
  for (double t = 0.0; t <= horizon; t += period / 500.0) {
    times.push_back(t);
    watts.push_back(method.sample(t)[0].watts);
  }
  const double numeric = integrate_trapezoid_joules(times, watts);
  const double exact = method.exact_energy_joules(times.back());
  EXPECT_NEAR(numeric, exact, exact * 1e-4);
}
INSTANTIATE_TEST_SUITE_P(Power, SyntheticIntegration,
                         ::testing::Values(0.5, 2.0, 10.0, 60.0));

// --- simulated methods -----------------------------------------------------------

TEST(TraceMethod, PynvmlChannelsAndValues) {
  auto method = make_pynvml_sim({square_wave_trace(0.4, 10.0),
                                 square_wave_trace(0.2, 10.0)});
  EXPECT_EQ(method->name(), "pynvml");
  const auto channels = method->channels();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0], "gpu0");
  EXPECT_EQ(channels[1], "gpu1");
  const auto readings = method->sample(0.5);  // inside a busy interval
  EXPECT_GT(readings[0].watts, readings[1].watts);
}

TEST(TraceMethod, RocmAndGcipuinfoNaming) {
  EXPECT_EQ(make_rocm_smi_sim({square_wave_trace(0.3, 4.0)})->channels()[0],
            "card0");
  EXPECT_EQ(make_gcipuinfo_sim({square_wave_trace(0.3, 4.0)})->channels()[0],
            "ipu0");
}

TEST(TraceMethod, ChannelTraceCountMismatchThrows) {
  EXPECT_THROW(TraceMethod("x", {"a", "b"}, {square_wave_trace(0.3, 4.0)}),
               Error);
}

TEST(GraceHopperMethod, ReportsModuleAndGraceRails) {
  GraceHopperSimMethod method({square_wave_trace(0.3, 4.0)},
                              /*grace_fraction=*/0.2);
  const auto channels = method.channels();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0], "module0");
  EXPECT_EQ(channels[1], "grace0");
  const auto readings = method.sample(0.5);
  EXPECT_NEAR(readings[1].watts, readings[0].watts * 0.2, 1e-9);
}

TEST(GraceHopperMethod, InvalidFractionThrows) {
  EXPECT_THROW(
      GraceHopperSimMethod({square_wave_trace(0.3, 4.0)}, 1.5), Error);
}

TEST(SyntheticMethod, OscillatesAroundBase) {
  SyntheticMethod method("c", 150.0, 50.0, 4.0);
  EXPECT_NEAR(method.sample(0.0)[0].watts, 150.0, 1e-9);
  EXPECT_NEAR(method.sample(1.0)[0].watts, 200.0, 1e-9);  // peak at T/4
  EXPECT_NEAR(method.sample(3.0)[0].watts, 100.0, 1e-9);  // trough at 3T/4
}

// --- host methods -----------------------------------------------------------------

TEST(ProcStatMethod, AvailableOnLinuxAndReturnsSaneValues) {
  ProcStatMethod method(200.0, 40.0);
  if (!method.available()) GTEST_SKIP() << "/proc/stat not readable";
  method.sample(0.0);  // first sample establishes the baseline
  const auto readings = method.sample(0.1);
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_GE(readings[0].watts, 40.0 - 1e-9);
  EXPECT_LE(readings[0].watts, 200.0 + 1e-9);
}

TEST(ProcStatMethod, ParsesSyntheticStatFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "caraml_fake_stat";
  {
    std::ofstream out(path);
    out << "cpu 100 0 100 800 0 0 0 0 0 0\n";
  }
  ProcStatMethod method(200.0, 40.0, path.string());
  EXPECT_TRUE(method.available());
  method.sample(0.0);
  {
    std::ofstream out(path);
    // +200 busy, +0 idle since the last sample -> 100% busy.
    out << "cpu 300 0 100 800 0 0 0 0 0 0\n";
  }
  const auto readings = method.sample(1.0);
  EXPECT_NEAR(readings[0].watts, 200.0, 1e-6);
  std::filesystem::remove(path);
}

TEST(ProcStatMethod, MissingFileUnavailable) {
  ProcStatMethod method(200.0, 40.0, "/nonexistent/stat");
  EXPECT_FALSE(method.available());
}

TEST(HwmonMethod, ParsesSyntheticHwmonTree) {
  namespace fs = std::filesystem;
  const auto root = fs::temp_directory_path() / "caraml_hwmon";
  fs::remove_all(root);
  fs::create_directories(root / "hwmon0");
  {
    std::ofstream(root / "hwmon0" / "name") << "grace_socket\n";
    std::ofstream(root / "hwmon0" / "power1_input") << "123456789\n";
    std::ofstream(root / "hwmon0" / "power1_label") << "Module Power\n";
    std::ofstream(root / "hwmon0" / "power2_input") << "4000000\n";
    std::ofstream(root / "hwmon0" / "temp1_input") << "42000\n";  // ignored
  }
  HwmonMethod method(root.string());
  ASSERT_TRUE(method.available());
  const auto channels = method.channels();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0], "grace_socket:Module Power");
  EXPECT_EQ(channels[1], "grace_socket:power2_input");
  const auto readings = method.sample(0.0);
  EXPECT_NEAR(readings[0].watts, 123.456789, 1e-9);  // microwatts -> watts
  EXPECT_NEAR(readings[1].watts, 4.0, 1e-9);
  fs::remove_all(root);
}

TEST(HwmonMethod, MissingTreeUnavailable) {
  HwmonMethod method("/nonexistent/hwmon");
  EXPECT_FALSE(method.available());
  EXPECT_TRUE(method.channels().empty());
}

TEST(RaplMethod, GracefullyHandlesMissingPowercap) {
  RaplMethod method("/nonexistent/powercap");
  EXPECT_FALSE(method.available());
  EXPECT_TRUE(method.channels().empty());
}

// --- PowerScope --------------------------------------------------------------------

TEST(PowerScope, CollectsSamplesAndStops) {
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 100.0, 0.0, 1.0)};
  PowerScope scope(methods, /*interval_ms=*/2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  scope.stop();
  EXPECT_GE(scope.num_samples(), 4u);
  EXPECT_GT(scope.duration(), 0.0);
  scope.stop();  // idempotent
}

TEST(PowerScope, ConstantPowerEnergyMatchesDuration) {
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 120.0, 0.0, 1.0)};
  PowerScope scope(methods, 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  scope.stop();
  const double wh = scope.channel_energy_wh("synthetic:c");
  const double expected = 120.0 * scope.duration() / 3600.0;
  EXPECT_NEAR(wh, expected, expected * 0.01);
}

TEST(PowerScope, DataFrameHasTimePlusChannelColumns) {
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("a", 100.0, 0.0, 1.0),
      std::make_shared<SyntheticMethod>("b", 50.0, 0.0, 1.0)};
  PowerScope scope(methods, 2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scope.stop();
  const auto frame = scope.df();
  ASSERT_EQ(frame.num_columns(), 3u);
  EXPECT_TRUE(frame.has_column("time"));
  EXPECT_TRUE(frame.has_column("synthetic:a"));
  EXPECT_TRUE(frame.has_column("synthetic:b"));
  EXPECT_GE(frame.num_rows(), 2u);
}

TEST(PowerScope, EnergyResultPerChannelAndAdditionalData) {
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("a", 100.0, 0.0, 1.0)};
  PowerScope scope(methods, 2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scope.stop();
  const auto result = scope.energy();
  ASSERT_EQ(result.energy.num_rows(), 1u);
  EXPECT_EQ(result.energy.column("channel").as_string(0), "synthetic:a");
  EXPECT_NEAR(result.energy.column("avg_watts").as_double(0), 100.0, 1.0);
  EXPECT_NEAR(result.energy.column("min_watts").as_double(0), 100.0, 1e-6);
  ASSERT_TRUE(result.additional.count("synthetic"));
  EXPECT_EQ(result.additional.at("synthetic").num_columns(), 2u);
}

TEST(PowerScope, ScaledClockReplaysSimulatedTrace) {
  // Replay a 10-simulated-second square wave in ~10 wall-ms.
  std::vector<MethodPtr> methods = {make_pynvml_sim({square_wave_trace(
      topo::make_a100_sxm4().util_at_tdp, 10.0)})};
  PowerScope scope(methods, 0.5,
                   std::make_shared<ScaledClock>(1000.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scope.stop();
  const auto frame = scope.df();
  const auto& column = frame.column("pynvml:gpu0");
  EXPECT_NEAR(column.max(), 400.0, 1.0);  // A100 TDP during busy
  EXPECT_NEAR(column.min(), 60.0, 1.0);   // idle during gaps
}

TEST(PowerScope, RequiresMethodsAndPositiveInterval) {
  EXPECT_THROW(PowerScope(std::vector<MethodPtr>{}, 10.0), Error);
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 1.0, 0.0, 1.0)};
  EXPECT_THROW(PowerScope(methods, 0.0), Error);
}

// --- fault isolation ---------------------------------------------------------------

/// Always-throwing method that counts how often the scope still calls it.
class ThrowingMethod : public Method {
 public:
  std::string name() const override { return "broken"; }
  std::vector<std::string> channels() const override { return {"x"}; }
  std::vector<Reading> sample(double) override {
    ++calls;
    throw Error("sensor unreadable");
  }
  int calls = 0;
};

TEST(PowerScope, ThrowingMethodIsQuarantinedHealthyMethodSurvives) {
  auto broken = std::make_shared<ThrowingMethod>();
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 100.0, 0.0, 1.0), broken};
  PowerScope scope(methods, 1.0, nullptr, /*quarantine_after_errors=*/3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  scope.stop();

  // Quarantined after exactly 3 consecutive errors, then never called again.
  EXPECT_EQ(broken->calls, 3);
  const auto diag = scope.diagnostics();
  EXPECT_EQ(diag.method_errors, 3);
  EXPECT_EQ(diag.methods_quarantined, 1);

  // Its columns are NaN; the healthy method's data and energy still export.
  const auto frame = scope.df();
  const auto& broken_column = frame.column("broken:x");
  for (std::size_t i = 0; i < frame.num_rows(); ++i) {
    EXPECT_TRUE(std::isnan(broken_column.as_double(i)));
  }
  EXPECT_TRUE(std::isnan(scope.channel_energy_wh("broken:x")));
  const double healthy_wh = scope.channel_energy_wh("synthetic:c");
  EXPECT_FALSE(std::isnan(healthy_wh));
  EXPECT_GT(healthy_wh, 0.0);

  bool found = false;
  for (const auto& method : scope.method_diagnostics()) {
    if (method.method != "broken") {
      EXPECT_EQ(method.errors, 0);
      continue;
    }
    found = true;
    EXPECT_TRUE(method.quarantined);
    EXPECT_EQ(method.errors, 3);
    EXPECT_NE(method.last_error.find("sensor unreadable"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(PowerScope, StopSurvivesThrowingMethodWithoutLosingOtherData) {
  // A long interval means the entry sample and stop()'s final sample are the
  // only rows — the shutdown path itself must isolate the throwing method.
  auto broken = std::make_shared<ThrowingMethod>();
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 80.0, 0.0, 1.0), broken};
  PowerScope scope(methods, 10000.0);
  EXPECT_NO_THROW(scope.stop());
  const auto frame = scope.df();
  ASSERT_GE(frame.num_rows(), 2u);
  const auto& healthy = frame.column("synthetic:c");
  for (std::size_t i = 0; i < frame.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(healthy.as_double(i), 80.0);
  }
  // The energy table still has a row per channel.
  EXPECT_EQ(scope.energy().energy.num_rows(), 2u);
}

TEST(FlakyMethod, ThrowsOnlyInsideOutageWindows) {
  FlakyMethod flaky(std::make_shared<SyntheticMethod>("c", 50.0, 0.0, 1.0),
                    {{2.0, 5.0}});
  EXPECT_EQ(flaky.sample(1.0).size(), 1u);
  EXPECT_THROW(flaky.sample(2.0), Error);
  EXPECT_THROW(flaky.sample(4.999), Error);
  EXPECT_EQ(flaky.sample(5.0).size(), 1u);
}

// --- export ------------------------------------------------------------------------

TEST(Export, WritesPowerAndEnergyCsvWithSuffix) {
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 100.0, 0.0, 1.0)};
  PowerScope scope(methods, 2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scope.stop();

  ::setenv("SLURM_PROCID", "3", 1);
  const auto dir = std::filesystem::temp_directory_path() / "caraml_export";
  std::filesystem::remove_all(dir);
  ExportOptions options;
  options.out_dir = dir.string();
  options.suffix = "_%q{SLURM_PROCID}";
  export_results(scope, options);
  EXPECT_TRUE(std::filesystem::exists(dir / "power_3.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir / "energy_3.csv"));

  const auto back =
      df::DataFrame::from_csv_file((dir / "energy_3.csv").string());
  EXPECT_EQ(back.column("channel").as_string(0), "synthetic:c");
  std::filesystem::remove_all(dir);
}

TEST(Export, RejectsUnsupportedFiletype) {
  std::vector<MethodPtr> methods = {
      std::make_shared<SyntheticMethod>("c", 100.0, 0.0, 1.0)};
  PowerScope scope(methods, 2.0);
  scope.stop();
  ExportOptions options;
  options.out_dir = std::filesystem::temp_directory_path().string();
  options.filetype = "h5";
  EXPECT_THROW(export_results(scope, options), InvalidArgument);
}

}  // namespace
}  // namespace caraml::power
