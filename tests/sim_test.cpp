#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/memory.hpp"
#include "sim/power_model.hpp"
#include "topo/specs.hpp"
#include "util/error.hpp"

namespace caraml::sim {
namespace {

// --- task graph engine -----------------------------------------------------------

TEST(TaskGraph, SingleTask) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  const TaskId task = graph.add_task(device, 2.5);
  EXPECT_DOUBLE_EQ(graph.run(), 2.5);
  EXPECT_DOUBLE_EQ(graph.start_time(task), 0.0);
  EXPECT_DOUBLE_EQ(graph.finish_time(task), 2.5);
}

TEST(TaskGraph, ChainSerializesOnDependencies) {
  TaskGraph graph;
  Resource* a = graph.add_resource("a");
  Resource* b = graph.add_resource("b");
  const TaskId first = graph.add_task(a, 1.0);
  const TaskId second = graph.add_task(b, 2.0);
  graph.add_dependency(first, second);
  EXPECT_DOUBLE_EQ(graph.run(), 3.0);
  EXPECT_DOUBLE_EQ(graph.start_time(second), 1.0);
}

TEST(TaskGraph, ResourceSerializesIndependentTasks) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  graph.add_task(device, 1.0);
  graph.add_task(device, 1.0);
  graph.add_task(device, 1.0);
  EXPECT_DOUBLE_EQ(graph.run(), 3.0);
  EXPECT_DOUBLE_EQ(device->busy_time(), 3.0);
}

TEST(TaskGraph, IndependentResourcesRunInParallel) {
  TaskGraph graph;
  Resource* a = graph.add_resource("a");
  Resource* b = graph.add_resource("b");
  graph.add_task(a, 3.0);
  graph.add_task(b, 2.0);
  EXPECT_DOUBLE_EQ(graph.run(), 3.0);
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph graph;
  Resource* a = graph.add_resource("a");
  Resource* b = graph.add_resource("b");
  Resource* c = graph.add_resource("c");
  const TaskId root = graph.add_task(a, 1.0);
  const TaskId left = graph.add_task(b, 2.0);
  const TaskId right = graph.add_task(c, 3.0);
  const TaskId join = graph.add_task(a, 1.0);
  graph.add_dependency(root, left);
  graph.add_dependency(root, right);
  graph.add_dependency(left, join);
  graph.add_dependency(right, join);
  EXPECT_DOUBLE_EQ(graph.run(), 5.0);  // 1 + max(2,3) + 1
}

TEST(TaskGraph, ReleaseTimeDelaysStart) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  const TaskId task = graph.add_task(device, 1.0, 1.0, "late", 5.0);
  graph.run();
  EXPECT_DOUBLE_EQ(graph.start_time(task), 5.0);
}

TEST(TaskGraph, FifoOrderPreserved) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  const TaskId first = graph.add_task(device, 1.0);
  const TaskId second = graph.add_task(device, 1.0);
  graph.run();
  EXPECT_LT(graph.start_time(first), graph.start_time(second));
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  const TaskId a = graph.add_task(device, 1.0);
  const TaskId b = graph.add_task(device, 1.0);
  graph.add_dependency(a, b);
  graph.add_dependency(b, a);
  EXPECT_THROW(graph.run(), Error);
}

TEST(TaskGraph, ChainHelper) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  std::vector<TaskId> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back(graph.add_task(device, 1.0));
  graph.add_chain(tasks);
  EXPECT_DOUBLE_EQ(graph.run(), 5.0);
}

TEST(TaskGraph, SelfDependencyRejected) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  const TaskId task = graph.add_task(device, 1.0);
  EXPECT_THROW(graph.add_dependency(task, task), Error);
}

TEST(TaskGraph, RunTwiceRejected) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  graph.add_task(device, 1.0);
  graph.run();
  EXPECT_THROW(graph.run(), Error);
}

TEST(TaskGraph, BusyIntervalsRecorded) {
  TaskGraph graph;
  Resource* device = graph.add_resource("dev");
  const TaskId a = graph.add_task(device, 1.0, 0.5);
  graph.add_task(device, 2.0, 0.9);
  graph.run();
  ASSERT_EQ(device->busy_intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(device->busy_intervals()[0].utilization, 0.5);
  EXPECT_DOUBLE_EQ(device->busy_intervals()[1].end, 3.0);
  EXPECT_EQ(device->busy_intervals()[0].task_index, a);
  EXPECT_DOUBLE_EQ(device->last_end(), 3.0);
}

TEST(TaskGraph, PipelineMakespanMatchesFormula) {
  // m micro-batches over s serial stages: makespan = (m + s - 1) * t.
  const int stages = 4, micro = 8;
  const double t = 0.5;
  TaskGraph graph;
  std::vector<Resource*> res;
  for (int s = 0; s < stages; ++s) res.push_back(graph.add_resource("s"));
  for (int m = 0; m < micro; ++m) {
    TaskId prev = kInvalidTask;
    for (int s = 0; s < stages; ++s) {
      const TaskId task = graph.add_task(res[static_cast<std::size_t>(s)], t);
      if (prev != kInvalidTask) graph.add_dependency(prev, task);
      prev = task;
    }
  }
  EXPECT_NEAR(graph.run(), (micro + stages - 1) * t, 1e-12);
}

class RandomDag : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDag, ScheduleRespectsAllInvariants) {
  // Property test: for random DAGs over random resources, the event engine
  // must produce a schedule where (a) every task starts after its
  // dependencies finish and its release time, (b) no resource serves two
  // tasks at once, (c) the makespan is the latest finish.
  caraml::Rng rng(GetParam());
  TaskGraph graph;
  const int num_resources = static_cast<int>(rng.uniform_int(1, 5));
  std::vector<Resource*> resources;
  for (int r = 0; r < num_resources; ++r) {
    resources.push_back(graph.add_resource("r" + std::to_string(r)));
  }
  const int num_tasks = static_cast<int>(rng.uniform_int(5, 60));
  std::vector<TaskId> tasks;
  std::vector<std::vector<TaskId>> deps(static_cast<std::size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    const double service = rng.uniform(0.01, 2.0);
    const double release = rng.next_double() < 0.2 ? rng.uniform(0.0, 3.0)
                                                   : 0.0;
    const TaskId id = graph.add_task(
        resources[static_cast<std::size_t>(
            rng.uniform_int(0, num_resources - 1))],
        service, 0.5, "t" + std::to_string(t), release);
    // Random edges from earlier tasks only (guarantees acyclicity).
    for (int p = 0; p < t; ++p) {
      if (rng.next_double() < 0.15) {
        graph.add_dependency(tasks[static_cast<std::size_t>(p)], id);
        deps[static_cast<std::size_t>(t)].push_back(
            tasks[static_cast<std::size_t>(p)]);
      }
    }
    tasks.push_back(id);
  }

  const double makespan = graph.run();

  double latest = 0.0;
  for (int t = 0; t < num_tasks; ++t) {
    const TaskId id = tasks[static_cast<std::size_t>(t)];
    const double start = graph.start_time(id);
    ASSERT_GE(start, -1e-12) << "task " << t;
    for (TaskId d : deps[static_cast<std::size_t>(t)]) {
      ASSERT_GE(start, graph.finish_time(d) - 1e-9)
          << "task " << t << " started before its dependency";
    }
    latest = std::max(latest, graph.finish_time(id));
  }
  ASSERT_NEAR(makespan, latest, 1e-9);

  for (Resource* resource : resources) {
    const auto& intervals = resource->busy_intervals();
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      ASSERT_GE(intervals[i].start, intervals[i - 1].end - 1e-9)
          << "overlap on " << resource->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sim, RandomDag,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

// --- memory tracker ---------------------------------------------------------------

TEST(MemoryTracker, AllocatesWithinCapacity) {
  MemoryTracker tracker("dev", 100.0);
  tracker.allocate("weights", 60.0);
  tracker.allocate("activations", 30.0);
  EXPECT_DOUBLE_EQ(tracker.used(), 90.0);
  EXPECT_DOUBLE_EQ(tracker.available(), 10.0);
}

TEST(MemoryTracker, ThrowsOomWithBreakdown) {
  MemoryTracker tracker("A100", 100.0);
  tracker.allocate("weights", 80.0);
  try {
    tracker.allocate("activations", 40.0);
    FAIL() << "expected OOM";
  } catch (const OutOfMemory& oom) {
    const std::string what = oom.what();
    EXPECT_NE(what.find("A100"), std::string::npos);
    EXPECT_NE(what.find("activations"), std::string::npos);
    EXPECT_NE(what.find("weights"), std::string::npos);
  }
}

TEST(MemoryTracker, ReleaseFreesSpace) {
  MemoryTracker tracker("dev", 100.0);
  tracker.allocate("a", 70.0);
  tracker.release("a");
  EXPECT_DOUBLE_EQ(tracker.used(), 0.0);
  EXPECT_NO_THROW(tracker.allocate("b", 100.0));
  EXPECT_THROW(tracker.release("nope"), NotFound);
}

// --- power model ------------------------------------------------------------------

TEST(PowerModel, IdleAtZeroUtilization) {
  const auto device = topo::make_a100_sxm4();
  EXPECT_DOUBLE_EQ(busy_power_watts(device, 0.0), device.idle_watts);
}

TEST(PowerModel, TdpAtReferenceUtilization) {
  const auto device = topo::make_a100_sxm4();
  EXPECT_NEAR(busy_power_watts(device, device.util_at_tdp), device.tdp_watts,
              1e-9);
  // Clamped above the reference point.
  EXPECT_NEAR(busy_power_watts(device, 2.0 * device.util_at_tdp),
              device.tdp_watts, 1e-9);
}

TEST(PowerModel, MonotoneInUtilization) {
  const auto device = topo::make_gh200();
  double prev = 0.0;
  for (double u = 0.0; u <= 0.5; u += 0.01) {
    const double p = busy_power_watts(device, u);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(PowerModel, SuperlinearCurve) {
  // P(u/2) - idle < (P(u) - idle) / 2 for the DVFS-like exponent > 1.
  const auto device = topo::make_h100_sxm5();
  const double u = device.util_at_tdp;
  const double half = busy_power_watts(device, u / 2.0) - device.idle_watts;
  const double full = busy_power_watts(device, u) - device.idle_watts;
  EXPECT_LT(half, full / 2.0);
}

TEST(PowerTrace, ConstantBusyEnergy) {
  const auto device = topo::make_a100_sxm4();
  std::vector<BusyInterval> intervals = {{0.0, 10.0, device.util_at_tdp, 0}};
  PowerTrace trace(device, intervals, 10.0);
  EXPECT_NEAR(trace.energy_joules(0.0, 10.0), device.tdp_watts * 10.0, 1e-6);
  EXPECT_NEAR(trace.average_power(), device.tdp_watts, 1e-9);
}

TEST(PowerTrace, IdleGapsDrawIdlePower) {
  const auto device = topo::make_a100_sxm4();
  std::vector<BusyInterval> intervals = {{2.0, 4.0, device.util_at_tdp, 0}};
  PowerTrace trace(device, intervals, 10.0);
  EXPECT_DOUBLE_EQ(trace.power_at(1.0), device.idle_watts);
  EXPECT_NEAR(trace.power_at(3.0), device.tdp_watts, 1e-9);
  EXPECT_DOUBLE_EQ(trace.power_at(9.0), device.idle_watts);
  const double expected =
      device.tdp_watts * 2.0 + device.idle_watts * 8.0;
  EXPECT_NEAR(trace.energy_joules(0.0, 10.0), expected, 1e-6);
}

TEST(PowerTrace, PartialWindowIntegration) {
  const auto device = topo::make_a100_sxm4();
  std::vector<BusyInterval> intervals = {{0.0, 4.0, device.util_at_tdp, 0}};
  PowerTrace trace(device, intervals, 8.0);
  EXPECT_NEAR(trace.energy_joules(2.0, 6.0),
              device.tdp_watts * 2.0 + device.idle_watts * 2.0, 1e-6);
}

TEST(PowerTrace, BeyondHorizonIsIdle) {
  const auto device = topo::make_a100_sxm4();
  PowerTrace trace(device, {}, 5.0);
  EXPECT_DOUBLE_EQ(trace.power_at(100.0), device.idle_watts);
  EXPECT_NEAR(trace.energy_joules(0.0, 10.0), device.idle_watts * 10.0, 1e-6);
}

TEST(PowerTrace, EnergyWhConversion) {
  const auto device = topo::make_a100_sxm4();
  PowerTrace trace(device, {}, 3600.0);
  EXPECT_NEAR(trace.energy_wh(0.0, 3600.0), device.idle_watts, 1e-9);
}

TEST(PowerTrace, OverlappingIntervalsRejected) {
  const auto device = topo::make_a100_sxm4();
  std::vector<BusyInterval> bad = {{0.0, 2.0, 0.5, 0}, {1.0, 3.0, 0.5, 1}};
  EXPECT_THROW(PowerTrace(device, bad, 3.0), Error);
}

// --- cluster & collectives ----------------------------------------------------------

TEST(ClusterSim, RingAllReduceMatchesClosedForm) {
  const auto& node = topo::SystemRegistry::instance().by_tag("A100");
  ClusterSim cluster(node, 4, 1);
  const double bytes = 1.0e9;
  auto done = cluster.ring_all_reduce(bytes, {}, "ar");
  const double makespan = cluster.graph().run();
  // 2(n-1) steps of (latency + (bytes/n)/bw).
  const double step =
      node.peer_link.latency_s + bytes / 4.0 / node.peer_link.bandwidth;
  EXPECT_NEAR(makespan, 6.0 * step, step * 0.01);
  EXPECT_EQ(done.size(), 4u);
}

TEST(ClusterSim, SingleDeviceAllReduceIsFree) {
  const auto& node = topo::SystemRegistry::instance().by_tag("GH200");
  ClusterSim cluster(node, 1, 1);
  cluster.ring_all_reduce(1e9, {}, "ar");
  EXPECT_DOUBLE_EQ(cluster.graph().run(), 0.0);
}

TEST(ClusterSim, InterNodeHopsUseSlowFabric) {
  const auto& node = topo::SystemRegistry::instance().by_tag("JEDI");
  ClusterSim cluster(node, 4, 2);
  EXPECT_FALSE(cluster.hop_crosses_node(0));
  EXPECT_TRUE(cluster.hop_crosses_node(3));   // device 3 -> 4 crosses nodes
  EXPECT_TRUE(cluster.hop_crosses_node(7));   // wraparound
  const double intra = cluster.hop_time(0, 1e9);
  const double inter = cluster.hop_time(3, 1e9);
  EXPECT_GT(inter, intra);
}

TEST(ClusterSim, MultiNodeWithoutFabricRejected) {
  const auto& node = topo::SystemRegistry::instance().by_tag("GH200");
  EXPECT_THROW(ClusterSim(node, 1, 2), Error);
}

TEST(ClusterSim, BroadcastVisitsEveryDevice) {
  const auto& node = topo::SystemRegistry::instance().by_tag("A100");
  ClusterSim cluster(node, 4, 1);
  auto done = cluster.broadcast(1e6, kInvalidTask, "bc");
  const double makespan = cluster.graph().run();
  EXPECT_EQ(done.size(), 4u);
  // Sequential ring forward: 3 hops.
  const double hop = cluster.hop_time(0, 1e6);
  EXPECT_NEAR(makespan, 3.0 * hop, hop * 0.01);
}

TEST(ClusterSim, AllGatherForwardsNMinus1Rounds) {
  const auto& node = topo::SystemRegistry::instance().by_tag("A100");
  ClusterSim cluster(node, 4, 1);
  cluster.ring_all_gather(1e8, {}, "ag");
  const double makespan = cluster.graph().run();
  const double step = cluster.hop_time(0, 1e8);
  EXPECT_NEAR(makespan, 3.0 * step, step * 0.01);
}

TEST(ClusterSim, P2pSendOccupiesLink) {
  const auto& node = topo::SystemRegistry::instance().by_tag("GC200");
  ClusterSim cluster(node, 4, 1);
  const TaskId send = cluster.p2p_send(1, 256e6, kInvalidTask, "send");
  cluster.graph().run();
  EXPECT_NEAR(cluster.graph().finish_time(send),
              node.peer_link.latency_s + 256e6 / node.peer_link.bandwidth,
              1e-9);
}

TEST(ClusterSim, DeviceCountValidation) {
  const auto& node = topo::SystemRegistry::instance().by_tag("A100");
  EXPECT_THROW(ClusterSim(node, 8, 1), Error);  // node has only 4
  ClusterSim ok(node, -1, 1);
  EXPECT_EQ(ok.num_devices(), 4);
}

TEST(ClusterSim, HierarchicalFallsBackToRingOnOneNode) {
  const auto& node = topo::SystemRegistry::instance().by_tag("A100");
  ClusterSim flat(node, 4, 1);
  flat.ring_all_reduce(1e9, {}, "ar");
  const double ring_time = flat.graph().run();
  ClusterSim hier(node, 4, 1);
  hier.hierarchical_all_reduce(1e9, {}, "ar");
  EXPECT_NEAR(hier.graph().run(), ring_time, ring_time * 1e-9);
}

TEST(ClusterSim, HierarchicalBeatsFlatRingAcrossNodes) {
  // With many devices spanning nodes, the flat ring pays the IB latency on
  // every one of its 2(n-1) steps; the hierarchical version only rings the
  // node leaders over IB.
  const auto& node = topo::SystemRegistry::instance().by_tag("JEDI");
  const double bytes = 51.2e6;  // ResNet50 gradients
  ClusterSim flat(node, 4, 8);
  flat.ring_all_reduce(bytes, {}, "ar");
  const double flat_time = flat.graph().run();
  ClusterSim hier(node, 4, 8);
  hier.hierarchical_all_reduce(bytes, {}, "ar");
  const double hier_time = hier.graph().run();
  EXPECT_LT(hier_time, flat_time);
}

TEST(ClusterSim, HierarchicalReturnsOneTaskPerDevice) {
  const auto& node = topo::SystemRegistry::instance().by_tag("JEDI");
  ClusterSim cluster(node, 4, 2);
  auto done = cluster.hierarchical_all_reduce(1e8, {}, "ar");
  EXPECT_EQ(done.size(), 8u);
  EXPECT_GT(cluster.graph().run(), 0.0);
  for (TaskId t : done) {
    EXPECT_GT(cluster.graph().finish_time(t), 0.0);
  }
}

struct RingCase {
  int devices_per_node;
  int nodes;
};
class RingSweep : public ::testing::TestWithParam<RingCase> {};
TEST_P(RingSweep, AllReduceReturnsOneTaskPerDevice) {
  const auto& node = topo::SystemRegistry::instance().by_tag("JEDI");
  ClusterSim cluster(node, GetParam().devices_per_node, GetParam().nodes);
  auto done = cluster.ring_all_reduce(1e8, {}, "ar");
  EXPECT_EQ(done.size(),
            static_cast<std::size_t>(GetParam().devices_per_node *
                                     GetParam().nodes));
  EXPECT_GT(cluster.graph().run(), 0.0);
}
INSTANTIATE_TEST_SUITE_P(Sim, RingSweep,
                         ::testing::Values(RingCase{2, 1}, RingCase{4, 1},
                                           RingCase{4, 2}, RingCase{4, 4}));

}  // namespace
}  // namespace caraml::sim
