#include <gtest/gtest.h>

#include "jube/jube.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::jube {
namespace {

Benchmark two_param_benchmark() {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "params";
  set.parameters.push_back(Parameter{"system", {"A100", "GH200"}, ""});
  set.parameters.push_back(Parameter{"batch", {"16", "32", "64"}, ""});
  benchmark.add_parameter_set(set);
  return benchmark;
}

// --- parameter expansion --------------------------------------------------------

TEST(Jube, ExpansionIsCartesianProduct) {
  const auto contexts = two_param_benchmark().expand({});
  EXPECT_EQ(contexts.size(), 6u);
  // Order: outer loop over contexts, inner over values.
  EXPECT_EQ(contexts[0].at("system"), "A100");
  EXPECT_EQ(contexts[0].at("batch"), "16");
  EXPECT_EQ(contexts[5].at("system"), "GH200");
  EXPECT_EQ(contexts[5].at("batch"), "64");
}

TEST(Jube, TaggedParameterOnlyActiveWithTag) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"system", {"A100"}, ""});
  set.parameters.push_back(Parameter{"system", {"GH200"}, "GH200"});
  benchmark.add_parameter_set(set);

  EXPECT_EQ(benchmark.expand({})[0].at("system"), "A100");
  EXPECT_EQ(benchmark.expand({"GH200"})[0].at("system"), "GH200");
}

TEST(Jube, NegatedTag) {
  Parameter p{"x", {"1"}, "!synthetic"};
  EXPECT_TRUE(p.active({}));
  EXPECT_FALSE(p.active({"synthetic"}));
  EXPECT_TRUE(p.active({"other"}));
}

TEST(Jube, LaterSetOverridesEarlierParameter) {
  Benchmark benchmark("demo");
  ParameterSet base;
  base.name = "base";
  base.parameters.push_back(Parameter{"batch", {"16"}, ""});
  ParameterSet override_set;
  override_set.name = "override";
  override_set.parameters.push_back(Parameter{"batch", {"128"}, ""});
  benchmark.add_parameter_set(base);
  benchmark.add_parameter_set(override_set);
  const auto contexts = benchmark.expand({});
  ASSERT_EQ(contexts.size(), 1u);
  EXPECT_EQ(contexts[0].at("batch"), "128");
}

TEST(Jube, DependentParameterSubstitution) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"model", {"gpt"}, ""});
  set.parameters.push_back(Parameter{"run_name", {"${model}_${batch}"}, ""});
  set.parameters.push_back(Parameter{"batch", {"64"}, ""});
  benchmark.add_parameter_set(set);
  const auto contexts = benchmark.expand({});
  EXPECT_EQ(contexts[0].at("run_name"), "gpt_64");
}

TEST(Jube, EmptyValuesRejected) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {}, ""});
  benchmark.add_parameter_set(set);
  EXPECT_THROW(benchmark.expand({}), Error);
}

TEST(Jube, SubstituteContextIterates) {
  Context context{{"a", "${b}"}, {"b", "42"}};
  EXPECT_EQ(substitute_context("${a}", context), "42");
}

// --- steps -------------------------------------------------------------------------

TEST(Jube, StepsRunInDependencyOrder) {
  Benchmark benchmark = two_param_benchmark();
  benchmark.add_step(Step{"analyse", {"train"}, "record", ""});
  benchmark.add_step(Step{"train", {"download"}, "record", ""});
  benchmark.add_step(Step{"download", {}, "record", ""});

  std::vector<std::string> order;
  ActionRegistry registry;
  registry.register_action("record", [&](const Context& context) {
    order.push_back("ran");
    return "system=" + context.at("system");
  });

  const auto result = benchmark.run(registry, {});
  EXPECT_EQ(result.workpackages.size(), 6u);
  // All three steps ran for every workpackage.
  EXPECT_EQ(order.size(), 18u);
  for (const auto& wp : result.workpackages) {
    EXPECT_EQ(wp.outputs.size(), 3u);
  }
}

TEST(Jube, CyclicStepsRejected) {
  Benchmark benchmark("demo");
  benchmark.add_step(Step{"a", {"b"}, "x", ""});
  benchmark.add_step(Step{"b", {"a"}, "x", ""});
  ActionRegistry registry;
  registry.register_action("x", [](const Context&) { return ""; });
  EXPECT_THROW(benchmark.run(registry, {}), Error);
}

TEST(Jube, UnknownDependencyRejected) {
  Benchmark benchmark("demo");
  benchmark.add_step(Step{"a", {"ghost"}, "x", ""});
  ActionRegistry registry;
  registry.register_action("x", [](const Context&) { return ""; });
  EXPECT_THROW(benchmark.run(registry, {}), Error);
}

TEST(Jube, TaggedStepSkippedWithoutTag) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"always", {}, "noop", ""});
  benchmark.add_step(Step{"gc_only", {}, "noop", "GC200"});
  ActionRegistry registry;
  registry.register_action("noop", [](const Context&) { return "ok"; });

  const auto without = benchmark.run(registry, {});
  EXPECT_EQ(without.workpackages[0].outputs.size(), 1u);
  const auto with = benchmark.run(registry, {"GC200"});
  EXPECT_EQ(with.workpackages[0].outputs.size(), 2u);
}

TEST(Jube, MissingActionThrows) {
  Benchmark benchmark("demo");
  benchmark.add_step(Step{"a", {}, "unregistered", ""});
  ActionRegistry registry;
  EXPECT_THROW(benchmark.run(registry, {}), NotFound);
}

TEST(ActionRegistry, DuplicateRegistrationRejected) {
  ActionRegistry registry;
  registry.register_action("x", [](const Context&) { return ""; });
  EXPECT_TRUE(registry.has("x"));
  EXPECT_THROW(
      registry.register_action("x", [](const Context&) { return ""; }),
      Error);
}

// --- patterns & result table -----------------------------------------------------------

TEST(Jube, PatternExtractsLastMatch) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"train", {}, "emit", ""});
  benchmark.add_pattern(Pattern{"fom", R"(tokens_per_s:\s*([0-9.]+))"});
  ActionRegistry registry;
  registry.register_action("emit", [](const Context&) {
    return std::string(
        "warmup tokens_per_s: 100.5\nfinal tokens_per_s: 199.25\n");
  });
  const auto result = benchmark.run(registry, {});
  EXPECT_EQ(result.workpackages[0].analysed.at("fom"), "199.25");
}

TEST(Jube, ResultTableMixesParametersAndPatterns) {
  Benchmark benchmark = two_param_benchmark();
  benchmark.add_step(Step{"train", {}, "emit", ""});
  benchmark.add_pattern(Pattern{"fom", R"(fom=([0-9]+))"});
  ActionRegistry registry;
  registry.register_action("emit", [](const Context& context) {
    return "fom=" + context.at("batch") + "0\n";  // fom = batch * 10
  });
  const auto result = benchmark.run(registry, {});
  const TextTable table = result.table({"system", "batch", "fom"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("A100"), std::string::npos);
  EXPECT_NE(rendered.find("160"), std::string::npos);  // batch 16 -> fom 160
  EXPECT_NE(rendered.find("640"), std::string::npos);
}

TEST(Jube, ResultTableEmptyCellForUnknownColumn) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  ActionRegistry registry;
  const auto result = benchmark.run(registry, {});
  const TextTable table = result.table({"x", "nonexistent"});
  EXPECT_EQ(table.num_rows(), 1u);
}

// --- YAML loading ------------------------------------------------------------------------

TEST(Jube, FromYamlBuildsBenchmark) {
  const auto root = yaml::parse(
      "benchmark:\n"
      "  name: caraml-llm\n"
      "parametersets:\n"
      "  - name: systems\n"
      "    parameters:\n"
      "      - name: system\n"
      "        values: [A100, GH200]\n"
      "      - name: batch\n"
      "        values: \"16, 32\"\n"
      "      - name: system\n"
      "        tag: MI250\n"
      "        values: [MI250]\n"
      "steps:\n"
      "  - name: train\n"
      "    do: llm_train\n"
      "patterns:\n"
      "  - name: fom\n"
      "    regex: \"fom=([0-9]+)\"\n");
  Benchmark benchmark = Benchmark::from_yaml(root);
  EXPECT_EQ(benchmark.name(), "caraml-llm");

  // Without tag: 2 systems x 2 batches; with MI250 tag: override kicks in.
  EXPECT_EQ(benchmark.expand({}).size(), 4u);
  const auto mi250 = benchmark.expand({"MI250"});
  EXPECT_EQ(mi250.size(), 2u);
  EXPECT_EQ(mi250[0].at("system"), "MI250");

  ActionRegistry registry;
  registry.register_action("llm_train", [](const Context& context) {
    return "fom=" + context.at("batch") + "\n";
  });
  const auto result = benchmark.run(registry, {});
  EXPECT_EQ(result.workpackages.size(), 4u);
  EXPECT_EQ(result.workpackages[0].analysed.at("fom"), "16");
}

TEST(Jube, FromYamlMissingBenchmarkKeyThrows) {
  EXPECT_THROW(Benchmark::from_yaml(yaml::parse("steps:\n  - name: a\n")),
               Error);
}

TEST(Jube, FromYamlStepDependencies) {
  const auto root = yaml::parse(
      "benchmark:\n"
      "  name: x\n"
      "steps:\n"
      "  - name: train\n"
      "    do: act\n"
      "    depend: fetch\n"
      "  - name: fetch\n"
      "    do: act\n");
  Benchmark benchmark = Benchmark::from_yaml(root);
  std::vector<std::string> order;
  ActionRegistry registry;
  registry.register_action("act", [&](const Context&) {
    order.push_back("step");
    return "";
  });
  benchmark.run(registry, {});
  EXPECT_EQ(order.size(), 2u);
}

// --- analyse / substitution regressions -------------------------------------------

// The last-match reduce must see step outputs in *execution* order, not the
// std::map (alphabetical) order of wp.outputs: the dependent step here sorts
// alphabetically *before* its dependency, so the pre-fix concatenation made
// the dependency's stale value win.
TEST(Jube, AnalyseConcatenatesOutputsInExecutionOrder) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"z_train", {}, "train", ""});
  benchmark.add_step(Step{"a_report", {"z_train"}, "report", ""});
  benchmark.add_pattern(Pattern{"metric", R"(metric:\s*(\w+))"});

  ActionRegistry registry;
  registry.register_action("train",
                           [](const Context&) { return "metric: raw\n"; });
  registry.register_action("report",
                           [](const Context&) { return "metric: final\n"; });

  const auto result = benchmark.run(registry, {});
  ASSERT_EQ(result.workpackages.size(), 1u);
  EXPECT_EQ(result.workpackages[0].analysed.at("metric"), "final");
}

// A capture group that legitimately matches the empty string still counts as
// a match; the pre-fix engine dropped it (`if (!last.empty())`).
TEST(Jube, AnalyseKeepsEmptyCapture) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"run", {}, "emit", ""});
  benchmark.add_pattern(Pattern{"suffix", R"(suffix:(\w*))"});

  ActionRegistry registry;
  registry.register_action("emit", [](const Context&) { return "suffix:\n"; });

  const auto result = benchmark.run(registry, {});
  ASSERT_EQ(result.workpackages.size(), 1u);
  ASSERT_TRUE(result.workpackages[0].analysed.count("suffix"));
  EXPECT_EQ(result.workpackages[0].analysed.at("suffix"), "");
}

TEST(Jube, SubstituteContextCycleThrowsNamingParameters) {
  const Context context{{"a", "${b}"}, {"b", "${a}"}};
  try {
    substitute_context("${a}", context);
    FAIL() << "expected Error on parameter cycle";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("${a}"), std::string::npos) << what;
    EXPECT_NE(what.find("${b}"), std::string::npos) << what;
  }
}

TEST(Jube, SubstituteContextUnresolvedReferenceThrows) {
  const Context context{{"present", "1"}};
  try {
    substitute_context("run-${missing}", context);
    FAIL() << "expected Error on unresolved reference";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("${missing}"), std::string::npos)
        << e.what();
  }
}

TEST(Jube, SelfReferentialParameterThrows) {
  const Context context{{"a", "prefix-${a}"}};
  EXPECT_THROW(substitute_context("${a}", context), Error);
}

}  // namespace
}  // namespace caraml::jube
