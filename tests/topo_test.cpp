#include <gtest/gtest.h>

#include "topo/specs.hpp"
#include "util/error.hpp"

namespace caraml::topo {
namespace {

TEST(SystemRegistry, HasAllSevenPaperTags) {
  const auto& registry = SystemRegistry::instance();
  for (const char* tag :
       {"JEDI", "GH200", "H100", "WAIH100", "MI250", "GC200", "A100"}) {
    EXPECT_TRUE(registry.has_tag(tag)) << tag;
  }
  EXPECT_EQ(registry.tags().size(), 7u);
}

TEST(SystemRegistry, UnknownTagThrows) {
  EXPECT_THROW(SystemRegistry::instance().by_tag("TPUv4"), NotFound);
  EXPECT_FALSE(SystemRegistry::instance().has_tag("TPUv4"));
}

TEST(SystemRegistry, GpuTagsExcludeGraphcore) {
  for (const auto& tag : SystemRegistry::instance().gpu_tags()) {
    EXPECT_NE(tag, "GC200");
    EXPECT_EQ(SystemRegistry::instance().by_tag(tag).device.arch,
              ArchClass::kGpuSimd);
  }
}

// --- datasheet values from paper Fig. 1 --------------------------------------

TEST(DeviceSpecs, A100MatchesFig1) {
  const DeviceSpec d = make_a100_sxm4();
  EXPECT_EQ(d.compute_units, 108);
  EXPECT_DOUBLE_EQ(d.peak_fp16_flops, 312e12);
  EXPECT_DOUBLE_EQ(d.mem_capacity_bytes, 40e9);
  EXPECT_DOUBLE_EQ(d.tdp_watts, 400.0);
}

TEST(DeviceSpecs, H100PcieMatchesFig1) {
  const DeviceSpec d = make_h100_pcie();
  EXPECT_EQ(d.compute_units, 114);
  EXPECT_DOUBLE_EQ(d.peak_fp16_flops, 756e12);
  EXPECT_DOUBLE_EQ(d.mem_capacity_bytes, 80e9);
  EXPECT_DOUBLE_EQ(d.tdp_watts, 350.0);
}

TEST(DeviceSpecs, H100SxmMatchesFig1) {
  const DeviceSpec d = make_h100_sxm5();
  EXPECT_EQ(d.compute_units, 132);
  EXPECT_DOUBLE_EQ(d.peak_fp16_flops, 990e12);
  EXPECT_DOUBLE_EQ(d.mem_capacity_bytes, 94e9);
  EXPECT_DOUBLE_EQ(d.tdp_watts, 700.0);
}

TEST(DeviceSpecs, Gh200MatchesFig1) {
  const DeviceSpec d = make_gh200();
  EXPECT_EQ(d.compute_units, 132);
  EXPECT_DOUBLE_EQ(d.peak_fp16_flops, 990e12);
  EXPECT_DOUBLE_EQ(d.mem_capacity_bytes, 96e9);
  EXPECT_DOUBLE_EQ(d.mem_bandwidth, 4e12);  // 4 TB/s HBM3
}

TEST(DeviceSpecs, Mi250GcdIsHalfAnMcm) {
  const DeviceSpec d = make_mi250_gcd();
  EXPECT_EQ(d.compute_units, 104);                      // per GCD
  EXPECT_DOUBLE_EQ(d.peak_fp16_flops, 362.1e12 / 2.0);  // half of 362.1
  EXPECT_DOUBLE_EQ(d.tdp_watts, 280.0);                 // half of 560 W
  EXPECT_GT(d.mcm_shared_watts, 0.0);
}

TEST(DeviceSpecs, Gc200MatchesFig1) {
  const DeviceSpec d = make_gc200_ipu();
  EXPECT_EQ(d.compute_units, 1472);
  EXPECT_DOUBLE_EQ(d.peak_fp16_flops, 250e12);
  EXPECT_DOUBLE_EQ(d.sram_bytes, 900e6);  // 900 MB distributed SRAM
  EXPECT_DOUBLE_EQ(d.tdp_watts, 300.0);
  EXPECT_EQ(d.arch, ArchClass::kIpuMimd);
}

// --- Table I node rows ---------------------------------------------------------

TEST(NodeSpecs, JediHasFourGh200AndNvlinkC2c) {
  const NodeSpec& node = SystemRegistry::instance().by_tag("JEDI");
  EXPECT_EQ(node.devices_per_node, 4);
  EXPECT_EQ(node.host_link.name, "NVLink-C2C");
  EXPECT_DOUBLE_EQ(node.host_link.bandwidth, 900e9);
  EXPECT_DOUBLE_EQ(node.peer_link.bandwidth, 900e9);  // NVLink4
  EXPECT_GT(node.inter_node.bandwidth, 0.0);          // 4x IB NDR
}

TEST(NodeSpecs, Gh200JrdcIsSingleDevice) {
  const NodeSpec& node = SystemRegistry::instance().by_tag("GH200");
  EXPECT_EQ(node.devices_per_node, 1);
  EXPECT_DOUBLE_EQ(node.cpu_mem_bytes, 480e9);
  EXPECT_DOUBLE_EQ(node.inter_node.bandwidth, 0.0);
  // 4x the CPU memory per device of JEDI (480 GB vs 120 GB).
  const NodeSpec& jedi = SystemRegistry::instance().by_tag("JEDI");
  EXPECT_NEAR(node.cpu_mem_per_device() / jedi.cpu_mem_per_device(), 4.0,
              1e-9);
}

TEST(NodeSpecs, H100VariantsDifferInFormFactor) {
  const NodeSpec& pcie = SystemRegistry::instance().by_tag("H100");
  const NodeSpec& sxm = SystemRegistry::instance().by_tag("WAIH100");
  EXPECT_LT(pcie.device.tdp_watts, sxm.device.tdp_watts);
  EXPECT_LT(pcie.peer_link.bandwidth, sxm.peer_link.bandwidth);  // 600 vs 900
  EXPECT_EQ(pcie.host_link.name, "PCIe Gen 5");
}

TEST(NodeSpecs, Mi250NodeExposesEightGcds) {
  const NodeSpec& node = SystemRegistry::instance().by_tag("MI250");
  EXPECT_EQ(node.devices_per_node, 8);  // 4 MCMs, 8 logical GPUs
  EXPECT_EQ(node.peer_link.name, "Infinity Fabric");
  EXPECT_DOUBLE_EQ(node.peer_link.bandwidth, 500e9);
}

TEST(NodeSpecs, Gc200IsPod4) {
  const NodeSpec& node = SystemRegistry::instance().by_tag("GC200");
  EXPECT_EQ(node.devices_per_node, 4);
  EXPECT_EQ(node.peer_link.name, "IPU-Link");
  EXPECT_DOUBLE_EQ(node.peer_link.bandwidth, 256e9);
}

TEST(NodeSpecs, A100NodeUsesNvlink3) {
  const NodeSpec& node = SystemRegistry::instance().by_tag("A100");
  EXPECT_EQ(node.devices_per_node, 4);
  EXPECT_DOUBLE_EQ(node.peer_link.bandwidth, 600e9);
  EXPECT_EQ(node.cpu_cores, 128);  // 2x 64c EPYC 7742
}

// --- invariants over every system (property-style sweep) -----------------------

class AllNodes : public ::testing::TestWithParam<std::string> {};

TEST_P(AllNodes, PhysicallySensible) {
  const NodeSpec& node = SystemRegistry::instance().by_tag(GetParam());
  EXPECT_GT(node.devices_per_node, 0);
  EXPECT_GT(node.cpu_cores, 0);
  EXPECT_GT(node.cpu_mem_bytes, 0.0);
  EXPECT_GT(node.device.peak_fp16_flops, 0.0);
  EXPECT_GT(node.device.mem_capacity_bytes, 0.0);
  EXPECT_GT(node.device.tdp_watts, node.device.idle_watts);
  EXPECT_GT(node.device.idle_watts, 0.0);
  EXPECT_GT(node.device.max_mfu_gemm, 0.0);
  EXPECT_LE(node.device.max_mfu_gemm, 1.0);
  EXPECT_GT(node.device.max_mfu_conv, 0.0);
  EXPECT_LE(node.device.max_mfu_conv, 1.0);
  EXPECT_GT(node.device.util_at_tdp, 0.0);
  EXPECT_GE(node.max_nodes, 1);
  EXPECT_GT(node.host_link.bandwidth, 0.0);
}

TEST_P(AllNodes, MultiNodeSystemsHaveFabric) {
  const NodeSpec& node = SystemRegistry::instance().by_tag(GetParam());
  if (node.max_nodes > 1) {
    EXPECT_GT(node.inter_node.bandwidth, 0.0);
  }
}

TEST_P(AllNodes, VendorNameResolves) {
  const NodeSpec& node = SystemRegistry::instance().by_tag(GetParam());
  EXPECT_NE(vendor_name(node.device.vendor), "unknown");
}

INSTANTIATE_TEST_SUITE_P(Topo, AllNodes,
                         ::testing::Values("JEDI", "GH200", "H100", "WAIH100",
                                           "MI250", "GC200", "A100"));

}  // namespace
}  // namespace caraml::topo
