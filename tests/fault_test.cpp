#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/resilient.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault.hpp"
#include "jube/jube.hpp"
#include "telemetry/manifest.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace caraml::fault {
namespace {

// --- FaultPlan generation ---------------------------------------------------------

TEST(FaultPlan, GenerateIsDeterministic) {
  const FaultPlan a = FaultPlan::generate(42, 3.0, 60.0, 4);
  const FaultPlan b = FaultPlan::generate(42, 3.0, 60.0, 4);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_DOUBLE_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_DOUBLE_EQ(a.events[i].duration_s, b.events[i].duration_s);
    EXPECT_EQ(a.events[i].device, b.events[i].device);
    EXPECT_DOUBLE_EQ(a.events[i].severity, b.events[i].severity);
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a = FaultPlan::generate(1, 5.0, 120.0, 4);
  const FaultPlan b = FaultPlan::generate(2, 5.0, 120.0, 4);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultPlan, RateScalesEventCountAndZeroMeansEmpty) {
  EXPECT_TRUE(FaultPlan::generate(7, 0.0, 60.0, 4).empty());
  // A nonzero rate injects at least one fault even over a short horizon.
  EXPECT_GE(FaultPlan::generate(7, 0.01, 5.0, 4).events.size(), 1u);
  EXPECT_EQ(FaultPlan::generate(7, 3.0, 60.0, 4).events.size(), 3u);
  EXPECT_EQ(FaultPlan::generate(7, 3.0, 120.0, 4).events.size(), 6u);
}

TEST(FaultPlan, GeneratedEventsSortedAndInsideHorizon) {
  const FaultPlan plan = FaultPlan::generate(11, 10.0, 60.0, 8);
  double last = 0.0;
  for (const auto& event : plan.events) {
    EXPECT_GE(event.time_s, last);
    EXPECT_GE(event.time_s, 0.0);
    EXPECT_LE(event.time_s, plan.horizon_s);
    EXPECT_GE(event.device, 0);
    EXPECT_LT(event.device, 8);
    last = event.time_s;
  }
}

TEST(FaultPlan, GenerateRejectsBadArguments) {
  EXPECT_THROW(FaultPlan::generate(0, -1.0, 60.0, 4), Error);
  EXPECT_THROW(FaultPlan::generate(0, 1.0, 0.0, 4), Error);
  EXPECT_THROW(FaultPlan::generate(0, 1.0, 60.0, 0), Error);
}

// --- FaultPlan YAML ---------------------------------------------------------------

constexpr const char* kPlanYaml = R"(
fault_plan:
  seed: 9
  horizon_s: 100
  events:
    - {kind: device_failure, time_s: 12.5, device: 0}
    - {kind: thermal_throttle, time_s: 3, duration_s: 10, severity: 0.5}
    - {kind: link_degrade, time_s: 40, duration_s: 20, device: 1, severity: 0.25}
    - {kind: sensor_dropout, time_s: 60, duration_s: 30, device: 2}
)";

TEST(FaultPlan, FromYamlParsesEvents) {
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(kPlanYaml));
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.horizon_s, 100.0);
  ASSERT_EQ(plan.events.size(), 4u);
  // Events are sorted by time.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kThermalThrottle);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kDeviceFailure);
  EXPECT_EQ(plan.events[1].device, 0);
  EXPECT_EQ(plan.count(FaultKind::kLinkDegrade), 1u);
  EXPECT_EQ(plan.count(FaultKind::kSensorDropout), 1u);
}

TEST(FaultPlan, FromYamlUnknownKindThrows) {
  EXPECT_THROW(
      FaultPlan::from_yaml(yaml::parse(
          "events:\n  - {kind: gremlins, time_s: 1}\n")),
      InvalidArgument);
}

TEST(FaultPlan, FromYamlBadSeverityThrows) {
  EXPECT_THROW(
      FaultPlan::from_yaml(yaml::parse(
          "events:\n  - {kind: thermal_throttle, time_s: 1, severity: 1.5}\n")),
      Error);
}

TEST(FaultPlan, FromYamlHorizonDefaultsToLastEventEnd) {
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(
      "events:\n  - {kind: link_degrade, time_s: 10, duration_s: 5}\n"));
  EXPECT_DOUBLE_EQ(plan.horizon_s, 15.0);
}

// --- schedule queries -------------------------------------------------------------

TEST(FaultPlan, FailureTimesFiltersKindAndHorizon) {
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(kPlanYaml));
  const auto times = plan.failure_times();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 12.5);
}

TEST(FaultPlan, SensorOutagesRespectDeviceFilter) {
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(kPlanYaml));
  EXPECT_EQ(plan.sensor_outages(2).size(), 1u);
  EXPECT_TRUE(plan.sensor_outages(0).empty());
  // device -1 events hit every sensor.
  const FaultPlan broadcast = FaultPlan::from_yaml(yaml::parse(
      "events:\n  - {kind: sensor_dropout, time_s: 0, duration_s: 5}\n"));
  EXPECT_EQ(broadcast.sensor_outages(0).size(), 1u);
  EXPECT_EQ(broadcast.sensor_outages(3).size(), 1u);
}

TEST(FaultPlan, DerateAtCompoundsActiveThrottles) {
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(kPlanYaml));
  // Inside the throttle window (severity 0.5): times double, power halves.
  const Derate inside = plan.derate_at(-1, 5.0);
  EXPECT_DOUBLE_EQ(inside.time_factor, 2.0);
  EXPECT_DOUBLE_EQ(inside.power_factor, 0.5);
  // Outside any window: nominal.
  const Derate outside = plan.derate_at(-1, 50.0);
  EXPECT_DOUBLE_EQ(outside.time_factor, 1.0);
  EXPECT_DOUBLE_EQ(outside.power_factor, 1.0);
}

TEST(FaultPlan, AverageDerateIsTimeWeighted) {
  // Throttle (severity 0.5) covers 10 of 100 seconds: 0.9 + 0.1/0.5 = 1.1.
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(kPlanYaml));
  const Derate avg = plan.average_derate(-1, 0.0, 100.0);
  EXPECT_NEAR(avg.time_factor, 1.1, 1e-12);
  EXPECT_NEAR(avg.power_factor, 0.9 + 0.1 * 0.5, 1e-12);
}

TEST(FaultPlan, AverageLinkDerateFiltersDevice) {
  const FaultPlan plan = FaultPlan::from_yaml(yaml::parse(kPlanYaml));
  // Link degrade on device 1 only (severity 0.25 over 20 of 100 s).
  EXPECT_NEAR(plan.average_link_derate(1, 0.0, 100.0), 0.8 + 0.2 / 0.25,
              1e-12);
  EXPECT_DOUBLE_EQ(plan.average_link_derate(0, 0.0, 100.0), 1.0);
  // device -1 sees every device's windows.
  EXPECT_GT(plan.average_link_derate(-1, 0.0, 100.0), 1.0);
}

// --- RetryPolicy ------------------------------------------------------------------

TEST(RetryPolicy, FirstAttemptHasNoDelay) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.delay_s(1), 0.0);
}

TEST(RetryPolicy, DelayGrowsExponentiallyWithinJitterBand) {
  RetryPolicy policy;
  policy.base_delay_s = 1.0;
  policy.multiplier = 2.0;
  policy.jitter_frac = 0.1;
  policy.seed = 3;
  for (int attempt = 2; attempt <= 5; ++attempt) {
    const double nominal = std::pow(2.0, attempt - 2);
    const double delay = policy.delay_s(attempt);
    EXPECT_GE(delay, nominal * 0.9);
    EXPECT_LE(delay, nominal * 1.1);
    // Deterministic in (seed, attempt).
    EXPECT_DOUBLE_EQ(delay, policy.delay_s(attempt));
  }
}

TEST(RetryPolicy, JitterIsSeedDerived) {
  RetryPolicy a;
  a.jitter_frac = 0.5;
  RetryPolicy b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(a.delay_s(2), b.delay_s(2));
}

TEST(RetryPolicy, ValidateRejectsUnusablePolicies) {
  RetryPolicy policy;
  EXPECT_NO_THROW(policy.validate());

  RetryPolicy bad = policy;
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = policy;
  bad.base_delay_s = -1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = policy;
  bad.base_delay_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = policy;
  bad.multiplier = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = policy;
  bad.jitter_frac = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = policy;
  bad.max_delay_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(RetryPolicy, BackoffGrowthIsCappedAgainstOverflow) {
  RetryPolicy policy;
  policy.base_delay_s = 1.0;
  policy.multiplier = 10.0;
  policy.jitter_frac = 0.0;
  policy.max_delay_s = 30.0;
  EXPECT_DOUBLE_EQ(policy.delay_s(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(3), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay_s(4), 30.0);  // 100 clamped to the ceiling
  // Even an attempt count whose pow() overflows to inf stays at the ceiling.
  const double huge = policy.delay_s(5000);
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_DOUBLE_EQ(huge, 30.0);
}

// --- retry_with_backoff -----------------------------------------------------------

TEST(RetryWithBackoff, SucceedsAfterTransientErrors) {
  int calls = 0;
  std::vector<double> slept;
  RetryPolicy policy;
  policy.max_attempts = 5;
  const RetryOutcome outcome = retry_with_backoff(
      "flaky", policy,
      [&]() {
        if (++calls < 3) throw Error("transient");
      },
      [&](double s) { slept.push_back(s); });
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_GT(slept[1], slept[0]);  // exponential backoff
  EXPECT_NEAR(outcome.total_backoff_s, slept[0] + slept[1], 1e-12);
}

TEST(RetryWithBackoff, ExhaustedBudgetReportsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const RetryOutcome outcome = retry_with_backoff(
      "doomed", policy,
      [&]() {
        ++calls;
        throw Error("still broken #" + std::to_string(calls));
      },
      [](double) {});
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(outcome.last_error.find("still broken #3"), std::string::npos);
}

TEST(RetryWithBackoff, SameSeedSameBackoffSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.seed = 99;
  const auto run = [&]() {
    std::vector<double> slept;
    retry_with_backoff(
        "d", policy, []() { throw Error("x"); },
        [&](double s) { slept.push_back(s); });
    return slept;
  };
  EXPECT_EQ(run(), run());
}

// --- TrainingCheckpoint -----------------------------------------------------------

TEST(TrainingCheckpoint, JsonRoundTrip) {
  TrainingCheckpoint original;
  original.step = 40;
  original.samples_consumed = 81920;
  original.optimizer_clock_s = 12.75;
  original.sampler_state = 0xDEADBEEFULL;
  const TrainingCheckpoint parsed =
      TrainingCheckpoint::from_json(original.to_json());
  EXPECT_EQ(parsed.schema_version, original.schema_version);
  EXPECT_EQ(parsed.step, original.step);
  EXPECT_EQ(parsed.samples_consumed, original.samples_consumed);
  EXPECT_DOUBLE_EQ(parsed.optimizer_clock_s, original.optimizer_clock_s);
  EXPECT_EQ(parsed.sampler_state, original.sampler_state);
}

TEST(TrainingCheckpoint, SaveAndLoadThroughDisk) {
  const std::string path =
      testing::TempDir() + "fault_ckpt_dir/checkpoint.json";
  std::remove(path.c_str());
  TrainingCheckpoint checkpoint;
  checkpoint.step = 7;
  checkpoint.samples_consumed = 1792;
  checkpoint.save(path);
  const TrainingCheckpoint loaded = TrainingCheckpoint::load(path);
  EXPECT_EQ(loaded.step, 7);
  EXPECT_EQ(loaded.samples_consumed, 1792);
}

TEST(TrainingCheckpoint, MissingFileThrowsCorruptThrowsParseError) {
  EXPECT_THROW(TrainingCheckpoint::load("/nonexistent/ckpt.json"), Error);
  EXPECT_THROW(TrainingCheckpoint::from_json("not json at all"), ParseError);
}

TEST(TrainingCheckpoint, FullSamplerStateSurvivesRoundTrip) {
  // A splitmix64-derived state uses all 64 bits; a JSON double would lose
  // everything above 2^53.
  TrainingCheckpoint original;
  original.step = 8;
  original.sampler_state = 0xFFFFFFFFFFFFFFFFULL - 1;
  const TrainingCheckpoint parsed =
      TrainingCheckpoint::from_json(original.to_json());
  EXPECT_EQ(parsed.sampler_state, original.sampler_state);
}

// Corruption matrix: every damaged variant must be rejected with a located
// [fault/checkpoint-corrupt] ParseError — never crash, never parse silently.
class CheckpointCorruption : public ::testing::Test {
 protected:
  std::string path_;
  std::string bytes_;

  void SetUp() override {
    path_ = testing::TempDir() + "corrupt_ckpt/checkpoint.json";
    std::remove(path_.c_str());
    TrainingCheckpoint checkpoint;
    checkpoint.step = 16;
    checkpoint.samples_consumed = 4096;
    checkpoint.optimizer_clock_s = 3.5;
    checkpoint.sampler_state = 0xABCDEF0123456789ULL;
    checkpoint.save(path_);
    std::ifstream in(path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes_ = buffer.str();
  }

  void write(const std::string& text) {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }

  void expect_rejected() {
    try {
      TrainingCheckpoint::load(path_);
      FAIL() << "corrupted checkpoint parsed silently";
    } catch (const ParseError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(path_ + ":1:1: error:"), std::string::npos) << what;
      EXPECT_NE(what.find("[fault/checkpoint-corrupt]"), std::string::npos)
          << what;
    }
  }
};

TEST_F(CheckpointCorruption, BitFlipInPayloadBreaksFingerprint) {
  // Flip one digit inside the samples_consumed value.
  const auto pos = bytes_.find("4096");
  ASSERT_NE(pos, std::string::npos);
  bytes_[pos] = '5';
  write(bytes_);
  expect_rejected();
}

TEST_F(CheckpointCorruption, TruncatedFileIsNotValidJson) {
  write(bytes_.substr(0, bytes_.size() / 2));
  expect_rejected();
}

TEST_F(CheckpointCorruption, EmptyFileIsRejected) {
  write("");
  expect_rejected();
}

TEST_F(CheckpointCorruption, ValidJsonWrongSchemaIsRejected) {
  write("{\"schema_version\":99,\"step\":16}\n");
  expect_rejected();
}

TEST_F(CheckpointCorruption, MissingFieldIsSchemaViolation) {
  write("{\"schema_version\":2,\"step\":16}\n");
  expect_rejected();
}

TEST(TrainingCheckpoint, StaleTmpFileIsCleanedUpOnLoad) {
  const std::string path = testing::TempDir() + "stale_tmp/checkpoint.json";
  std::remove(path.c_str());
  TrainingCheckpoint checkpoint;
  checkpoint.step = 4;
  checkpoint.save(path);
  {
    // Simulate a crash between write and rename: a tmp file nobody promotes.
    std::ofstream tmp(path + ".tmp");
    tmp << "{\"partial";
  }
  const TrainingCheckpoint loaded = TrainingCheckpoint::load(path);
  EXPECT_EQ(loaded.step, 4);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

}  // namespace
}  // namespace caraml::fault

// ===========================================================================
// Resilient runners
// ===========================================================================

namespace caraml::core {
namespace {

fault::FaultPlan plan_from_yaml(const std::string& text) {
  return fault::FaultPlan::from_yaml(yaml::parse(text));
}

LlmRunConfig small_llm_config() {
  LlmRunConfig config;
  config.system_tag = "A100";
  config.global_batch = 256;
  config.micro_batch = 4;
  return config;
}

TEST(ResilientLlm, CleanPlanRunsOkAndMatchesBase) {
  ResilienceOptions options;
  options.plan.horizon_s = 60.0;  // no events
  options.steps = 20;
  const ResilientLlmResult result =
      run_llm_resilient(small_llm_config(), options);
  EXPECT_EQ(result.report.status, "ok");
  EXPECT_EQ(result.report.restarts, 0);
  EXPECT_EQ(result.report.steps_completed, 20);
  EXPECT_TRUE(result.report.completed());
  EXPECT_GT(result.effective_tokens_per_s_total, 0.0);
  // Checkpoint cost is the only overhead, so effective throughput is close
  // to (but below) the fault-free rate.
  EXPECT_LT(result.effective_tokens_per_s_total,
            result.base.tokens_per_s_total);
  EXPECT_GT(result.effective_tokens_per_s_total,
            0.8 * result.base.tokens_per_s_total);
}

TEST(ResilientLlm, SameSeedIsByteForByteReproducible) {
  ResilienceOptions options;
  options.plan = fault::FaultPlan::generate(1234, 6.0, 60.0, 4);
  options.retry.seed = options.plan.seed;
  options.steps = 30;
  const ResilientLlmResult a = run_llm_resilient(small_llm_config(), options);
  const ResilientLlmResult b = run_llm_resilient(small_llm_config(), options);
  EXPECT_EQ(a.report.fault_fingerprint, b.report.fault_fingerprint);
  EXPECT_EQ(a.report.status, b.report.status);
  EXPECT_EQ(a.report.restarts, b.report.restarts);
  EXPECT_EQ(a.report.steps_replayed, b.report.steps_replayed);
  EXPECT_EQ(a.report.incidents, b.report.incidents);
  EXPECT_DOUBLE_EQ(a.report.lost_time_s, b.report.lost_time_s);
  EXPECT_DOUBLE_EQ(a.report.wall_time_s, b.report.wall_time_s);
  EXPECT_DOUBLE_EQ(a.effective_tokens_per_s_total,
                   b.effective_tokens_per_s_total);
  EXPECT_DOUBLE_EQ(a.effective_energy_per_gpu_wh,
                   b.effective_energy_per_gpu_wh);
}

TEST(ResilientLlm, DeviceFailureRestartsFromCheckpoint) {
  ResilienceOptions options;
  options.plan = plan_from_yaml(
      "seed: 5\nhorizon_s: 10\nevents:\n"
      "  - {kind: device_failure, time_s: 0.001, device: 0}\n");
  options.retry.max_attempts = 3;
  options.steps = 10;
  options.checkpoint_every = 5;
  const ResilientLlmResult result =
      run_llm_resilient(small_llm_config(), options);
  EXPECT_EQ(result.report.status, "degraded");
  EXPECT_EQ(result.report.restarts, 1);
  EXPECT_EQ(result.report.steps_completed, 10);  // recovered, finished
  EXPECT_GT(result.report.lost_time_s, 0.0);
  ASSERT_FALSE(result.report.incidents.empty());
  EXPECT_NE(result.report.incidents[0].find("device failure"),
            std::string::npos);
}

TEST(ResilientLlm, ExhaustedRestartBudgetFailsWithPartialAccounting) {
  ResilienceOptions options;
  options.plan = plan_from_yaml(
      "horizon_s: 10\nevents:\n"
      "  - {kind: device_failure, time_s: 0.001}\n");
  options.retry.max_attempts = 1;  // zero restarts allowed
  options.steps = 10;
  const ResilientLlmResult result =
      run_llm_resilient(small_llm_config(), options);
  EXPECT_EQ(result.report.status, "failed");
  EXPECT_EQ(result.report.restarts, 0);
  EXPECT_LT(result.report.steps_completed, result.report.steps_total);
  EXPECT_FALSE(result.report.completed());
}

TEST(ResilientLlm, ThrottleWindowSlowsRunAndMarksDegraded) {
  ResilienceOptions clean;
  clean.plan.horizon_s = 60.0;
  clean.steps = 10;
  ResilienceOptions throttled = clean;
  throttled.plan = plan_from_yaml(
      "horizon_s: 60\nevents:\n"
      "  - {kind: thermal_throttle, time_s: 0, duration_s: 60, "
      "severity: 0.5}\n");
  const ResilientLlmResult base =
      run_llm_resilient(small_llm_config(), clean);
  const ResilientLlmResult slow =
      run_llm_resilient(small_llm_config(), throttled);
  EXPECT_EQ(slow.report.status, "degraded");
  EXPECT_LT(slow.effective_tokens_per_s_total,
            base.effective_tokens_per_s_total);
  // Power is capped too, so the degraded run draws less than nominal.
  EXPECT_LT(slow.base.avg_power_per_gpu_w, base.base.avg_power_per_gpu_w);
}

TEST(ResilientLlm, OomHalvesMicroBatchUntilFit) {
  LlmRunConfig config = small_llm_config();
  config.global_batch = 1024;
  config.micro_batch = 32;  // OOMs; 8 fits on the A100
  ResilienceOptions options;
  options.plan.horizon_s = 60.0;
  options.steps = 5;
  const ResilientLlmResult result = run_llm_resilient(config, options);
  EXPECT_EQ(result.report.oom_retries, 2);
  EXPECT_EQ(result.final_micro_batch, 8);
  EXPECT_EQ(result.report.status, "degraded");
  EXPECT_FALSE(result.base.oom);
  EXPECT_GT(result.effective_tokens_per_s_total, 0.0);
}

TEST(ResilientLlm, OomAtMicroBatchOneFails) {
  LlmRunConfig config;
  config.system_tag = "GH200";
  config.model = models::GptConfig::gpt_13b();
  config.global_batch = 16;
  config.micro_batch = 1;  // 13B never fits without model parallelism
  ResilienceOptions options;
  options.plan.horizon_s = 60.0;
  const ResilientLlmResult result = run_llm_resilient(config, options);
  EXPECT_EQ(result.report.status, "failed");
  EXPECT_TRUE(result.base.oom);
  EXPECT_EQ(result.final_micro_batch, 1);
}

TEST(ResilientLlm, PersistsCheckpointToDisk) {
  const std::string dir = testing::TempDir() + "fault_resilient_ckpt";
  ResilienceOptions options;
  options.plan.horizon_s = 60.0;
  options.steps = 20;
  options.checkpoint_every = 10;
  options.checkpoint_dir = dir;
  const ResilientLlmResult result =
      run_llm_resilient(small_llm_config(), options);
  EXPECT_GT(result.report.checkpoints_saved, 0);
  const fault::TrainingCheckpoint checkpoint =
      fault::TrainingCheckpoint::load(dir + "/checkpoint.json");
  EXPECT_EQ(checkpoint.step, 10);  // step 20 is the final step, no checkpoint
  EXPECT_EQ(checkpoint.samples_consumed,
            10 * small_llm_config().global_batch *
                small_llm_config().model.seq_length);
}

TEST(ResilientResnet, SameSeedReproducibleAndDeviceFailureRecovers) {
  ResnetRunConfig config;
  config.system_tag = "A100";
  config.global_batch = 256;
  config.devices = 4;
  ResilienceOptions options;
  options.plan = fault::FaultPlan::generate(77, 8.0, 60.0, 4);
  options.retry.seed = options.plan.seed;
  options.steps = 25;
  const ResilientResnetResult a = run_resnet_resilient(config, options);
  const ResilientResnetResult b = run_resnet_resilient(config, options);
  EXPECT_EQ(a.report.fault_fingerprint, b.report.fault_fingerprint);
  EXPECT_EQ(a.report.restarts, b.report.restarts);
  EXPECT_DOUBLE_EQ(a.effective_images_per_s_total,
                   b.effective_images_per_s_total);
  EXPECT_DOUBLE_EQ(a.effective_energy_per_device_wh,
                   b.effective_energy_per_device_wh);
  EXPECT_GT(a.effective_images_per_s_total, 0.0);
}

}  // namespace
}  // namespace caraml::core

// ===========================================================================
// JUBE resilient run
// ===========================================================================

namespace caraml::jube {
namespace {

RunOptions no_sleep_options() {
  RunOptions options;
  options.sleeper = [](double) {};
  return options;
}

Benchmark one_step_benchmark(const std::string& action = "work") {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"compute", {}, action, ""});
  return benchmark;
}

TEST(JubeResilient, TransientStepFailureIsRetried) {
  Benchmark benchmark = one_step_benchmark();
  benchmark.add_pattern(Pattern{"value", R"(value:\s*(\d+))"});
  ActionRegistry registry;
  int calls = 0;
  registry.register_action("work", [&](const Context&) -> std::string {
    if (++calls < 3) throw Error("spurious");
    return "value: 42";
  });
  const RunResult result = benchmark.run(registry, {}, no_sleep_options());
  ASSERT_EQ(result.workpackages.size(), 1u);
  const Workpackage& wp = result.workpackages[0];
  EXPECT_EQ(wp.status, "degraded");
  ASSERT_EQ(wp.step_outcomes.size(), 1u);
  EXPECT_EQ(wp.step_outcomes[0].status, "retried");
  EXPECT_EQ(wp.step_outcomes[0].attempts, 3);
  EXPECT_EQ(wp.analysed.at("value"), "42");
  EXPECT_EQ(wp.analysed.at("status"), "degraded");
}

TEST(JubeResilient, ExhaustedStepFailsAndDependentsSkip) {
  Benchmark benchmark("demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(Parameter{"x", {"1"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"broken", {}, "explode", ""});
  benchmark.add_step(Step{"downstream", {"broken"}, "never", ""});
  ActionRegistry registry;
  registry.register_action("explode", [](const Context&) -> std::string {
    throw Error("hardware on fire");
  });
  bool downstream_ran = false;
  registry.register_action("never", [&](const Context&) -> std::string {
    downstream_ran = true;
    return "";
  });
  const RunResult result = benchmark.run(registry, {}, no_sleep_options());
  const Workpackage& wp = result.workpackages[0];
  EXPECT_EQ(wp.status, "failed");
  EXPECT_FALSE(downstream_ran);
  ASSERT_EQ(wp.step_outcomes.size(), 2u);
  EXPECT_EQ(wp.step_outcomes[0].status, "failed");
  EXPECT_NE(wp.step_outcomes[0].error.find("hardware on fire"),
            std::string::npos);
  EXPECT_EQ(wp.step_outcomes[1].status, "skipped");
  EXPECT_EQ(wp.step_outcomes[1].attempts, 0);
  EXPECT_EQ(wp.analysed.at("status"), "failed");
}

TEST(JubeResilient, HarvestPartialFalseRethrows) {
  Benchmark benchmark = one_step_benchmark("explode");
  ActionRegistry registry;
  registry.register_action("explode", [](const Context&) -> std::string {
    throw Error("fatal");
  });
  RunOptions options = no_sleep_options();
  options.harvest_partial = false;
  EXPECT_THROW(benchmark.run(registry, {}, options), Error);
}

TEST(JubeResilient, StepTimeoutBoundsHangingAction) {
  Benchmark benchmark = one_step_benchmark("hang");
  ActionRegistry registry;
  registry.register_action("hang", [](const Context&) -> std::string {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    return "done";
  });
  RunOptions options = no_sleep_options();
  options.retry.max_attempts = 1;
  options.step_timeout_s = 0.02;
  const RunResult result = benchmark.run(registry, {}, options);
  const Workpackage& wp = result.workpackages[0];
  EXPECT_EQ(wp.status, "failed");
  ASSERT_EQ(wp.step_outcomes.size(), 1u);
  EXPECT_NE(wp.step_outcomes[0].error.find("timed out"), std::string::npos);
}

TEST(JubeResilient, CleanRunMatchesStrictOverload) {
  Benchmark benchmark = one_step_benchmark();
  benchmark.add_pattern(Pattern{"value", R"(value:\s*(\d+))"});
  ActionRegistry registry;
  registry.register_action(
      "work", [](const Context&) -> std::string { return "value: 7"; });
  const RunResult strict = benchmark.run(registry, {});
  const RunResult resilient = benchmark.run(registry, {}, no_sleep_options());
  ASSERT_EQ(resilient.workpackages.size(), strict.workpackages.size());
  EXPECT_EQ(resilient.workpackages[0].analysed.at("value"),
            strict.workpackages[0].analysed.at("value"));
  EXPECT_EQ(resilient.workpackages[0].status, "ok");
  EXPECT_EQ(resilient.workpackages[0].step_outcomes[0].status, "ok");
}

}  // namespace
}  // namespace caraml::jube

// ===========================================================================
// Manifest v2 fault provenance
// ===========================================================================

namespace caraml::telemetry {
namespace {

TEST(ManifestFault, V2RoundTripKeepsStatusAndFaultFields) {
  Manifest manifest;
  manifest.command = "llm";
  manifest.timestamp = "2026-08-06T00:00:00.000Z";
  manifest.system_tag = "A100";
  manifest.git_revision = "abc123";
  manifest.status = "degraded";
  manifest.fault_seed = 42;
  manifest.fault_fingerprint = "6776a78b0726274e";
  manifest.fault_events = 3;
  manifest.oom_retries = 2;
  manifest.restarts = 1;
  manifest.checkpoints = 4;
  manifest.steps_replayed = 5;
  manifest.method_errors = 6;
  manifest.methods_quarantined = 1;
  const Manifest parsed = Manifest::from_json_line(manifest.to_json_line());
  EXPECT_EQ(parsed.status, "degraded");
  EXPECT_EQ(parsed.fault_seed, 42u);
  EXPECT_EQ(parsed.fault_fingerprint, "6776a78b0726274e");
  EXPECT_EQ(parsed.fault_events, 3);
  EXPECT_EQ(parsed.oom_retries, 2);
  EXPECT_EQ(parsed.restarts, 1);
  EXPECT_EQ(parsed.checkpoints, 4);
  EXPECT_EQ(parsed.steps_replayed, 5);
  EXPECT_EQ(parsed.method_errors, 6);
  EXPECT_EQ(parsed.methods_quarantined, 1);
}

TEST(ManifestFault, V1LineStillParsesWithDefaults) {
  const std::string v1_line =
      R"({"schema_version":1,"command":"llm","timestamp":"t",)"
      R"("system_tag":"A100","git_revision":"r","rng_seed":0,"config":{},)"
      R"("sampling":{"power_samples":10,"overruns":0,"jitter_ms_mean":0.1,)"
      R"("jitter_ms_max":0.2},"results":{}})";
  const Manifest parsed = Manifest::from_json_line(v1_line);
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.status, "ok");
  EXPECT_EQ(parsed.fault_fingerprint, "");
  EXPECT_EQ(parsed.fault_events, 0);
  EXPECT_EQ(parsed.method_errors, 0);
}

}  // namespace
}  // namespace caraml::telemetry
