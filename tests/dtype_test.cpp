// Quantization-error suite for the bf16 / int8 GEMM paths.
//
// Methodology: naive per-element *relative* error is the wrong yardstick for
// a dot product — cancellation can make |ref| arbitrarily small while the
// roundoff is governed by the magnitudes that cancelled. Every kernel here is
// therefore checked against the standard forward-error bound of fp32
// accumulation,
//
//   bf16:  |c_ij - ref_ij| <= k * eps32 * sum_p |a_ip| |b_pj|
//   int8:  |c_ij - ref_ij| <= (nslices + 2) * eps32 * s_a * s_bj
//                              * (sum_p |qa_ip| |qb_pj| + 1)
//
// where ref is an fp64-accumulated oracle over the *rounded* (bf16-widened /
// quantized) inputs — the rounding of the inputs is the representation's
// contract, not kernel error, so the oracle sees the same inputs the kernel
// does. The int8 integer accumulation is exact; its fp32 error enters only
// through the per-KC-slice dequant chain, hence the nslices factor.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "tensor/dtype.hpp"
#include "tensor/fused.hpp"
#include "tensor/gemm.hpp"
#include "tensor/quant.hpp"
#include "tensor/reference.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::tensor {
namespace {

constexpr double kEps32 = 1.1920928955078125e-07;  // 2^-23

float bits_to_float(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// --- dtype tag ---------------------------------------------------------------

TEST(DType, NamesRoundTrip) {
  for (DType d : {DType::kF32, DType::kBf16, DType::kI8}) {
    const auto parsed = dtype_from_string(dtype_name(d));
    ASSERT_TRUE(parsed.has_value()) << dtype_name(d);
    EXPECT_EQ(*parsed, d);
  }
  EXPECT_FALSE(dtype_from_string("fp16").has_value());
  EXPECT_FALSE(dtype_from_string("").has_value());
  EXPECT_EQ(dtype_bytes(DType::kF32), 4u);
  EXPECT_EQ(dtype_bytes(DType::kBf16), 2u);
  EXPECT_EQ(dtype_bytes(DType::kI8), 1u);
}

// --- bf16 conversions --------------------------------------------------------

TEST(Bf16, RoundTripIsExactForRepresentableValues) {
  // Every value whose mantissa fits in 7 bits round-trips bit-exactly,
  // including the smallest normal (2^-126), bf16 subnormals, and infinities.
  const float representable[] = {0.0f,       -0.0f,      1.0f,
                                 -1.0f,      0.15625f,   -2.5f,
                                 1.984375f,
                                 bits_to_float(0x7f000000u),  // 2^127
                                 1.17549435e-38f,             // 2^-126
                                 bits_to_float(0x00010000u),  // bf16 subnormal
                                 std::numeric_limits<float>::infinity(),
                                 -std::numeric_limits<float>::infinity()};
  for (const float f : representable) {
    const float back = bf16_to_float(float_to_bf16(f));
    std::uint32_t fb, bb;
    std::memcpy(&fb, &f, 4);
    std::memcpy(&bb, &back, 4);
    EXPECT_EQ(fb, bb) << "value " << f;
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // 0x3f800000 = 1.0. Low half 0x8000 is an exact tie: round to even
  // (mantissa LSB of the bf16 stays 0 -> stays 1.0). 0x8001 rounds up.
  EXPECT_EQ(float_to_bf16(bits_to_float(0x3f808000u)), 0x3f80u);
  EXPECT_EQ(float_to_bf16(bits_to_float(0x3f808001u)), 0x3f81u);
  // 0x3f818000: tie with odd bf16 LSB -> rounds up to even 0x3f82.
  EXPECT_EQ(float_to_bf16(bits_to_float(0x3f818000u)), 0x3f82u);
  // Just below the tie rounds down.
  EXPECT_EQ(float_to_bf16(bits_to_float(0x3f817fffu)), 0x3f81u);
  // Rounding can carry into the exponent: 1.9999999 -> 2.0.
  EXPECT_EQ(float_to_bf16(1.9999999f), 0x4000u);
}

TEST(Bf16, NaNStaysNaNAndInfinityStaysExact) {
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(qnan))));
  // A NaN whose payload lives entirely in the truncated low 16 bits must not
  // collapse to Inf: the quiet bit is forced.
  const float sneaky_nan = bits_to_float(0x7f800001u);
  EXPECT_TRUE(std::isnan(bf16_to_float(float_to_bf16(sneaky_nan))));
  // Inf must stay Inf (no carry out of an all-ones exponent).
  EXPECT_EQ(float_to_bf16(std::numeric_limits<float>::infinity()), 0x7f80u);
}

TEST(Bf16, BulkConvertersMatchScalar) {
  Rng rng(42);
  Tensor x = Tensor::randn({1009}, rng);  // prime, exercises any tail path
  x[0] = std::numeric_limits<float>::quiet_NaN();
  x[1] = -0.0f;
  x[2] = 1e-41f;  // fp32 subnormal
  std::vector<bf16_t> bulk(static_cast<std::size_t>(x.numel()));
  float_to_bf16_n(x.data(), bulk.data(), x.numel());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_EQ(bulk[static_cast<std::size_t>(i)], float_to_bf16(x[i]))
        << "index " << i;
  }
  std::vector<float> widened(bulk.size());
  bf16_to_float_n(bulk.data(), widened.data(), x.numel());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float scalar = bf16_to_float(bulk[static_cast<std::size_t>(i)]);
    std::uint32_t wb, sb;
    std::memcpy(&wb, &widened[static_cast<std::size_t>(i)], 4);
    std::memcpy(&sb, &scalar, 4);
    ASSERT_EQ(wb, sb) << "index " << i;
  }
}

TEST(Bf16, TensorSidecarRoundTrips) {
  Rng rng(3);
  const Tensor x = Tensor::randn({7, 11}, rng);
  const Bf16Tensor bx = Bf16Tensor::from_float(x);
  EXPECT_EQ(bx.dim(0), 7);
  EXPECT_EQ(bx.numel(), 77);
  const Tensor widened = bx.to_float();
  // Widen(round(x)) differs from x by at most half a bf16 ULP = 2^-8 rel.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_NEAR(widened[i], x[i], std::fabs(x[i]) * 0x1p-8f + 1e-38f);
  }
  // And a second round trip is exact (idempotent rounding).
  const Bf16Tensor again = Bf16Tensor::from_float(widened);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_EQ(again.data()[i], bx.data()[i]);
  }
}

// --- quantization ------------------------------------------------------------

TEST(Quant, PerTensorRoundTripWithinHalfStep) {
  Rng rng(11);
  Tensor x = Tensor::randn({23, 17}, rng, 3.0f);
  const QuantizedTensor q = quantize_per_tensor(x);
  ASSERT_EQ(q.scales.size(), 1u);
  const Tensor back = dequantize(q);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_LE(std::fabs(back[i] - x[i]), 0.5f * q.scales[0] * 1.0001f)
        << "index " << i;
  }
}

TEST(Quant, AllZeroTensorQuantizesToZero) {
  const Tensor x({4, 4});
  const QuantizedTensor q = quantize_per_tensor(x);
  EXPECT_GT(q.scales[0], 0.0f);  // floored, no 0/0
  for (const std::int8_t v : q.data) EXPECT_EQ(v, 0);
  const Tensor back = dequantize(q);
  for (std::int64_t i = 0; i < back.numel(); ++i) EXPECT_EQ(back[i], 0.0f);
}

TEST(Quant, PerChannelIsolatesLargeMagnitudeRows) {
  // One row of magnitude ~1e4 next to rows of magnitude ~1: per-tensor
  // quantization would leave the small rows ~0.4 absolute error; per-channel
  // keeps each row's error within half its own step.
  Rng rng(5);
  Tensor w = Tensor::randn({4, 64}, rng);
  for (std::int64_t j = 0; j < 64; ++j) w[j] *= 1e4f;
  const QuantizedTensor q = quantize_per_channel_rows(w);
  ASSERT_TRUE(q.per_channel());
  ASSERT_EQ(q.scales.size(), 4u);
  const Tensor back = dequantize(q);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t j = 0; j < 64; ++j) {
      ASSERT_LE(std::fabs(back[r * 64 + j] - w[r * 64 + j]),
                0.5f * q.scales[static_cast<std::size_t>(r)] * 1.0001f)
          << "row " << r << " col " << j;
    }
  }
  // The small rows' scales must not be inflated by the big row.
  EXPECT_LT(q.scales[1], 0.1f);
  EXPECT_GT(q.scales[0], 10.0f);
}

TEST(Quant, CalibratedScaleSaturatesOutOfRangeValues) {
  const Tensor x({1, 4}, {0.5f, -0.5f, 10.0f, -10.0f});
  const QuantizedTensor q = quantize_with_scale(x, 1.0f / 127.0f);
  EXPECT_EQ(q.data[2], 127);   // 10.0 clamps
  EXPECT_EQ(q.data[3], -127);  // symmetric clamp, never -128
  EXPECT_NEAR(dequantize(q)[0], 0.5f, 0.5f / 127.0f);
}

// --- bf16 GEMM vs fp64 oracle ------------------------------------------------

enum class Variant { kNN, kNT, kTN };

// Checks one bf16 matmul variant against the fp64 oracle of the widened
// operands, element by element against the analytic bound.
void check_bf16(Variant variant, std::int64_t m, std::int64_t n,
                std::int64_t k, const Tensor& a_f32, const Tensor& b_f32) {
  const Bf16Tensor a = Bf16Tensor::from_float(a_f32);
  const Bf16Tensor b = Bf16Tensor::from_float(b_f32);
  const Tensor wa = a.to_float();
  const Tensor wb = b.to_float();
  Tensor c, ref;
  switch (variant) {
    case Variant::kNN:
      c = matmul_bf16(a, b);
      ref = reference::matmul(wa, wb);
      break;
    case Variant::kNT:
      c = matmul_nt_bf16(a, b);
      ref = reference::matmul_nt(wa, wb);
      break;
    case Variant::kTN:
      c = matmul_tn_bf16(a, b);
      ref = reference::matmul_tn(wa, wb);
      break;
  }
  ASSERT_EQ(c.dim(0), m);
  ASSERT_EQ(c.dim(1), n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double mag = 0.0;  // sum_p |a_ip| |b_pj| over the widened operands
      for (std::int64_t p = 0; p < k; ++p) {
        double av, bv;
        switch (variant) {
          case Variant::kNN:
            av = wa[i * k + p];
            bv = wb[p * n + j];
            break;
          case Variant::kNT:
            av = wa[i * k + p];
            bv = wb[j * k + p];
            break;
          case Variant::kTN:
            av = wa[p * m + i];
            bv = wb[p * n + j];
            break;
        }
        mag += std::fabs(av) * std::fabs(bv);
      }
      const double bound =
          static_cast<double>(std::max<std::int64_t>(k, 1)) * kEps32 * mag +
          1e-38;
      ASSERT_LE(std::fabs(static_cast<double>(c[i * n + j]) - ref[i * n + j]),
                bound)
          << "(" << i << "," << j << ") m=" << m << " n=" << n << " k=" << k;
    }
  }
}

struct GemmShape {
  std::int64_t m, n, k;
};

// Degenerate, prime, micro-tile-edge, packed, and skinny-streaming shapes.
const GemmShape kBf16Shapes[] = {
    {1, 1, 1},   {1, 7, 3},    {5, 1, 4},    {6, 16, 1},  {7, 17, 9},
    {17, 19, 23}, {12, 32, 64}, {37, 41, 29}, {73, 33, 70},  // > MC rows
    {8, 40, 600},                                            // skinny path
};

TEST(Bf16Gemm, MatchesOracleWithinAnalyticBound) {
  for (const GemmShape& s : kBf16Shapes) {
    Rng rng(static_cast<std::uint64_t>(s.m * 1000003 + s.n * 1009 + s.k));
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor bt = Tensor::randn({s.n, s.k}, rng);
    const Tensor at = Tensor::randn({s.k, s.m}, rng);
    check_bf16(Variant::kNN, s.m, s.n, s.k, a, b);
    check_bf16(Variant::kNT, s.m, s.n, s.k, a, bt);
    check_bf16(Variant::kTN, s.m, s.n, s.k, at, b);
  }
}

TEST(Bf16Gemm, SurvivesAdversarialMagnitudes) {
  // Exponents spanning ~20 decades plus subnormals: the bound (which scales
  // with the magnitudes) must still hold. The exponent range is capped so the
  // products stay inside fp32 (an fp32 GEMM overflows identically — that is
  // not a bf16 defect).
  const GemmShape s{23, 29, 31};
  Rng rng(99);
  Tensor a = Tensor::randn({s.m, s.k}, rng);
  Tensor b = Tensor::randn({s.k, s.n}, rng);
  Rng exp_rng(100);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] *= std::pow(10.0f, static_cast<float>(exp_rng.next_double() * 20 - 10));
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b[i] *= std::pow(10.0f, static_cast<float>(exp_rng.next_double() * 20 - 10));
  }
  a[0] = 1e-41f;  // subnormal operands
  b[0] = 1e-40f;
  check_bf16(Variant::kNN, s.m, s.n, s.k, a, b);
}

TEST(Bf16Gemm, PackedPathBitIdenticalToFp32OnRepresentableInputs) {
  // Shared-skeleton contract: for inputs already exactly representable in
  // bf16 the packed bf16 GEMM performs the identical fp32 arithmetic as the
  // fp32 GEMM, so the outputs must agree bit for bit (not just to tolerance).
  // m > kGemmSkinnyRows keeps the bf16 entry off the streaming path, and
  // m*n*k above kGemmDirectThreshold keeps both entries off the direct path.
  Rng rng(7);
  const std::int64_t m = 64, n = 40, k = 48;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    a[i] = bf16_to_float(float_to_bf16(a[i]));
  }
  for (std::int64_t i = 0; i < b.numel(); ++i) {
    b[i] = bf16_to_float(float_to_bf16(b[i]));
  }
  const Tensor c_f32 = matmul(a, b);
  const Tensor c_bf16 =
      matmul_bf16(Bf16Tensor::from_float(a), Bf16Tensor::from_float(b));
  for (std::int64_t i = 0; i < c_f32.numel(); ++i) {
    const float f32_val = c_f32[i], bf16_val = c_bf16[i];
    std::uint32_t fb, bb;
    std::memcpy(&fb, &f32_val, 4);
    std::memcpy(&bb, &bf16_val, 4);
    ASSERT_EQ(fb, bb) << "flat index " << i;
  }
}

// --- int8 GEMM vs exact-integer oracle --------------------------------------

void check_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              std::uint64_t seed, bool wild_scales) {
  Rng rng(seed);
  std::vector<std::int8_t> qa(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> qb(static_cast<std::size_t>(k * n));
  for (auto& v : qa) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.next_double() * 254) -
                                 127);
  }
  for (auto& v : qb) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.next_double() * 254) -
                                 127);
  }
  const float scale_a = 0.013f;
  std::vector<float> scale_b(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    // wild_scales stresses the per-channel dequant: scales spanning 1e-3..1e3.
    scale_b[static_cast<std::size_t>(j)] =
        wild_scales
            ? std::pow(10.0f, static_cast<float>(rng.next_double() * 6 - 3))
            : 0.02f + 0.001f * static_cast<float>(j % 7);
  }
  Tensor c({m, n});
  detail::gemm_i8(trans_b, m, n, k, qa.data(), k, qb.data(),
                  trans_b ? k : n, scale_a, scale_b.data(), c.data(), n);
  const Tensor ref =
      reference::matmul_i8(trans_b, m, n, k, qa.data(), qb.data(), scale_a,
                           scale_b.data());
  const std::int64_t nslices = (k + detail::kGemmKC - 1) / detail::kGemmKC;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double qmag = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const double bv = trans_b ? qb[static_cast<std::size_t>(j * k + p)]
                                  : qb[static_cast<std::size_t>(p * n + j)];
        qmag += std::fabs(static_cast<double>(
                    qa[static_cast<std::size_t>(i * k + p)])) *
                std::fabs(bv);
      }
      const double bound = static_cast<double>(nslices + 2) * kEps32 *
                           scale_a * scale_b[static_cast<std::size_t>(j)] *
                           (qmag + 1.0);
      ASSERT_LE(std::fabs(static_cast<double>(c[i * n + j]) - ref[i * n + j]),
                bound)
          << "(" << i << "," << j << ") m=" << m << " n=" << n << " k=" << k
          << " trans_b=" << trans_b;
    }
  }
}

TEST(Int8Gemm, MatchesOracleWithinAnalyticBound) {
  const GemmShape shapes[] = {
      {1, 1, 1},    {4, 5, 6},     {17, 19, 23},  {6, 16, 128},
      {33, 40, 25}, {8, 33, 400},  // skinny path
      {64, 96, 600},               // packed path, 3 KC slices
  };
  std::uint64_t seed = 1;
  for (const GemmShape& s : shapes) {
    for (const bool trans_b : {false, true}) {
      check_i8(trans_b, s.m, s.n, s.k, seed++, false);
    }
  }
}

TEST(Int8Gemm, PerChannelScaleStress) {
  check_i8(true, 29, 31, 300, 77, true);
  check_i8(false, 64, 80, 520, 78, true);
}

TEST(Int8Gemm, ZeroInnerDimensionLeavesOutputUntouched) {
  Tensor c = Tensor::full({3, 4}, 5.0f);
  const std::vector<float> scale_b(4, 1.0f);
  detail::gemm_i8(false, 3, 4, 0, nullptr, 0, nullptr, 4, 1.0f,
                  scale_b.data(), c.data(), 4);
  for (std::int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 5.0f);
}

// --- fused epilogue composition ---------------------------------------------

TEST(FusedDtype, Bf16BiasEpilogueMatchesPostHocAdd) {
  Rng rng(21);
  const Bf16Tensor x = Bf16Tensor::from_float(Tensor::randn({19, 33}, rng));
  const Bf16Tensor w = Bf16Tensor::from_float(Tensor::randn({27, 33}, rng));
  const Tensor bias = Tensor::randn({27}, rng);
  const Tensor fused_out = fused::linear_bf16(x, w, &bias);
  const Tensor plain = matmul_nt_bf16(x, w);
  for (std::int64_t i = 0; i < 19; ++i) {
    for (std::int64_t j = 0; j < 27; ++j) {
      // The epilogue adds the bias to the final fp32 accumulator — the same
      // fp32 add a post-hoc pass would do, so equality is exact.
      ASSERT_EQ(fused_out[i * 27 + j], plain[i * 27 + j] + bias[j]);
    }
  }
}

TEST(FusedDtype, Bf16GeluCapturesPreActivation) {
  Rng rng(22);
  const Bf16Tensor x = Bf16Tensor::from_float(Tensor::randn({11, 24}, rng));
  const Bf16Tensor w = Bf16Tensor::from_float(Tensor::randn({16, 24}, rng));
  const Tensor bias = Tensor::randn({16}, rng);
  Tensor pre;
  const Tensor out = fused::linear_gelu_bf16(x, w, &bias, &pre);
  const Tensor plain = matmul_nt_bf16(x, w);
  for (std::int64_t i = 0; i < pre.numel(); ++i) {
    ASSERT_EQ(pre[i], plain[i] + bias[i % 16]);
  }
  const Tensor expected = gelu(pre);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    ASSERT_NEAR(out[i], expected[i], 1e-6f) << "flat index " << i;
  }
}

TEST(FusedDtype, Int8LinearMatchesDequantReference) {
  Rng rng(23);
  const Tensor xf = Tensor::randn({13, 40}, rng);
  const Tensor wf = Tensor::randn({21, 40}, rng);
  const Tensor bias = Tensor::randn({21}, rng);
  const QuantizedTensor qx = quantize_per_tensor(xf);
  const QuantizedTensor qw = quantize_per_channel_rows(wf);
  const Tensor out = fused::linear_i8(qx, qw, &bias);
  const Tensor ref = reference::matmul_i8(
      true, 13, 21, 40, qx.data.data(), qw.data.data(), qx.scales[0],
      qw.scales.data());
  for (std::int64_t i = 0; i < 13; ++i) {
    for (std::int64_t j = 0; j < 21; ++j) {
      const double bound = 3.0 * kEps32 * qx.scales[0] *
                               qw.scales[static_cast<std::size_t>(j)] * 127.0 *
                               127.0 * 40.0 +
                           kEps32 * std::fabs(bias[j]) + 1e-30;
      ASSERT_NEAR(out[i * 21 + j], ref[i * 21 + j] + bias[j], bound);
    }
  }
}

TEST(FusedDtype, Int8RejectsMismatchedQuantizationModes) {
  Rng rng(24);
  const QuantizedTensor qx = quantize_per_tensor(Tensor::randn({4, 8}, rng));
  const QuantizedTensor qw_per_tensor =
      quantize_per_tensor(Tensor::randn({6, 8}, rng));
  EXPECT_THROW(fused::linear_i8(qx, qw_per_tensor, nullptr), Error);
  const QuantizedTensor qx_per_channel =
      quantize_per_channel_rows(Tensor::randn({4, 8}, rng));
  const QuantizedTensor qw =
      quantize_per_channel_rows(Tensor::randn({6, 8}, rng));
  EXPECT_THROW(fused::linear_i8(qx_per_channel, qw, nullptr), Error);
}

// --- determinism across thread counts ---------------------------------------

// Same subprocess pattern as FusedAttention.DeterministicAcrossThreadCounts:
// the pool reads CARAML_NUM_THREADS once at static init. Each child computes
// bf16 packed + skinny and int8 packed + skinny GEMMs and dumps raw bytes;
// the parent asserts the dumps are byte-identical. The kernels guarantee this
// by construction: packed paths split only the row dimension (each C element
// is accumulated by exactly one thread in a fixed KC-slice order), streaming
// paths give each thread a disjoint column range.
TEST(DtypeGemm, DeterministicAcrossThreadCounts) {
  const char* dump_path = std::getenv("CARAML_DTYPE_DUMP");
  if (dump_path != nullptr) {
    Rng rng(123);
    // bf16 packed: m crosses two MC chunks; skinny: m = 8 streaming rows.
    const Bf16Tensor a1 =
        Bf16Tensor::from_float(Tensor::randn({150, 130}, rng));
    const Bf16Tensor b1 =
        Bf16Tensor::from_float(Tensor::randn({130, 140}, rng));
    const Tensor c1 = matmul_bf16(a1, b1);
    const Bf16Tensor a2 = Bf16Tensor::from_float(Tensor::randn({8, 500}, rng));
    const Bf16Tensor b2 =
        Bf16Tensor::from_float(Tensor::randn({300, 500}, rng));
    const Tensor c2 = matmul_nt_bf16(a2, b2);
    // int8 packed (3 KC slices) and skinny.
    const QuantizedTensor qa1 =
        quantize_per_tensor(Tensor::randn({64, 600}, rng));
    const QuantizedTensor qb1 =
        quantize_per_channel_rows(Tensor::randn({96, 600}, rng));
    Tensor c3({64, 96});
    detail::gemm_i8(true, 64, 96, 600, qa1.data.data(), 600, qb1.data.data(),
                    600, qa1.scales[0], qb1.scales.data(), c3.data(), 96);
    const QuantizedTensor qa2 =
        quantize_per_tensor(Tensor::randn({4, 400}, rng));
    const QuantizedTensor qb2 =
        quantize_per_channel_rows(Tensor::randn({120, 400}, rng));
    Tensor c4({4, 120});
    detail::gemm_i8(true, 4, 120, 400, qa2.data.data(), 400, qb2.data.data(),
                    400, qa2.scales[0], qb2.scales.data(), c4.data(), 120);
    std::ofstream out(dump_path, std::ios::binary);
    const Tensor* outputs[] = {&c1, &c2, &c3, &c4};
    for (const Tensor* t : outputs) {
      out.write(reinterpret_cast<const char*>(t->data()),
                static_cast<std::streamsize>(t->numel() * sizeof(float)));
    }
    ASSERT_TRUE(out.good());
    return;
  }

  char exe[4096];
  const ssize_t exe_len = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  ASSERT_GT(exe_len, 0);
  exe[exe_len] = '\0';

  std::vector<std::string> dumps;
  for (const int threads : {1, 2, 8}) {
    const std::string path = ::testing::TempDir() + "caraml_dtype_dump_" +
                             std::to_string(threads) + ".bin";
    const std::string cmd =
        "CARAML_NUM_THREADS=" + std::to_string(threads) +
        " CARAML_DTYPE_DUMP=" + path + " '" + exe +
        "' --gtest_filter=DtypeGemm.DeterministicAcrossThreadCounts"
        " > /dev/null 2>&1";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "child failed: " << cmd;
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    dumps.emplace_back(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    ASSERT_FALSE(dumps.back().empty());
  }
  EXPECT_EQ(dumps[0], dumps[1]) << "1-thread and 2-thread outputs differ";
  EXPECT_EQ(dumps[0], dumps[2]) << "1-thread and 8-thread outputs differ";
}

}  // namespace
}  // namespace caraml::tensor
