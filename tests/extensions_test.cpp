// Tests for the extension modules: LR schedules, dropout, ZeRO-style
// distributed Adam, token files, chrome-trace export, jpwr CSV combining,
// and the inference benchmark.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/inference.hpp"
#include "data/synthetic.hpp"
#include "data/token_file.hpp"
#include "nn/dropout.hpp"
#include "nn/optim.hpp"
#include "nn/schedule.hpp"
#include "par/comm.hpp"
#include "par/distributed_optim.hpp"
#include "power/combine.hpp"
#include "sim/trace_export.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml {
namespace {

// --- LR schedules --------------------------------------------------------------

TEST(LrSchedule, ConstantIsConstant) {
  nn::ConstantLr schedule(0.01f);
  EXPECT_FLOAT_EQ(schedule.lr_at(0), 0.01f);
  EXPECT_FLOAT_EQ(schedule.lr_at(1000000), 0.01f);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  nn::WarmupCosineLr schedule(1.0f, 0.1f, 10, 100);
  EXPECT_NEAR(schedule.lr_at(0), 0.1f, 1e-6);   // (0+1)/10 of peak
  EXPECT_NEAR(schedule.lr_at(4), 0.5f, 1e-6);
  EXPECT_NEAR(schedule.lr_at(9), 1.0f, 1e-6);
}

TEST(LrSchedule, CosineDecaysToMinimum) {
  nn::WarmupCosineLr schedule(1.0f, 0.1f, 10, 110);
  EXPECT_NEAR(schedule.lr_at(10), 1.0f, 1e-5);          // decay start
  EXPECT_NEAR(schedule.lr_at(60), 0.55f, 1e-3);          // halfway
  EXPECT_NEAR(schedule.lr_at(110), 0.1f, 1e-5);          // end
  EXPECT_NEAR(schedule.lr_at(10000), 0.1f, 1e-6);        // flat after
}

TEST(LrSchedule, CosineIsMonotoneAfterWarmup) {
  nn::WarmupCosineLr schedule(3e-4f, 3e-5f, 100, 1000);
  float prev = schedule.lr_at(100);
  for (std::int64_t step = 101; step <= 1000; step += 7) {
    const float lr = schedule.lr_at(step);
    EXPECT_LE(lr, prev + 1e-9);
    prev = lr;
  }
}

TEST(LrSchedule, StepDecayBoundaries) {
  nn::StepDecayLr schedule(1.0f, 0.1f, {30, 60});
  EXPECT_FLOAT_EQ(schedule.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.lr_at(29), 1.0f);
  EXPECT_FLOAT_EQ(schedule.lr_at(30), 0.1f);
  EXPECT_NEAR(schedule.lr_at(60), 0.01f, 1e-8);
}

TEST(LrSchedule, InvalidConfigThrows) {
  EXPECT_THROW(nn::WarmupCosineLr(1.0f, 2.0f, 10, 100), Error);
  EXPECT_THROW(nn::WarmupCosineLr(1.0f, 0.1f, 100, 50), Error);
  EXPECT_THROW(nn::StepDecayLr(1.0f, 1.5f, {10}), Error);
  EXPECT_THROW(nn::StepDecayLr(1.0f, 0.5f, {20, 10}), Error);
}

// --- dropout -------------------------------------------------------------------

TEST(Dropout, EvalModeIsIdentity) {
  nn::Dropout dropout(0.5f, 1);
  dropout.eval();
  Rng rng(2);
  const nn::Tensor x = nn::Tensor::randn({4, 4}, rng);
  const nn::Tensor y = dropout.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
  const nn::Tensor g = nn::Tensor::ones(x.shape());
  const nn::Tensor dx = dropout.backward(g);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(dx[i], 1.0f);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  nn::Dropout dropout(0.5f, 3);
  const nn::Tensor x = nn::Tensor::ones({1000});
  const nn::Tensor y = dropout.forward(x);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
  // Expected value preserved (inverted dropout).
  EXPECT_NEAR(tensor::mean(y), 1.0f, 0.1f);
}

TEST(Dropout, BackwardUsesForwardMask) {
  nn::Dropout dropout(0.3f, 7);
  const nn::Tensor x = nn::Tensor::ones({64});
  const nn::Tensor y = dropout.forward(x);
  const nn::Tensor dx = dropout.backward(nn::Tensor::ones({64}));
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);  // same mask, same scaling
  }
}

TEST(Dropout, DeterministicPerSeed) {
  nn::Dropout a(0.5f, 42), b(0.5f, 42);
  const nn::Tensor x = nn::Tensor::ones({128});
  const nn::Tensor ya = a.forward(x);
  const nn::Tensor yb = b.forward(x);
  for (std::int64_t i = 0; i < 128; ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Dropout, InvalidProbabilityThrows) {
  EXPECT_THROW(nn::Dropout(1.0f, 1), Error);
  EXPECT_THROW(nn::Dropout(-0.1f, 1), Error);
}

// --- distributed Adam --------------------------------------------------------------

TEST(DistributedAdam, MatchesSerialAdamExactly) {
  // Property: with identical gradients on every rank, ZeRO-sharded Adam must
  // produce the same trajectory as serial Adam.
  const std::int64_t n = 13;  // deliberately not divisible by ranks
  std::vector<float> reference(static_cast<std::size_t>(n));
  {
    Rng rng(5);
    nn::Parameter w("w", nn::Tensor::randn({n}, rng));
    nn::Adam serial({&w}, 0.05f);
    for (int step = 0; step < 10; ++step) {
      serial.zero_grad();
      for (std::int64_t i = 0; i < n; ++i) {
        w.grad[i] = w.value[i] * 0.5f + static_cast<float>(i) * 0.01f;
      }
      serial.step();
    }
    for (std::int64_t i = 0; i < n; ++i) {
      reference[static_cast<std::size_t>(i)] = w.value[i];
    }
  }

  for (int ranks : {2, 3, 4}) {
    std::vector<std::vector<float>> results(static_cast<std::size_t>(ranks));
    par::DeviceGroup group(ranks);
    group.run([&](par::Communicator& comm) {
      Rng rng(5);  // identical init on every rank
      nn::Parameter w("w", nn::Tensor::randn({n}, rng));
      par::DistributedAdam optimizer({&w}, comm, 0.05f);
      for (int step = 0; step < 10; ++step) {
        optimizer.zero_grad();
        for (std::int64_t i = 0; i < n; ++i) {
          w.grad[i] = w.value[i] * 0.5f + static_cast<float>(i) * 0.01f;
        }
        optimizer.step();
      }
      auto& mine = results[static_cast<std::size_t>(comm.rank())];
      for (std::int64_t i = 0; i < n; ++i) mine.push_back(w.value[i]);
    });
    for (int r = 0; r < ranks; ++r) {
      for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(results[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(i)],
                    reference[static_cast<std::size_t>(i)], 1e-5f)
            << "ranks=" << ranks << " r=" << r << " i=" << i;
      }
    }
  }
}

TEST(DistributedAdam, ShardsOptimizerState) {
  par::DeviceGroup group(4);
  group.run([&](par::Communicator& comm) {
    Rng rng(1);
    nn::Parameter w("w", nn::Tensor::randn({100}, rng));
    par::DistributedAdam optimizer({&w}, comm, 0.01f);
    // Each rank holds ~1/4 of the m+v state: 2 * 25 floats.
    ASSERT_LE(optimizer.local_state_bytes(), 2 * 25 * 4);
    ASSERT_EQ(optimizer.total_parameters(), 100);
    ASSERT_LE(optimizer.shard_end() - optimizer.shard_begin(), 25);
  });
}

TEST(DistributedAdam, MultipleParameterTensors) {
  par::DeviceGroup group(2);
  group.run([&](par::Communicator& comm) {
    Rng rng(9);
    nn::Parameter a("a", nn::Tensor::randn({3, 2}, rng));
    nn::Parameter b("b", nn::Tensor::randn({5}, rng));
    par::DistributedAdam optimizer({&a, &b}, comm, 0.1f);
    ASSERT_EQ(optimizer.total_parameters(), 11);
    optimizer.zero_grad();
    for (std::int64_t i = 0; i < 6; ++i) a.grad[i] = 1.0f;
    for (std::int64_t i = 0; i < 5; ++i) b.grad[i] = 1.0f;
    optimizer.step();
    // First Adam step with constant gradient moves every weight by ~lr.
    ASSERT_NEAR(a.value[0], a.value[0], 0.0f);  // well-defined (no NaN)
    ASSERT_EQ(optimizer.step_count(), 1);
  });
}

// --- token files --------------------------------------------------------------------

TEST(TokenFile, RoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "caraml_tokens.bin").string();
  const std::vector<std::int32_t> tokens = {0, 1, 50256, 42, 7};
  data::save_token_file(path, tokens);
  EXPECT_EQ(data::load_token_file(path), tokens);
  std::filesystem::remove(path);
}

TEST(TokenFile, EmptyStreamRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "caraml_empty.bin").string();
  data::save_token_file(path, {});
  EXPECT_TRUE(data::load_token_file(path).empty());
  std::filesystem::remove(path);
}

TEST(TokenFile, RejectsBadMagicAndTruncation) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto bad = (dir / "caraml_bad.bin").string();
  {
    std::ofstream out(bad, std::ios::binary);
    out << "NOTMAGIC and then some bytes";
  }
  EXPECT_THROW(data::load_token_file(bad), ParseError);

  // Truncate a valid file mid-payload.
  const auto trunc = (dir / "caraml_trunc.bin").string();
  data::save_token_file(trunc, {1, 2, 3, 4, 5, 6, 7, 8});
  std::filesystem::resize_file(trunc, 24);  // header survives, payload cut
  EXPECT_THROW(data::load_token_file(trunc), ParseError);
  std::filesystem::remove(bad);
  std::filesystem::remove(trunc);
  EXPECT_THROW(data::load_token_file("/nonexistent/tokens.bin"), Error);
}

namespace {

/// Error text of load_token_file() on `path`, "" when it unexpectedly loads.
std::string load_error(const std::string& path) {
  try {
    data::load_token_file(path);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

/// Patch `bytes` at `offset` into an otherwise valid 3-token file.
std::string crafted_token_file(const std::string& name, std::size_t offset,
                               const std::string& bytes) {
  const auto path =
      (std::filesystem::temp_directory_path() / name).string();
  data::save_token_file(path, {10, 20, 30});
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

}  // namespace

TEST(TokenFile, TruncatedHeaderNamesPathAndSizes) {
  const auto path =
      (std::filesystem::temp_directory_path() / "caraml_short.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "CARAML";  // 6 bytes, header needs 20
  }
  const std::string error = load_error(path);
  EXPECT_NE(error.find(path), std::string::npos);
  EXPECT_NE(error.find("6 bytes"), std::string::npos);
  EXPECT_NE(error.find("20"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TokenFile, BadMagicDiagnosticNamesOffsetAndExpectation) {
  const auto path = crafted_token_file("caraml_magic.bin", 0, "WRONGMAG");
  const std::string error = load_error(path);
  EXPECT_NE(error.find(path), std::string::npos);
  EXPECT_NE(error.find("offset 0"), std::string::npos);
  EXPECT_NE(error.find("CARAMLTK"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TokenFile, UnsupportedVersionDiagnosticNamesBothVersions) {
  const auto path = crafted_token_file(
      "caraml_version.bin", 8, std::string("\x07\x00\x00\x00", 4));
  const std::string error = load_error(path);
  EXPECT_NE(error.find("version 7"), std::string::npos);
  EXPECT_NE(error.find("offset 8"), std::string::npos);
  EXPECT_NE(error.find("expected 1"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TokenFile, CountMismatchReportsExpectedVsActualSize) {
  // Claim 5 tokens in a file that holds 3: expected 20+5*4=40, found 32.
  const auto path = crafted_token_file(
      "caraml_count.bin", 12, std::string("\x05\x00\x00\x00\x00\x00\x00\x00", 8));
  const std::string error = load_error(path);
  EXPECT_NE(error.find("offset 12"), std::string::npos);
  EXPECT_NE(error.find("claims 5"), std::string::npos);
  EXPECT_NE(error.find("40 bytes"), std::string::npos);
  EXPECT_NE(error.find("32 bytes"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TokenFile, TrailingGarbageRejected) {
  const auto path =
      (std::filesystem::temp_directory_path() / "caraml_trail.bin").string();
  data::save_token_file(path, {1, 2, 3});
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_THROW(data::load_token_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TokenFile, AbsurdCountFailsFastWithoutAllocating) {
  // count = 2^62: validated against the real file size before any allocation,
  // so this throws ParseError instead of std::bad_alloc.
  const auto path = crafted_token_file(
      "caraml_huge.bin", 12,
      std::string("\x00\x00\x00\x00\x00\x00\x00\x40", 8));
  EXPECT_THROW(data::load_token_file(path), ParseError);
  std::filesystem::remove(path);
}

TEST(TokenFile, PreprocessPipeline) {
  Rng rng(11);
  const std::string corpus = data::synthetic_oscar_text(400, rng);
  const auto prefix =
      (std::filesystem::temp_directory_path() / "caraml_corpus").string();
  const auto result = data::preprocess_corpus(corpus, 320, prefix);
  EXPECT_EQ(result.corpus_bytes, corpus.size());
  EXPECT_GT(result.bytes_per_token, 1.0);  // BPE compresses
  EXPECT_EQ(result.vocab_size, 320u);

  const auto tokens = data::load_preprocessed_tokens(prefix);
  EXPECT_EQ(tokens.size(), result.num_tokens);
  const auto tokenizer = data::load_preprocessed_tokenizer(prefix);
  EXPECT_EQ(tokenizer.decode(tokens), corpus);
  std::filesystem::remove(prefix + ".tokens");
  std::filesystem::remove(prefix + ".bpe");
}

// --- trace export --------------------------------------------------------------------

TEST(TraceExport, ChromeTraceContainsTracksAndEvents) {
  sim::TaskGraph graph;
  auto* dev = graph.add_resource("gpu0");
  auto* link = graph.add_resource("nvlink");
  const auto compute = graph.add_task(dev, 1.0, 0.4, "fwd");
  const auto transfer = graph.add_task(link, 0.5, 0.2, "allreduce");
  graph.add_dependency(compute, transfer);
  graph.run();

  const std::string json = sim::to_chrome_trace(graph);
  EXPECT_NE(json.find("\"gpu0\""), std::string::npos);
  EXPECT_NE(json.find("\"nvlink\""), std::string::npos);
  EXPECT_NE(json.find("\"fwd\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000000"), std::string::npos);  // 1 s = 1e6 us
}

TEST(TraceExport, FileWriteAndUtilizationSummary) {
  sim::TaskGraph graph;
  auto* dev = graph.add_resource("dev");
  graph.add_task(dev, 2.0, 0.5, "a");
  graph.add_task(dev, 2.0, 1.0, "b");
  auto* idle = graph.add_resource("idle");
  (void)idle;
  graph.run();

  const auto summary = sim::utilization_summary(graph);
  ASSERT_EQ(summary.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(summary.column("busy_s").as_double(0), 4.0);
  EXPECT_DOUBLE_EQ(summary.column("busy_fraction").as_double(0), 1.0);
  EXPECT_DOUBLE_EQ(summary.column("mean_utilization").as_double(0), 0.75);
  EXPECT_DOUBLE_EQ(summary.column("busy_s").as_double(1), 0.0);

  const auto path =
      (std::filesystem::temp_directory_path() / "caraml_trace.json").string();
  sim::write_chrome_trace(graph, path);
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::filesystem::remove(path);
}

// --- jpwr CSV combine -------------------------------------------------------------------

TEST(Combine, MergesRankFilesAndAggregates) {
  const auto dir = std::filesystem::temp_directory_path() / "caraml_combine";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto write = [&](const std::string& name, double energy, double watts) {
    std::ofstream out(dir / name);
    out << "channel,energy_wh,avg_watts\n";
    out << "pynvml:gpu0," << energy << "," << watts << "\n";
    out << "gh:grace0," << energy / 4 << "," << watts / 4 << "\n";
  };
  write("energy_0.csv", 10.0, 600.0);
  write("energy_1.csv", 12.0, 640.0);
  write("energy_2.csv", 11.0, 620.0);

  const auto combined = power::combine_rank_csvs(dir.string());
  EXPECT_EQ(combined.num_rows(), 6u);
  EXPECT_TRUE(combined.has_column("rank"));
  EXPECT_EQ(combined.column("rank").as_string(0), "0");
  EXPECT_EQ(combined.column("rank").as_string(4), "2");

  const auto aggregated = power::aggregate_energy(combined);
  ASSERT_EQ(aggregated.num_rows(), 2u);
  EXPECT_EQ(aggregated.column("channel").as_string(0), "pynvml:gpu0");
  EXPECT_NEAR(aggregated.column("total_energy_wh").as_double(0), 33.0, 1e-9);
  EXPECT_NEAR(aggregated.column("mean_avg_watts").as_double(0), 620.0, 1e-9);
  EXPECT_NEAR(aggregated.column("max_avg_watts").as_double(0), 640.0, 1e-9);
  EXPECT_EQ(aggregated.column("ranks").as_int(0), 3);
  std::filesystem::remove_all(dir);
}

TEST(Combine, NoFilesThrows) {
  const auto dir = std::filesystem::temp_directory_path() / "caraml_nofiles";
  std::filesystem::create_directories(dir);
  EXPECT_THROW(power::combine_rank_csvs(dir.string()), NotFound);
  std::filesystem::remove_all(dir);
}

// --- inference benchmark ----------------------------------------------------------------

TEST(Inference, DecodeIsMemoryBoundAtSmallBatch) {
  core::InferenceConfig config;
  config.system_tag = "GH200";
  config.batch = 1;
  const auto result = core::run_llm_inference(config);
  ASSERT_FALSE(result.oom);
  // Step latency ~= weight bytes / memory bandwidth.
  const double weight_stream =
      config.model.total_parameters() * 2.0 / 4.0e12;  // 4 TB/s HBM3
  EXPECT_NEAR(result.decode_time_per_token_s, weight_stream,
              weight_stream * 0.6);
}

TEST(Inference, BatchingRaisesAggregateThroughput) {
  double prev = 0.0;
  for (std::int64_t batch : {1, 4, 16, 64}) {
    core::InferenceConfig config;
    config.system_tag = "A100";
    config.batch = batch;
    const auto result = core::run_llm_inference(config);
    ASSERT_FALSE(result.oom);
    EXPECT_GT(result.tokens_per_s_total, prev);
    prev = result.tokens_per_s_total;
  }
}

TEST(Inference, BandwidthOrdersSmallBatchLatency) {
  // GH200 (4 TB/s) must decode faster than A100 (1.55 TB/s) at batch 1.
  core::InferenceConfig config;
  config.batch = 1;
  config.system_tag = "GH200";
  const auto gh = core::run_llm_inference(config);
  config.system_tag = "A100";
  const auto a100 = core::run_llm_inference(config);
  EXPECT_GT(gh.tokens_per_s_per_user, 1.5 * a100.tokens_per_s_per_user);
}

TEST(Inference, KvCacheGrowsWithBatchUntilOom) {
  // 13B fp16 weights are ~26 GB; on a 40 GB A100 the KV cache (0.8 MB per
  // cached token per sequence) exhausts memory as the batch grows.
  core::InferenceConfig config;
  config.system_tag = "A100";
  config.model = models::GptConfig::gpt_13b();
  config.batch = 1;
  EXPECT_FALSE(core::run_llm_inference(config).oom);
  config.batch = 64;
  EXPECT_TRUE(core::run_llm_inference(config).oom);
  // The 96 GB GH200 sustains the same batch.
  config.system_tag = "GH200";
  const auto fits = core::run_llm_inference(config);
  EXPECT_FALSE(fits.oom);
  EXPECT_GT(fits.kv_cache_bytes, 0.0);
}

TEST(Inference, EnergyPerTokenFallsWithBatching) {
  core::InferenceConfig small;
  small.system_tag = "WAIH100";
  small.batch = 1;
  core::InferenceConfig large = small;
  large.batch = 64;
  EXPECT_LT(core::run_llm_inference(large).energy_per_1k_tokens_wh,
            core::run_llm_inference(small).energy_per_1k_tokens_wh);
}

TEST(Inference, LatencyBudgetAccounting) {
  core::InferenceConfig config;
  config.system_tag = "H100";
  config.batch = 8;
  const auto result = core::run_llm_inference(config);
  EXPECT_NEAR(result.request_latency_s,
              result.time_to_first_token_s +
                  result.decode_time_per_token_s * config.generate_tokens,
              1e-9);
  EXPECT_GT(result.avg_power_w, 0.0);
  EXPECT_LE(result.avg_power_w, 700.0 + 1e-9);
}

TEST(Inference, InvalidConfigRejected) {
  core::InferenceConfig config;
  config.batch = 0;
  EXPECT_THROW(core::run_llm_inference(config), Error);
  config.batch = 1;
  config.system_tag = "GC200";
  EXPECT_THROW(core::run_llm_inference(config), Error);
}

TEST(Inference, ServingDtypeOrdersThroughputAndLatency) {
  // int8 streams 1 B/param and doubles the prefill peak; fp32 streams
  // 4 B/param and halves it. Decode is weight-streaming-bound, so the
  // aggregate throughput and TTFT must strictly order int8 > bf16 > fp32.
  core::InferenceConfig config;
  config.system_tag = "GH200";
  config.batch = 8;
  config.dtype = "int8";
  const auto int8 = core::run_llm_inference(config);
  config.dtype = "bf16";
  const auto bf16 = core::run_llm_inference(config);
  config.dtype = "fp32";
  const auto fp32 = core::run_llm_inference(config);
  ASSERT_FALSE(int8.oom);
  ASSERT_FALSE(bf16.oom);
  ASSERT_FALSE(fp32.oom);
  EXPECT_GT(int8.tokens_per_s_total, bf16.tokens_per_s_total);
  EXPECT_GT(bf16.tokens_per_s_total, fp32.tokens_per_s_total);
  EXPECT_LT(int8.time_to_first_token_s, bf16.time_to_first_token_s);
  EXPECT_LT(bf16.time_to_first_token_s, fp32.time_to_first_token_s);
}

TEST(Inference, ServingDtypeSizesKvCache) {
  // fp32 keeps a 4-byte KV cache (2x bf16); int8 keeps the cache at fp16
  // (KV quantization is out of scope), so its KV matches bf16 exactly.
  core::InferenceConfig config;
  config.system_tag = "GH200";
  config.batch = 16;
  const auto bf16 = core::run_llm_inference(config);
  config.dtype = "fp32";
  const auto fp32 = core::run_llm_inference(config);
  config.dtype = "int8";
  const auto int8 = core::run_llm_inference(config);
  ASSERT_GT(bf16.kv_cache_bytes, 0.0);
  EXPECT_DOUBLE_EQ(fp32.kv_cache_bytes, 2.0 * bf16.kv_cache_bytes);
  EXPECT_DOUBLE_EQ(int8.kv_cache_bytes, bf16.kv_cache_bytes);
}

TEST(Inference, ServingDtypeUnblocksOom) {
  // 13B at batch 32 OOMs a 40 GB A100 in bf16 (26 GB weights + ~17 GB KV)
  // but fits once int8 halves the weight footprint to 13 GB.
  core::InferenceConfig config;
  config.system_tag = "A100";
  config.model = models::GptConfig::gpt_13b();
  config.batch = 32;
  EXPECT_TRUE(core::run_llm_inference(config).oom);
  config.dtype = "int8";
  EXPECT_FALSE(core::run_llm_inference(config).oom);
}

TEST(Inference, UnknownDtypeRejected) {
  core::InferenceConfig config;
  config.dtype = "fp8";
  EXPECT_THROW(core::run_llm_inference(config), InvalidArgument);
}

}  // namespace
}  // namespace caraml
