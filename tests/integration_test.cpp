// End-to-end integration tests across modules: the full CARAML user
// workflow (YAML script -> JUBE engine -> simulator -> result table), jpwr
// measuring a replayed simulation, and real training driven through the
// data-parallel substrate with power measurement attached.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "core/caraml.hpp"
#include "data/bpe.hpp"
#include "data/synthetic.hpp"
#include "nn/gpt.hpp"
#include "nn/optim.hpp"
#include "par/data_parallel.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace caraml {
namespace {

TEST(Integration, FullJubeWorkflowFromYaml) {
  // The Appendix-A user journey: write a script, run with a tag, get the
  // compact result table.
  const std::string script =
      "benchmark:\n"
      "  name: caraml-llm\n"
      "parametersets:\n"
      "  - name: systems\n"
      "    parameters:\n"
      "      - name: system\n"
      "        values: [A100]\n"
      "      - name: system\n"
      "        tag: GH200\n"
      "        values: [GH200]\n"
      "      - name: devices\n"
      "        values: \"-1\"\n"
      "  - name: model\n"
      "    parameters:\n"
      "      - name: global_batch\n"
      "        values: [64, 256]\n"
      "steps:\n"
      "  - name: train\n"
      "    do: llm_train\n";

  jube::Benchmark benchmark = jube::Benchmark::from_yaml(yaml::parse(script));
  for (const auto& pattern : core::caraml_patterns()) {
    benchmark.add_pattern(pattern);
  }
  jube::ActionRegistry registry;
  core::register_caraml_actions(registry);

  const auto result = benchmark.run(registry, {"GH200"});
  ASSERT_EQ(result.workpackages.size(), 2u);
  for (const auto& wp : result.workpackages) {
    EXPECT_EQ(wp.context.at("system"), "GH200");
    EXPECT_TRUE(wp.analysed.count("tokens_per_s"));
    EXPECT_GT(str::parse_double(wp.analysed.at("tokens_per_s")), 1000.0);
  }
  // Larger batch => higher throughput, visible through the whole pipeline.
  EXPECT_GT(str::parse_double(result.workpackages[1].analysed.at("tokens_per_s")),
            str::parse_double(result.workpackages[0].analysed.at("tokens_per_s")));

  const TextTable table =
      result.table({"system", "global_batch", "tokens_per_s"});
  EXPECT_NE(table.render().find("GH200"), std::string::npos);
}

TEST(Integration, ShippedConfigFilesLoadAndRun) {
  // The repository's configs/ scripts must stay valid.
  const std::filesystem::path configs =
      std::filesystem::path(CARAML_CONFIG_DIR);
  for (const char* name :
       {"llm_benchmark_nvidia_amd.yaml", "resnet50_benchmark.yaml"}) {
    const auto path = configs / name;
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    jube::Benchmark benchmark = jube::Benchmark::from_yaml_file(path.string());
    for (const auto& pattern : core::caraml_patterns()) {
      benchmark.add_pattern(pattern);
    }
    jube::ActionRegistry registry;
    core::register_caraml_actions(registry);
    const auto result = benchmark.run(registry, {});
    EXPECT_GT(result.workpackages.size(), 0u) << name;
    for (const auto& wp : result.workpackages) {
      EXPECT_FALSE(wp.outputs.empty());
    }
  }
}

TEST(Integration, JpwrMeasuresReplayedSimulation) {
  // Simulate a benchmark, replay its power rail through the sampling scope,
  // and check the trapezoid energy against the exact trace integral.
  core::LlmRunConfig config;
  config.system_tag = "A100";
  config.global_batch = 256;
  const auto run = core::run_llm_gpu(config);
  ASSERT_TRUE(run.device0_trace.has_value());
  const double exact_wh =
      run.device0_trace->energy_wh(0.0, run.device0_trace->horizon());

  const double speed = run.device0_trace->horizon() / 0.05;  // 50 ms replay
  std::vector<power::MethodPtr> methods = {
      power::make_pynvml_sim({*run.device0_trace})};
  power::PowerScope scope(methods, /*interval_ms=*/0.2,
                          std::make_shared<power::ScaledClock>(speed));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  scope.stop();

  // Scale wall-clock-integrated energy back to simulated time.
  const double measured_wh =
      scope.channel_energy_wh("pynvml:gpu0") * speed *
      (run.device0_trace->horizon() / (scope.duration() * speed));
  EXPECT_NEAR(measured_wh, exact_wh, exact_wh * 0.25);
  EXPECT_GE(scope.num_samples(), 10u);
}

TEST(Integration, TokenizerToTrainingPipeline) {
  // OSCAR-like corpus -> BPE -> TokenStream -> data-parallel GPT training;
  // the loss must fall and replicas stay in sync (checked inside trainer).
  Rng rng(77);
  const std::string corpus = data::synthetic_oscar_text(800, rng);
  data::BpeTokenizer tokenizer;
  tokenizer.train(corpus, 300);
  const auto ids = tokenizer.encode(corpus);
  data::TokenStream stream(std::vector<std::int32_t>(ids.begin(), ids.end()));

  nn::GptModelConfig model_config;
  model_config.vocab_size = static_cast<std::int64_t>(tokenizer.vocab_size());
  model_config.block_size = 16;
  model_config.num_layers = 1;
  model_config.num_heads = 2;
  model_config.embed_dim = 16;

  par::DataParallelTrainer trainer(2, [&](int) {
    Rng init(5);
    auto model = std::make_shared<nn::GptModel>(model_config, init);
    auto optimizer = std::make_shared<nn::Adam>(model->parameters(), 5e-3f);
    return par::DataParallelTrainer::Replica{model, optimizer};
  });
  const auto result = trainer.train(
      12, [&](int rank, std::int64_t step,
              par::DataParallelTrainer::Replica& replica) {
        Rng data(static_cast<std::uint64_t>(rank * 31 + step));
        const auto batch = stream.sample_batch(2, 12, data);
        auto* gpt = dynamic_cast<nn::GptModel*>(replica.model.get());
        return gpt->train_step(batch.inputs, batch.targets);
      });
  EXPECT_LT(result.losses.back(), result.losses.front());
}

TEST(Integration, AllSevenSystemsProduceAFullResnetRow) {
  // One Fig. 3-style row across every Table-I system end-to-end.
  for (const auto& tag : topo::SystemRegistry::instance().tags()) {
    core::ResnetRunConfig config;
    config.system_tag = tag;
    config.devices = 1;
    config.global_batch = 64;
    const auto result = core::run_resnet(config);
    EXPECT_FALSE(result.oom) << tag;
    EXPECT_GT(result.images_per_s_total, 50.0) << tag;
    EXPECT_GT(result.images_per_wh, 1000.0) << tag;
    EXPECT_GT(result.avg_power_per_device_w, 0.0) << tag;
  }
}

TEST(Integration, EnergyAccountingConsistency) {
  // tokens/Wh must equal tokens/s * 3600 / avg-power for every system —
  // the invariant linking the three panels of Fig. 2.
  for (const char* tag : {"A100", "GH200", "WAIH100"}) {
    core::LlmRunConfig config;
    config.system_tag = tag;
    config.global_batch = 512;
    const auto result = core::run_llm_gpu(config);
    const double reconstructed =
        result.tokens_per_s_per_gpu * 3600.0 / result.avg_power_per_gpu_w;
    EXPECT_NEAR(result.tokens_per_wh, reconstructed,
                reconstructed * 1e-9)
        << tag;
    // And the 1-hour energy equals the average power numerically.
    EXPECT_NEAR(result.energy_per_gpu_wh, result.avg_power_per_gpu_w, 1e-6);
  }
}

}  // namespace
}  // namespace caraml
