#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/gpt.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/resnet.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::nn {
namespace {

using tensor::Tensor;

// Check d(sum(module(x)))/dx and d/dparams against central finite differences.
// The module is re-run for each probe, so it must be deterministic.
void check_gradients(Module& module, const Tensor& input, float eps = 1e-2f,
                     float tol = 5e-2f, int param_stride = 7,
                     int input_stride = 5) {
  // Analytic gradients.
  module.zero_grad();
  const Tensor out = module.forward(input);
  const Tensor ones = Tensor::ones(out.shape());
  const Tensor dinput = module.backward(ones);

  auto loss_at = [&](const Tensor& x) {
    return tensor::sum(module.forward(x));
  };

  // Input gradient.
  if (dinput.numel() > 0) {
    for (std::int64_t i = 0; i < input.numel(); i += input_stride) {
      Tensor xp = input, xm = input;
      xp[i] += eps;
      xm[i] -= eps;
      const float fd = (loss_at(xp) - loss_at(xm)) / (2.0f * eps);
      ASSERT_NEAR(dinput[i], fd, tol) << "input grad, index " << i;
    }
  }

  // Parameter gradients (captured before the probe runs overwrite them...
  // probes do not call backward, so grads are intact).
  for (Parameter* p : module.parameters()) {
    for (std::int64_t i = 0; i < p->numel(); i += param_stride) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float up = loss_at(input);
      p->value[i] = saved - eps;
      const float down = loss_at(input);
      p->value[i] = saved;
      const float fd = (up - down) / (2.0f * eps);
      ASSERT_NEAR(p->grad[i], fd, tol)
          << "param " << p->name << ", index " << i;
    }
  }
}

// --- Linear -----------------------------------------------------------------------

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  layer.weight().value = Tensor({3, 2}, {1.0f, 0.0f, 0.0f, 1.0f, 1.0f, 1.0f});
  layer.bias()->value = Tensor({3}, {0.5f, -0.5f, 0.0f});
  const Tensor x({1, 2}, {2.0f, 3.0f});
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 2.5f);
  EXPECT_FLOAT_EQ(y[2], 5.0f);
}

TEST(Linear, GradientsMatchFiniteDifference) {
  Rng rng(2);
  Linear layer(4, 3, rng, true, 0.5f);
  const Tensor x = Tensor::randn({5, 4}, rng);
  check_gradients(layer, x, 1e-2f, 2e-2f, 3, 2);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(3);
  Linear layer(4, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  EXPECT_EQ(layer.bias(), nullptr);
}

TEST(Linear, ShapeMismatchThrows) {
  Rng rng(4);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 3})), Error);
}

TEST(Linear, GeluEpilogueGradientsMatchFiniteDifference) {
  Rng rng(31);
  Linear layer(6, 5, rng, true, 0.5f);
  layer.set_gelu();
  const Tensor x = Tensor::randn({4, 6}, rng, 0.5f);
  check_gradients(layer, x, 1e-2f, 5e-2f, 3, 1);
}

TEST(Linear, DropoutEpilogueMasksScalesAndRoutesGradient) {
  // Two layers with identical weights; one applies a 0.5 inverted-dropout
  // epilogue. Kept outputs must equal exactly twice the plain output, and
  // backward must route gradient only through kept slots.
  Rng rng_a(32), rng_b(32), rng_x(33);
  Linear plain(6, 5, rng_a, true, 0.5f);
  Linear dropped(6, 5, rng_b, true, 0.5f);
  dropped.set_dropout(0.5f, 99);

  const Tensor x = Tensor::randn({40, 6}, rng_x, 0.5f);
  const Tensor base = plain.forward(x);
  const Tensor out = dropped.forward(x);
  std::int64_t kept = 0;
  Tensor mask({40, 5});
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      mask[i] = 0.0f;
    } else {
      ASSERT_EQ(out[i], base[i] * 2.0f) << "at flat index " << i;
      mask[i] = 2.0f;
      ++kept;
    }
  }
  // 200 Bernoulli(0.5) draws: the kept fraction concentrates around half.
  EXPECT_GT(kept, 60);
  EXPECT_LT(kept, 140);

  dropped.zero_grad();
  const Tensor ones = Tensor::ones(out.shape());
  const Tensor dx = dropped.backward(ones);
  const Tensor dx_want = tensor::matmul(mask, dropped.weight().value);
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    ASSERT_NEAR(dx[i], dx_want[i], 1e-5f) << "input grad at " << i;
  }
  // Bias gradient is the column sum of the masked incoming gradient.
  for (std::int64_t j = 0; j < 5; ++j) {
    float col = 0.0f;
    for (std::int64_t i = 0; i < 40; ++i) col += mask[i * 5 + j];
    EXPECT_NEAR(dropped.bias()->grad[j], col, 1e-4f) << "bias grad " << j;
  }
}

// --- Embedding --------------------------------------------------------------------

TEST(Embedding, LooksUpRows) {
  Rng rng(5);
  Embedding embed(10, 4, rng);
  const Tensor ids({2}, {3.0f, 7.0f});
  const Tensor out = embed.forward(ids);
  for (std::int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out[j], embed.weight().value[3 * 4 + j]);
    EXPECT_FLOAT_EQ(out[4 + j], embed.weight().value[7 * 4 + j]);
  }
}

TEST(Embedding, BackwardAccumulatesPerToken) {
  Rng rng(6);
  Embedding embed(10, 2, rng);
  const Tensor ids({3}, {1.0f, 1.0f, 2.0f});  // token 1 appears twice
  embed.forward(ids);
  const Tensor g({3, 2}, {1.0f, 1.0f, 1.0f, 1.0f, 5.0f, 5.0f});
  embed.backward(g);
  EXPECT_FLOAT_EQ(embed.weight().grad[1 * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(embed.weight().grad[2 * 2 + 0], 5.0f);
  EXPECT_FLOAT_EQ(embed.weight().grad[0], 0.0f);
}

TEST(Embedding, OutOfRangeTokenThrows) {
  Rng rng(7);
  Embedding embed(10, 2, rng);
  EXPECT_THROW(embed.forward(Tensor({1}, {10.0f})), Error);
}

// --- LayerNorm --------------------------------------------------------------------

TEST(LayerNorm, NormalizesRows) {
  LayerNorm layer(4);
  const Tensor x({2, 4}, {1.0f, 2.0f, 3.0f, 4.0f, -2.0f, 0.0f, 2.0f, 4.0f});
  const Tensor y = layer.forward(x);
  for (std::int64_t r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < 4; ++c) mean += y[r * 4 + c];
    mean /= 4.0;
    for (std::int64_t c = 0; c < 4; ++c) {
      var += (y[r * 4 + c] - mean) * (y[r * 4 + c] - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var / 4.0, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradientsMatchFiniteDifference) {
  Rng rng(8);
  LayerNorm layer(6);
  layer.gamma().value = Tensor::randn({6}, rng, 0.3f);
  for (std::int64_t i = 0; i < 6; ++i) layer.gamma().value[i] += 1.0f;
  const Tensor x = Tensor::randn({4, 6}, rng);
  check_gradients(layer, x, 1e-2f, 3e-2f, 2, 1);
}

// --- activations as modules ---------------------------------------------------------

TEST(GeluModule, GradientsMatchFiniteDifference) {
  Rng rng(9);
  Gelu layer;
  const Tensor x = Tensor::randn({3, 5}, rng);
  check_gradients(layer, x, 1e-2f, 2e-2f, 1, 1);
}

TEST(ReluModule, GradientsAwayFromKink) {
  Relu layer;
  const Tensor x({4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  check_gradients(layer, x, 1e-3f, 1e-2f, 1, 1);
}

// --- attention ----------------------------------------------------------------------

TEST(Attention, OutputShapeMatchesInput) {
  Rng rng(10);
  CausalSelfAttention attn(8, 2, rng);
  const Tensor x = Tensor::randn({2, 5, 8}, rng, 0.5f);
  const Tensor y = attn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Attention, CausalMaskBlocksFuture) {
  // Changing a future token must not change earlier outputs.
  Rng rng(11);
  CausalSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::randn({1, 4, 8}, rng, 0.5f);
  const Tensor y1 = attn.forward(x);
  // Perturb the last time step.
  for (std::int64_t j = 0; j < 8; ++j) x[3 * 8 + j] += 10.0f;
  const Tensor y2 = attn.forward(x);
  for (std::int64_t t = 0; t < 3; ++t) {
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1[t * 8 + j], y2[t * 8 + j], 1e-5)
          << "t=" << t << " j=" << j;
    }
  }
}

TEST(Attention, GradientsMatchFiniteDifference) {
  Rng rng(12);
  CausalSelfAttention attn(4, 2, rng);
  const Tensor x = Tensor::randn({1, 3, 4}, rng, 0.5f);
  check_gradients(attn, x, 1e-2f, 5e-2f, 11, 1);
}

TEST(Attention, HeadDivisibilityEnforced) {
  Rng rng(13);
  EXPECT_THROW(CausalSelfAttention(10, 3, rng), Error);
}

TEST(Attention, FusedEngineMatchesHeadLoopEngine) {
  // Two modules built from identical rng streams hold identical weights; the
  // fused streaming engine and the dense head-loop engine must agree on the
  // output, the input gradient, and every parameter gradient. T = 70 crosses
  // the fused kernel's tile boundary; 12 (b, h) pairs exercise the parallel
  // dispatch.
  Rng rng_a(21), rng_b(21), rng_x(22);
  CausalSelfAttention fused_attn(24, 4, rng_a);
  CausalSelfAttention loop_attn(24, 4, rng_b);
  fused_attn.set_engine(CausalSelfAttention::Engine::kFused);
  loop_attn.set_engine(CausalSelfAttention::Engine::kHeadLoop);

  const Tensor x = Tensor::randn({3, 70, 24}, rng_x, 0.5f);
  const Tensor y_fused = fused_attn.forward(x);
  const Tensor y_loop = loop_attn.forward(x);
  ASSERT_EQ(y_fused.shape(), y_loop.shape());
  const float tol = 1e-4f;
  for (std::int64_t i = 0; i < y_fused.numel(); ++i) {
    ASSERT_NEAR(y_fused[i], y_loop[i], tol) << "output at " << i;
  }

  const Tensor g = Tensor::randn(y_fused.shape(), rng_x);
  const Tensor dx_fused = fused_attn.backward(g);
  const Tensor dx_loop = loop_attn.backward(g);
  for (std::int64_t i = 0; i < dx_fused.numel(); ++i) {
    ASSERT_NEAR(dx_fused[i], dx_loop[i], tol) << "input grad at " << i;
  }
  const auto params_fused = fused_attn.parameters();
  const auto params_loop = loop_attn.parameters();
  ASSERT_EQ(params_fused.size(), params_loop.size());
  for (std::size_t p = 0; p < params_fused.size(); ++p) {
    const Tensor& gf = params_fused[p]->grad;
    const Tensor& gl = params_loop[p]->grad;
    ASSERT_EQ(gf.shape(), gl.shape());
    for (std::int64_t i = 0; i < gf.numel(); ++i) {
      ASSERT_NEAR(gf[i], gl[i], tol)
          << "param " << params_fused[p]->name << " grad at " << i;
    }
  }
}

TEST(Attention, HeadLoopEngineGradientsMatchFiniteDifference) {
  Rng rng(12);
  CausalSelfAttention attn(4, 2, rng);
  attn.set_engine(CausalSelfAttention::Engine::kHeadLoop);
  const Tensor x = Tensor::randn({1, 3, 4}, rng, 0.5f);
  check_gradients(attn, x, 1e-2f, 5e-2f, 11, 1);
}

// --- transformer block / GPT ----------------------------------------------------------

TEST(TransformerBlock, GradientsMatchFiniteDifference) {
  Rng rng(14);
  TransformerBlock block(4, 2, rng);
  const Tensor x = Tensor::randn({1, 3, 4}, rng, 0.5f);
  check_gradients(block, x, 1e-2f, 6e-2f, 13, 1);
}

TEST(Gpt, ForwardShape) {
  Rng rng(15);
  GptModelConfig config;
  config.vocab_size = 50;
  config.block_size = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.embed_dim = 16;
  GptModel model(config, rng);
  const Tensor tokens({2, 6}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  const Tensor logits = model.forward(tokens);
  EXPECT_EQ(logits.dim(0), 12);
  EXPECT_EQ(logits.dim(1), 50);
}

TEST(Gpt, SequenceLongerThanBlockThrows) {
  Rng rng(16);
  GptModelConfig config;
  config.block_size = 4;
  GptModel model(config, rng);
  EXPECT_THROW(model.forward(Tensor({1, 5})), Error);
}

TEST(Gpt, ParameterCountIsPlausible) {
  Rng rng(17);
  GptModelConfig config;
  config.vocab_size = 100;
  config.block_size = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.embed_dim = 32;
  GptModel model(config, rng);
  // embeddings 100*32 + pos 16*32 + head 100*32 + 2 blocks of ~12*32^2.
  const std::int64_t params = model.num_parameters();
  EXPECT_GT(params, 30000);
  EXPECT_LT(params, 50000);
}

TEST(Gpt, TrainingReducesLoss) {
  Rng rng(18);
  GptModelConfig config;
  config.vocab_size = 16;
  config.block_size = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.embed_dim = 16;
  GptModel model(config, rng);
  Adam optimizer(model.parameters(), 1e-2f);

  // A fixed periodic sequence the model can memorize.
  Tensor tokens({2, 8});
  std::vector<std::int64_t> targets(16);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t t = 0; t < 8; ++t) {
      tokens[b * 8 + t] = static_cast<float>((b + t) % 4);
      targets[static_cast<std::size_t>(b * 8 + t)] = (b + t + 1) % 4;
    }
  }
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    optimizer.zero_grad();
    const float loss = model.train_step(tokens, targets);
    optimizer.step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f);
}

// --- loss ----------------------------------------------------------------------------

TEST(Loss, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::zeros({3, 8});
  const LossResult result = softmax_cross_entropy(logits, {0, 3, 7});
  EXPECT_NEAR(result.loss, std::log(8.0f), 1e-5);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(19);
  const Tensor logits = Tensor::randn({4, 6}, rng);
  const LossResult result = softmax_cross_entropy(logits, {0, 1, 2, 3});
  for (std::int64_t r = 0; r < 4; ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < 6; ++c) {
      total += result.grad_logits[r * 6 + c];
    }
    EXPECT_NEAR(total, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(20);
  const Tensor logits = Tensor::randn({2, 4}, rng);
  const std::vector<std::int64_t> targets = {1, 3};
  const LossResult result = softmax_cross_entropy(logits, targets);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float fd = (softmax_cross_entropy(lp, targets).loss -
                      softmax_cross_entropy(lm, targets).loss) /
                     (2.0f * eps);
    EXPECT_NEAR(result.grad_logits[i], fd, 1e-3);
  }
}

TEST(Loss, TargetOutOfRangeThrows) {
  const Tensor logits = Tensor::zeros({1, 4});
  EXPECT_THROW(softmax_cross_entropy(logits, {4}), Error);
}

TEST(Loss, AccuracyComputation) {
  const Tensor logits({2, 3}, {0.0f, 5.0f, 0.0f, 9.0f, 0.0f, 0.0f});
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
}

// --- conv modules -----------------------------------------------------------------------

TEST(Conv2dModule, GradientsMatchFiniteDifference) {
  Rng rng(21);
  Conv2d layer(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  check_gradients(layer, x, 1e-2f, 6e-2f, 5, 3);
}

TEST(BatchNorm, NormalizesPerChannel) {
  BatchNorm2d layer(2);
  Rng rng(22);
  const Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 2.0f);
  const Tensor y = layer.forward(x);
  for (std::int64_t ch = 0; ch < 2; ++ch) {
    double mean = 0.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t i = 0; i < 9; ++i) mean += y[(n * 2 + ch) * 9 + i];
    }
    EXPECT_NEAR(mean / 36.0, 0.0, 1e-4);
  }
}

TEST(BatchNorm, RunningStatsUpdated) {
  BatchNorm2d layer(1, 1e-5f, 0.5f);
  const Tensor x = Tensor::full({2, 1, 2, 2}, 4.0f);
  layer.forward(x);
  // Running mean moves halfway from 0 toward 4.
  EXPECT_NEAR(layer.running_mean()[0], 2.0f, 1e-5);
}

TEST(BatchNorm, GradientsMatchFiniteDifference) {
  Rng rng(23);
  BatchNorm2d layer(2);
  const Tensor x = Tensor::randn({3, 2, 2, 2}, rng);
  check_gradients(layer, x, 1e-2f, 6e-2f, 1, 1);
}

TEST(MaxPoolModule, RoundTrip) {
  Rng rng(24);
  MaxPool2d layer(2);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor y = layer.forward(x);
  const Tensor g = Tensor::ones(y.shape());
  const Tensor dx = layer.backward(g);
  EXPECT_NEAR(tensor::sum(dx), 4.0f, 1e-5);
}

// --- residual blocks / ResNet -------------------------------------------------------------

TEST(ResidualBlock, BasicBlockGradients) {
  Rng rng(25);
  ResidualBlock block(2, 2, 1, /*bottleneck=*/false, rng);
  const Tensor x = Tensor::randn({1, 2, 4, 4}, rng, 0.7f);
  check_gradients(block, x, 1e-2f, 8e-2f, 9, 5);
}

TEST(ResidualBlock, BottleneckWithProjection) {
  Rng rng(26);
  ResidualBlock block(4, 2, 2, /*bottleneck=*/true, rng);
  EXPECT_EQ(block.out_channels(), 8);
  const Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
  const Tensor y = block.forward(x);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 3);  // stride 2
  const Tensor dx = block.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(ResNet, ForwardShapeAndParams) {
  Rng rng(27);
  ResNet model(nn::ResNetConfig::tiny(10), rng);
  const Tensor images = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor logits = model.forward(images);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
  EXPECT_GT(model.num_parameters(), 1000);
}

TEST(ResNet, TrainingReducesLossOnSeparableData) {
  Rng rng(28);
  ResNet model(nn::ResNetConfig::tiny(2), rng);
  Sgd optimizer(model.parameters(), 0.05f, 0.9f);
  // Class 0: all -1 images, class 1: all +1.
  Tensor images({8, 3, 8, 8});
  std::vector<std::int64_t> labels(8);
  for (std::int64_t i = 0; i < 8; ++i) {
    const float v = i % 2 == 0 ? -1.0f : 1.0f;
    labels[static_cast<std::size_t>(i)] = i % 2;
    for (std::int64_t j = 0; j < 3 * 64; ++j) images[i * 3 * 64 + j] = v;
  }
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 20; ++step) {
    optimizer.zero_grad();
    const float loss = model.train_step(images, labels);
    optimizer.step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(ResNet, BottleneckVariantRuns) {
  Rng rng(29);
  ResNet model(nn::ResNetConfig::small_bottleneck(4), rng);
  const Tensor images = Tensor::randn({1, 3, 16, 16}, rng);
  EXPECT_EQ(model.forward(images).dim(1), 4);
}

// --- optimizers -----------------------------------------------------------------------------

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize f(w) = 0.5 * ||w - target||^2 by hand-feeding gradients.
  Parameter w("w", Tensor({3}, {5.0f, -4.0f, 2.0f}));
  const Tensor target({3}, {1.0f, 1.0f, 1.0f});
  Sgd optimizer({&w}, 0.1f, 0.0f);
  for (int step = 0; step < 200; ++step) {
    optimizer.zero_grad();
    for (std::int64_t i = 0; i < 3; ++i) w.grad[i] = w.value[i] - target[i];
    optimizer.step();
  }
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(w.value[i], 1.0f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Parameter slow("s", Tensor({1}, {10.0f}));
  Parameter fast("f", Tensor({1}, {10.0f}));
  Sgd plain({&slow}, 0.01f, 0.0f);
  Sgd momentum({&fast}, 0.01f, 0.9f);
  for (int step = 0; step < 50; ++step) {
    plain.zero_grad();
    momentum.zero_grad();
    slow.grad[0] = slow.value[0];
    fast.grad[0] = fast.value[0];
    plain.step();
    momentum.step();
  }
  EXPECT_LT(std::fabs(fast.value[0]), std::fabs(slow.value[0]));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Parameter w("w", Tensor({1}, {1.0f}));
  Sgd optimizer({&w}, 0.1f, 0.0f, 0.5f);
  optimizer.zero_grad();  // gradient zero, decay only
  optimizer.step();
  EXPECT_NEAR(w.value[0], 1.0f - 0.1f * 0.5f, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  Parameter w("w", Tensor({2}, {8.0f, -8.0f}));
  Adam optimizer({&w}, 0.3f);
  for (int step = 0; step < 300; ++step) {
    optimizer.zero_grad();
    for (std::int64_t i = 0; i < 2; ++i) w.grad[i] = w.value[i];
    optimizer.step();
  }
  EXPECT_NEAR(w.value[0], 0.0f, 1e-2);
  EXPECT_NEAR(w.value[1], 0.0f, 1e-2);
  EXPECT_EQ(optimizer.step_count(), 300);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  Parameter w("w", Tensor({2}, {0.0f, 0.0f}));
  w.grad = Tensor({2}, {3.0f, 4.0f});  // norm 5
  const double norm = clip_grad_norm({&w}, 1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(w.grad[0], 0.6f, 1e-5);
  EXPECT_NEAR(w.grad[1], 0.8f, 1e-5);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Parameter w("w", Tensor({2}, {0.0f, 0.0f}));
  w.grad = Tensor({2}, {0.3f, 0.4f});
  clip_grad_norm({&w}, 1.0);
  EXPECT_NEAR(w.grad[0], 0.3f, 1e-6);
}

// --- Sequential ---------------------------------------------------------------------------

TEST(Sequential, ChainsModules) {
  Rng rng(30);
  auto sequential = std::make_shared<Sequential>();
  sequential->add(std::make_shared<Linear>(4, 8, rng));
  sequential->add(std::make_shared<Gelu>());
  sequential->add(std::make_shared<Linear>(8, 2, rng));
  EXPECT_EQ(sequential->size(), 3u);
  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor y = sequential->forward(x);
  EXPECT_EQ(y.dim(1), 2);
  const Tensor dx = sequential->backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(sequential->parameters().size(), 4u);
}

TEST(Sequential, GradientsMatchFiniteDifference) {
  Rng rng(31);
  Sequential sequential;
  sequential.add(std::make_shared<Linear>(3, 5, rng, true, 0.5f));
  sequential.add(std::make_shared<Gelu>());
  sequential.add(std::make_shared<Linear>(5, 2, rng, true, 0.5f));
  const Tensor x = Tensor::randn({2, 3}, rng);
  check_gradients(sequential, x, 1e-2f, 4e-2f, 3, 1);
}

// --- compute dtypes -----------------------------------------------------------------------

TEST(LinearDtype, Bf16ForwardTracksFp32) {
  Rng rng(40);
  Linear layer(24, 16, rng, true, 0.5f);
  const Tensor x = Tensor::randn({9, 24}, rng);
  const Tensor y32 = layer.forward(x);
  layer.set_compute_dtype(tensor::DType::kBf16);
  EXPECT_EQ(layer.compute_dtype(), tensor::DType::kBf16);
  const Tensor y16 = layer.forward(x);
  ASSERT_EQ(y16.shape(), y32.shape());
  // bf16 carries ~3 decimal digits; with k = 24 the relative drift of each
  // dot product stays well under 2^-7.
  float absmax = 0.0f;
  for (std::int64_t i = 0; i < y32.numel(); ++i) {
    absmax = std::max(absmax, std::fabs(y32[i]));
  }
  for (std::int64_t i = 0; i < y32.numel(); ++i) {
    ASSERT_NEAR(y16[i], y32[i], 0x1p-7f * absmax) << "flat index " << i;
  }
}

TEST(LinearDtype, Bf16GradientsTrackFp32) {
  Rng rng(41);
  Linear layer(12, 10, rng, true, 0.5f);
  layer.set_gelu();
  const Tensor x = Tensor::randn({7, 12}, rng);
  const Tensor g = Tensor::randn({7, 10}, rng);
  layer.forward(x);
  const Tensor dx32 = layer.backward(g);
  Tensor dw32 = layer.weight().grad;  // copy before the bf16 pass accumulates
  layer.zero_grad();
  layer.set_compute_dtype(tensor::DType::kBf16);
  layer.forward(x);
  const Tensor dx16 = layer.backward(g);
  const Tensor& dw16 = layer.weight().grad;
  float dw_absmax = 0.0f, dx_absmax = 0.0f;
  for (std::int64_t i = 0; i < dw32.numel(); ++i) {
    dw_absmax = std::max(dw_absmax, std::fabs(dw32[i]));
  }
  for (std::int64_t i = 0; i < dx32.numel(); ++i) {
    dx_absmax = std::max(dx_absmax, std::fabs(dx32[i]));
  }
  for (std::int64_t i = 0; i < dw32.numel(); ++i) {
    ASSERT_NEAR(dw16[i], dw32[i], 0x1p-6f * dw_absmax) << "dW index " << i;
  }
  for (std::int64_t i = 0; i < dx32.numel(); ++i) {
    ASSERT_NEAR(dx16[i], dx32[i], 0x1p-6f * dx_absmax) << "dX index " << i;
  }
}

TEST(LinearDtype, Int8ForwardTracksFp32AndBackwardRefuses) {
  Rng rng(42);
  Linear layer(32, 12, rng, true, 0.5f);
  const Tensor x = Tensor::randn({6, 32}, rng);
  const Tensor y32 = layer.forward(x);
  layer.set_compute_dtype(tensor::DType::kI8);
  const Tensor y8 = layer.forward(x);
  float absmax = 0.0f;
  for (std::int64_t i = 0; i < y32.numel(); ++i) {
    absmax = std::max(absmax, std::fabs(y32[i]));
  }
  for (std::int64_t i = 0; i < y32.numel(); ++i) {
    // int8 quantization noise: ~k * step_a * step_b accumulated, a few
    // percent of the output scale on random activations.
    ASSERT_NEAR(y8[i], y32[i], 0.05f * absmax + 1e-4f) << "flat index " << i;
  }
  EXPECT_THROW(layer.backward(Tensor::ones(y8.shape())), Error);
}

TEST(LinearDtype, Int8CalibrationPinsActivationScale) {
  Rng rng(43);
  Linear layer(16, 8, rng, true, 0.5f);
  layer.set_compute_dtype(tensor::DType::kI8);
  const Tensor sample = Tensor::randn({32, 16}, rng);
  layer.calibrate_int8(sample);
  // A calibrated layer must produce identical outputs for an input subrange
  // regardless of what else sits in the batch (per-forward dynamic scales
  // would differ between the two batches).
  Tensor small({1, 16});
  for (std::int64_t j = 0; j < 16; ++j) small[j] = sample[j];
  const Tensor y_alone = layer.forward(small);
  const Tensor y_batch = layer.forward(sample);
  for (std::int64_t j = 0; j < 8; ++j) {
    ASSERT_EQ(y_alone[j], y_batch[j]) << "col " << j;
  }
}

TEST(LinearDtype, Int8RejectsDropoutEpilogue) {
  Rng rng(44);
  Linear layer(8, 8, rng);
  layer.set_dropout(0.5f, 123);
  EXPECT_THROW(layer.set_compute_dtype(tensor::DType::kI8), Error);
  layer.set_dropout(0.0f, 123);  // clears the epilogue
  layer.set_compute_dtype(tensor::DType::kI8);
  EXPECT_EQ(layer.compute_dtype(), tensor::DType::kI8);
}

TEST(AttentionDtype, RejectsInt8AndAcceptsBf16) {
  Rng rng(45);
  CausalSelfAttention attn(16, 2, rng);
  EXPECT_THROW(attn.set_compute_dtype(tensor::DType::kI8), Error);
  attn.set_compute_dtype(tensor::DType::kBf16);
  const Tensor x = Tensor::randn({2, 8, 16}, rng);
  const Tensor y = attn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  const Tensor dx = attn.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(GptDtype, Bf16TrainStepReducesLossAndInt8RefusesTraining) {
  GptModelConfig config;
  config.vocab_size = 48;
  config.block_size = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.embed_dim = 16;
  Rng rng(46);
  GptModel model(config, rng);
  model.set_compute_dtype(tensor::DType::kBf16);
  EXPECT_EQ(model.compute_dtype(), tensor::DType::kBf16);
  Tensor tokens({2, 8});
  std::vector<std::int64_t> targets(16);
  for (std::int64_t i = 0; i < 16; ++i) {
    tokens[i] = static_cast<float>(i % 7);
    targets[static_cast<std::size_t>(i)] = (i + 1) % 7;
  }
  Sgd sgd(model.parameters(), 0.05f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 12; ++step) {
    sgd.zero_grad();
    const float loss = model.train_step(tokens, targets);
    ASSERT_TRUE(std::isfinite(loss)) << "step " << step;
    if (step == 0) first = loss;
    last = loss;
    sgd.step();
  }
  EXPECT_LT(last, first);

  model.set_compute_dtype(tensor::DType::kI8);
  EXPECT_THROW(model.train_step(tokens, targets), Error);
}

TEST(GptDtype, Int8GenerationMatchesFp32Greedy) {
  GptModelConfig config;
  config.vocab_size = 32;
  config.block_size = 8;
  config.num_layers = 1;
  config.num_heads = 2;
  config.embed_dim = 16;
  Rng rng(47);
  GptModel model(config, rng);
  Rng gen_rng(1);
  const auto ids32 = model.generate({3, 1, 4}, 8, 0.0f, gen_rng);
  model.set_compute_dtype(tensor::DType::kI8);
  Rng gen_rng2(1);
  const auto ids8 = model.generate({3, 1, 4}, 8, 0.0f, gen_rng2);
  // Greedy decoding of an untrained-but-deterministic model: the int8 logit
  // noise is far below typical logit gaps, so the argmax sequence matches.
  EXPECT_EQ(ids32, ids8);
  // And flipping back restores the fp32 path exactly.
  model.set_compute_dtype(tensor::DType::kF32);
  Rng gen_rng3(1);
  EXPECT_EQ(model.generate({3, 1, 4}, 8, 0.0f, gen_rng3), ids32);
}

}  // namespace
}  // namespace caraml::nn
