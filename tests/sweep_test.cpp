// Sweep determinism suite (ISSUE 3): the same benchmark run sequentially,
// with 8 jobs, and against a warm cache must produce byte-identical result
// tables and fault/backoff schedules, with results in expansion order
// regardless of completion order. Also covers the SweepCache JSONL format's
// crash tolerance and the workpackage fingerprint.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "jube/jube.hpp"
#include "jube/sweep.hpp"
#include "util/error.hpp"

namespace caraml::jube {
namespace {

std::string temp_path(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove(path);
  return path.string();
}

/// 8 workpackages (shard 0..7) whose action output is a pure function of the
/// context — identical across any execution order.
Benchmark shard_benchmark() {
  Benchmark benchmark("sweep-demo");
  ParameterSet set;
  set.name = "p";
  set.parameters.push_back(
      Parameter{"shard", {"0", "1", "2", "3", "4", "5", "6", "7"}, ""});
  benchmark.add_parameter_set(set);
  benchmark.add_step(Step{"work", {}, "compute", ""});
  benchmark.add_pattern(Pattern{"value", R"(value:\s*(\w+))"});
  return benchmark;
}

ActionRegistry deterministic_registry(std::atomic<int>* executions = nullptr) {
  ActionRegistry registry;
  registry.register_action("compute", [executions](const Context& context) {
    if (executions != nullptr) executions->fetch_add(1);
    return "value: v" + context.at("shard") + "\n";
  });
  return registry;
}

std::string render(const RunResult& result) {
  return result.table({"shard", "value", "status"}).render();
}

// --- determinism across job counts ------------------------------------------------

TEST(Sweep, ParallelTableMatchesSequential) {
  const Benchmark benchmark = shard_benchmark();
  const ActionRegistry registry = deterministic_registry();

  const RunResult sequential = benchmark.run(registry, {});
  SweepOptions parallel;
  parallel.jobs = 8;
  const RunResult concurrent = benchmark.run(registry, {}, parallel);

  EXPECT_EQ(render(sequential), render(concurrent));
  ASSERT_EQ(concurrent.workpackages.size(), 8u);
  // Results land in expansion order regardless of completion order.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(concurrent.workpackages[i].context.at("shard"),
              std::to_string(i));
  }
}

TEST(Sweep, JobsZeroUsesHardwareThreads) {
  const Benchmark benchmark = shard_benchmark();
  SweepOptions sweep;
  sweep.jobs = 0;
  const RunResult result =
      benchmark.run(deterministic_registry(), {}, sweep);
  EXPECT_EQ(render(benchmark.run(deterministic_registry(), {})),
            render(result));
}

// Per-workpackage retry jitter streams are derived from (seed, expansion
// index), so attempts and backoff schedules are byte-identical between
// jobs=1 and jobs=8 even though completion order differs.
TEST(Sweep, FaultSchedulesIdenticalAcrossJobCounts) {
  const auto run_flaky = [](int jobs) {
    Benchmark benchmark = shard_benchmark();
    // Every shard's first two attempts fail; per-shard counters make the
    // failure pattern a function of the context, not of global order.
    auto counters = std::make_shared<std::map<std::string, int>>();
    auto mutex = std::make_shared<std::mutex>();
    ActionRegistry registry;
    registry.register_action(
        "compute", [counters, mutex](const Context& context) -> std::string {
          {
            std::lock_guard<std::mutex> lock(*mutex);
            if ((*counters)[context.at("shard")]++ < 2) {
              throw Error("transient");
            }
          }
          return "value: v" + context.at("shard") + "\n";
        });
    RunOptions options;
    options.retry.max_attempts = 4;
    options.retry.seed = 1234;
    options.sleeper = [](double) {};  // no real sleeping
    SweepOptions sweep;
    sweep.jobs = jobs;
    return benchmark.run(registry, {}, options, sweep);
  };

  const RunResult sequential = run_flaky(1);
  const RunResult concurrent = run_flaky(8);
  ASSERT_EQ(sequential.workpackages.size(), concurrent.workpackages.size());
  for (std::size_t i = 0; i < sequential.workpackages.size(); ++i) {
    const auto& seq = sequential.workpackages[i].step_outcomes;
    const auto& par = concurrent.workpackages[i].step_outcomes;
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t s = 0; s < seq.size(); ++s) {
      EXPECT_EQ(seq[s].status, par[s].status);
      EXPECT_EQ(seq[s].attempts, par[s].attempts);
      EXPECT_DOUBLE_EQ(seq[s].backoff_s, par[s].backoff_s);  // byte-identical
    }
  }
  EXPECT_EQ(render(sequential), render(concurrent));
}

// A strict parallel run drains all in-flight workpackages, then rethrows the
// error of the lowest expansion index — the same failure a sequential run
// hits first.
TEST(Sweep, StrictParallelRethrowsLowestExpansionIndexError) {
  Benchmark benchmark = shard_benchmark();
  ActionRegistry registry;
  registry.register_action("compute",
                           [](const Context& context) -> std::string {
                             const std::string& shard = context.at("shard");
                             if (shard == "2" || shard == "6") {
                               throw Error("boom shard " + shard);
                             }
                             return "value: v" + shard + "\n";
                           });
  SweepOptions sweep;
  sweep.jobs = 8;
  try {
    benchmark.run(registry, {}, sweep);
    FAIL() << "expected Error from failing workpackage";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom shard 2");
  }
}

// --- result cache -----------------------------------------------------------------

TEST(Sweep, WarmCacheSkipsAllCompletedWorkpackages) {
  const std::string cache = temp_path("caraml_sweep_cache.jsonl");
  const Benchmark benchmark = shard_benchmark();
  SweepOptions sweep;
  sweep.jobs = 4;
  sweep.cache_path = cache;

  std::atomic<int> executions{0};
  const RunResult cold =
      benchmark.run(deterministic_registry(&executions), {}, sweep);
  EXPECT_EQ(executions.load(), 8);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 8u);

  const RunResult warm =
      benchmark.run(deterministic_registry(&executions), {}, sweep);
  EXPECT_EQ(executions.load(), 8) << "warm run must not re-execute";
  EXPECT_EQ(warm.cache_hits, 8u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(render(cold), render(warm));
  for (const auto& wp : warm.workpackages) {
    EXPECT_TRUE(wp.from_cache);
  }
}

TEST(Sweep, FailedWorkpackagesAreRetriedNotCached) {
  const std::string cache = temp_path("caraml_sweep_failcache.jsonl");
  Benchmark benchmark = shard_benchmark();
  // Shard 3 fails on the first sweep only; all other shards succeed.
  auto first_pass = std::make_shared<std::atomic<bool>>(true);
  ActionRegistry registry;
  registry.register_action(
      "compute", [first_pass](const Context& context) -> std::string {
        if (context.at("shard") == "3" && first_pass->load()) {
          throw Error("transient outage");
        }
        return "value: v" + context.at("shard") + "\n";
      });
  RunOptions options;
  options.retry.max_attempts = 1;
  options.sleeper = [](double) {};
  SweepOptions sweep;
  sweep.cache_path = cache;

  const RunResult first = benchmark.run(registry, {}, options, sweep);
  EXPECT_EQ(first.workpackages[3].status, "failed");

  first_pass->store(false);
  const RunResult second = benchmark.run(registry, {}, options, sweep);
  EXPECT_EQ(second.cache_hits, 7u) << "only completed workpackages cached";
  EXPECT_EQ(second.cache_misses, 1u);
  EXPECT_EQ(second.workpackages[3].status, "ok");
  EXPECT_FALSE(second.workpackages[3].from_cache);
}

TEST(Sweep, CacheSkipsMalformedLines) {
  const std::string path = temp_path("caraml_sweep_torn.jsonl");
  {
    SweepCache cache(path);
    Workpackage wp;
    wp.status = "ok";
    wp.outputs["work"] = "value: 1\n";
    cache.append("fp-keep", "demo", wp);
  }
  {
    // Simulate a line torn by a crashed writer.
    std::ofstream out(path, std::ios::app);
    out << "{\"schema_version\":1,\"fingerpr\n";
  }
  SweepCache reopened(path);
  EXPECT_EQ(reopened.size(), 1u);
  Workpackage out;
  EXPECT_TRUE(reopened.lookup("fp-keep", out));
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.outputs.at("work"), "value: 1\n");
}

// --- fingerprints -----------------------------------------------------------------

TEST(Sweep, FingerprintSensitiveToEveryIdentityField) {
  const Context context{{"shard", "0"}};
  const std::vector<std::pair<std::string, std::string>> steps = {
      {"work", "compute"}};
  const std::string base =
      workpackage_fingerprint("demo", context, steps, "");
  EXPECT_EQ(base, workpackage_fingerprint("demo", context, steps, ""));
  EXPECT_NE(base, workpackage_fingerprint("other", context, steps, ""));
  EXPECT_NE(base, workpackage_fingerprint("demo", {{"shard", "1"}}, steps, ""));
  EXPECT_NE(base, workpackage_fingerprint("demo", context,
                                          {{"work", "other_action"}}, ""));
  EXPECT_NE(base, workpackage_fingerprint("demo", context, steps, "fault-x"));
  // Adjacent fields must not alias.
  EXPECT_NE(workpackage_fingerprint("ab", {{"c", "d"}}, {}, ""),
            workpackage_fingerprint("a", {{"bc", "d"}}, {}, ""));
}

// --- wall-clock speedup -----------------------------------------------------------

TEST(Sweep, ParallelSweepIsFasterThanSequential) {
  Benchmark benchmark = shard_benchmark();
  ActionRegistry registry;
  registry.register_action("compute", [](const Context& context) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return "value: v" + context.at("shard") + "\n";
  });
  SweepOptions sweep;
  sweep.jobs = 8;
  const auto start = std::chrono::steady_clock::now();
  const RunResult result = benchmark.run(registry, {}, sweep);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(result.workpackages.size(), 8u);
  // Sequential would be ~0.8 s; 8 jobs should land near 0.1 s. The loose
  // bound keeps the assertion robust on loaded CI machines.
  EXPECT_LT(elapsed, 0.45);
}

}  // namespace
}  // namespace caraml::jube
