// Extension benchmark: LLM *inference* across the Table-I GPU systems — the
// paper's announced future work (§VI: "expand the suite by including
// additional AI training and inference benchmarks"). Reports the standard
// serving metrics for the 800M GPT with a 512-token prompt / 128 generated
// tokens, sweeping the concurrent batch.
#include <iostream>

#include "core/inference.hpp"
#include "topo/specs.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Extension: LLM inference (800M GPT, prompt 512, "
               "generate 128) ===\n\n";

  for (const char* metric :
       {"tokens_per_s_total", "ttft_ms", "energy_wh_per_1k_tokens"}) {
    std::vector<std::string> headers = {std::string("batch")};
    const std::vector<std::string> systems = {"GH200", "WAIH100", "H100",
                                              "A100", "MI250"};
    for (const auto& tag : systems) {
      headers.push_back(
          topo::SystemRegistry::instance().by_tag(tag).display_name);
    }
    TextTable table(headers);

    for (std::int64_t batch : {1, 4, 16, 64, 256}) {
      std::vector<std::string> row = {std::to_string(batch)};
      for (const auto& tag : systems) {
        core::InferenceConfig config;
        config.system_tag = tag;
        config.batch = batch;
        const auto result = core::run_llm_inference(config);
        if (result.oom) {
          row.push_back("OOM");
          continue;
        }
        double value = 0.0;
        if (std::string(metric) == "tokens_per_s_total") {
          value = result.tokens_per_s_total;
        } else if (std::string(metric) == "ttft_ms") {
          value = result.time_to_first_token_s * 1e3;
        } else {
          value = result.energy_per_1k_tokens_wh;
        }
        row.push_back(units::format_fixed(value, 2));
      }
      table.add_row(std::move(row));
    }
    std::cout << "--- " << metric << " ---\n" << table.render() << "\n";
  }

  std::cout << "(Decode is memory-bandwidth bound: the GH200's 4 TB/s HBM3 "
               "dominates small-batch serving; batching amortizes the weight "
               "reads until KV-cache traffic or compute takes over.)\n";
  return 0;
}
