// google-benchmark microbenchmarks of the CPU tensor substrate: the GEMM,
// conv2d and softmax kernels that execute the real (CPU) training path.
//
// All benchmarks use wall time (UseRealTime): the kernels run on the process
// thread pool, so the main thread's CPU time measures dispatch overhead, not
// compute. items_per_second for the GEMMs is FLOPs (2*m*n*k).
//
// scripts/bench_perf.py consumes --benchmark_format=json output from this
// binary; the committed baseline (BENCH_tensor.json) records single-thread
// numbers (CARAML_NUM_THREADS=1) so comparisons are stable across machines
// with different core counts.
#include <benchmark/benchmark.h>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using caraml::Rng;
using caraml::tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_MatmulNt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_MatmulTn(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_tn(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_Conv2d(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(1);
  const Tensor input = Tensor::randn({4, channels, 16, 16}, rng);
  const Tensor weight = Tensor::randn({channels, channels, 3, 3}, rng);
  caraml::tensor::Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  for (auto _ : state) {
    Tensor out = caraml::tensor::conv2d(input, weight, args);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32)->UseRealTime();

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(1);
  const Tensor input = Tensor::randn({4, channels, 16, 16}, rng);
  const Tensor weight = Tensor::randn({channels, channels, 3, 3}, rng);
  caraml::tensor::Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  const Tensor out = caraml::tensor::conv2d(input, weight, args);
  const Tensor grad = Tensor::randn(out.shape(), rng);
  for (auto _ : state) {
    Tensor dw = caraml::tensor::conv2d_backward_weight(grad, input,
                                                       weight.shape(), args);
    Tensor dx = caraml::tensor::conv2d_backward_input(grad, weight,
                                                      input.shape(), args);
    benchmark::DoNotOptimize(dw.data());
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16)->Arg(32)->UseRealTime();

void BM_SoftmaxRows(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({rows, 512}, rng);
  for (auto _ : state) {
    Tensor out = caraml::tensor::softmax_rows(a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 512);
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(512)->UseRealTime();

void BM_LayerNormForward(benchmark::State& state) {
  Rng rng(1);
  const Tensor a = Tensor::randn({256, 256}, rng);
  for (auto _ : state) {
    // Inline layer-norm math via gelu as a stand-in elementwise cost probe.
    Tensor out = caraml::tensor::gelu(a);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LayerNormForward)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
