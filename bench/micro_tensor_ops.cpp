// google-benchmark microbenchmarks of the CPU tensor substrate: the GEMM,
// conv2d and softmax kernels that execute the real (CPU) training path.
//
// All benchmarks use wall time (UseRealTime): the kernels run on the process
// thread pool, so the main thread's CPU time measures dispatch overhead, not
// compute. items_per_second for the GEMMs is FLOPs (2*m*n*k).
//
// scripts/bench_perf.py consumes --benchmark_format=json output from this
// binary. Two committed baselines gate regressions: BENCH_tensor.json records
// single-thread numbers (CARAML_NUM_THREADS=1) and BENCH_tensor_mt.json
// 8-thread numbers; `bench_perf.py scaling` additionally gates the MT/ST
// speedup of every benchmark present in both, so threading regressions that
// leave single-thread time intact still fail CI.
#include <benchmark/benchmark.h>

#include <cmath>

#include "tensor/dtype.hpp"
#include "tensor/fused.hpp"
#include "tensor/gemm.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace {

using caraml::Rng;
using caraml::tensor::Bf16Tensor;
using caraml::tensor::QuantizedTensor;
using caraml::tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_MatmulNt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

void BM_MatmulTn(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_tn(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulTn)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

// --- dtype variants ----------------------------------------------------------
//
// Naming contract for `bench_perf.py dtype-speedup`: a dtype benchmark pairs
// with the fp32 benchmark whose name is the same minus the "Bf16" / "Int8"
// token (BM_MatmulBf16Wide/4096 <-> BM_MatmulWide/4096). The Wide shapes are
// the bandwidth-bound decode case (8 rows against a square weight): there the
// GEMM streams op(B) once per call and the 2x / 4x smaller storage of
// bf16 / int8 converts directly into speedup. The cubic shapes are
// compute-bound on this substrate and document that dtype storage does NOT
// help when the packing already amortizes the traffic.

void BM_MatmulBf16(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Bf16Tensor a = Bf16Tensor::from_float(Tensor::randn({n, n}, rng));
  const Bf16Tensor b = Bf16Tensor::from_float(Tensor::randn({n, n}, rng));
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_bf16(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulBf16)->Arg(256)->UseRealTime();

void BM_MatmulInt8(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const QuantizedTensor a =
      caraml::tensor::quantize_per_tensor(Tensor::randn({n, n}, rng));
  const QuantizedTensor b =
      caraml::tensor::quantize_per_channel_rows(Tensor::randn({n, n}, rng));
  Tensor c({n, n});
  for (auto _ : state) {
    c.fill(0.0f);  // gemm_i8 accumulates into C
    caraml::tensor::detail::gemm_i8(true, n, n, n, a.data.data(), n,
                                    b.data.data(), n, a.scales[0],
                                    b.scales.data(), c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulInt8)->Arg(256)->UseRealTime();

// fp32 anchor of the Wide pairs: 8 decode rows against an [n, n] weight,
// matmul_nt like every Linear forward.
void BM_MatmulWide(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({8, n}, rng);
  const Tensor w = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_nt(a, w);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 8 * n * n);
}
BENCHMARK(BM_MatmulWide)->Arg(2048)->Arg(4096)->UseRealTime();

void BM_MatmulBf16Wide(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Bf16Tensor a = Bf16Tensor::from_float(Tensor::randn({8, n}, rng));
  const Bf16Tensor w = Bf16Tensor::from_float(Tensor::randn({n, n}, rng));
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_nt_bf16(a, w);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 8 * n * n);
}
BENCHMARK(BM_MatmulBf16Wide)->Arg(2048)->Arg(4096)->UseRealTime();

void BM_MatmulInt8Wide(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a_f32 = Tensor::randn({8, n}, rng);
  const QuantizedTensor w =
      caraml::tensor::quantize_per_channel_rows(Tensor::randn({n, n}, rng));
  Tensor c({8, n});
  for (auto _ : state) {
    // Activations quantize per forward in the inference path — that pass is
    // part of what the Wide pair measures (it is O(m·k) next to O(m·k·n)).
    const QuantizedTensor a = caraml::tensor::quantize_per_tensor(a_f32);
    c.fill(0.0f);
    caraml::tensor::detail::gemm_i8(true, 8, n, n, a.data.data(), n,
                                    w.data.data(), n, a.scales[0],
                                    w.scales.data(), c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 8 * n * n);
}
BENCHMARK(BM_MatmulInt8Wide)->Arg(2048)->Arg(4096)->UseRealTime();

void BM_Conv2d(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(1);
  const Tensor input = Tensor::randn({4, channels, 16, 16}, rng);
  const Tensor weight = Tensor::randn({channels, channels, 3, 3}, rng);
  caraml::tensor::Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  for (auto _ : state) {
    Tensor out = caraml::tensor::conv2d(input, weight, args);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32)->UseRealTime();

void BM_Conv2dBackward(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(1);
  const Tensor input = Tensor::randn({4, channels, 16, 16}, rng);
  const Tensor weight = Tensor::randn({channels, channels, 3, 3}, rng);
  caraml::tensor::Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  const Tensor out = caraml::tensor::conv2d(input, weight, args);
  const Tensor grad = Tensor::randn(out.shape(), rng);
  for (auto _ : state) {
    Tensor dw = caraml::tensor::conv2d_backward_weight(grad, input,
                                                       weight.shape(), args);
    Tensor dx = caraml::tensor::conv2d_backward_input(grad, weight,
                                                      input.shape(), args);
    benchmark::DoNotOptimize(dw.data());
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16)->Arg(32)->UseRealTime();

void BM_SoftmaxRows(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({rows, 512}, rng);
  for (auto _ : state) {
    Tensor out = caraml::tensor::softmax_rows(a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 512);
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(512)->UseRealTime();

void BM_LayerNormForward(benchmark::State& state) {
  Rng rng(1);
  const Tensor a = Tensor::randn({256, 256}, rng);
  for (auto _ : state) {
    // Inline layer-norm math via gelu as a stand-in elementwise cost probe.
    Tensor out = caraml::tensor::gelu(a);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LayerNormForward)->UseRealTime();

// --- causal attention: fused streaming kernel vs dense head loop ------------
//
// GPT-style shape: B=4, H=8, C=256 (head_dim 32), T from the benchmark arg.
// items_per_second is tokens/s (B*T per pass) — the unit the scaling gate
// tracks across thread counts. The head-loop variants reproduce the dense
// per-(b, h) composition (slice copies, [T, T] scores, softmax, [T, T]·V)
// that the fused kernel replaces, as the perf oracle for the ≥2x target.

constexpr std::int64_t kAttnBatch = 4;
constexpr std::int64_t kAttnHeads = 8;
constexpr std::int64_t kAttnEmbed = 256;

Tensor attention_head_slice(const Tensor& qkv, std::int64_t b, std::int64_t h,
                            std::int64_t which, std::int64_t time,
                            std::int64_t embed, std::int64_t head_dim) {
  Tensor out({time, head_dim});
  const std::int64_t base_col = which * embed + h * head_dim;
  for (std::int64_t t = 0; t < time; ++t) {
    const float* src = qkv.data() + (b * time + t) * 3 * embed + base_col;
    float* dst = out.data() + t * head_dim;
    for (std::int64_t j = 0; j < head_dim; ++j) dst[j] = src[j];
  }
  return out;
}

// Dense head-loop forward; fills heads_out and (when non-null) the per-pair
// attention matrices the dense backward consumes.
void head_loop_forward(const Tensor& qkv, std::int64_t time,
                       Tensor* heads_out, std::vector<Tensor>* att_cache) {
  const std::int64_t hd = kAttnEmbed / kAttnHeads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  caraml::parallel_for_range(
      0, static_cast<std::size_t>(kAttnBatch * kAttnHeads), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b = static_cast<std::int64_t>(idx) / kAttnHeads;
          const std::int64_t h = static_cast<std::int64_t>(idx) % kAttnHeads;
          const Tensor q =
              attention_head_slice(qkv, b, h, 0, time, kAttnEmbed, hd);
          const Tensor k =
              attention_head_slice(qkv, b, h, 1, time, kAttnEmbed, hd);
          const Tensor v =
              attention_head_slice(qkv, b, h, 2, time, kAttnEmbed, hd);
          Tensor scores = caraml::tensor::matmul_nt(q, k);
          for (std::int64_t i = 0; i < time; ++i) {
            for (std::int64_t j = 0; j < time; ++j) {
              if (j > i) {
                scores[i * time + j] = -1e30f;
              } else {
                scores[i * time + j] *= scale;
              }
            }
          }
          Tensor att = caraml::tensor::softmax_rows(scores);
          Tensor y = caraml::tensor::matmul(att, v);
          if (att_cache != nullptr) (*att_cache)[idx] = std::move(att);
          for (std::int64_t t = 0; t < time; ++t) {
            float* dst =
                heads_out->data() + (b * time + t) * kAttnEmbed + h * hd;
            const float* src = y.data() + t * hd;
            for (std::int64_t j = 0; j < hd; ++j) dst[j] = src[j];
          }
        }
      });
}

void head_loop_backward(const Tensor& qkv, const std::vector<Tensor>& att,
                        const Tensor& d_heads, std::int64_t time,
                        Tensor* d_qkv) {
  const std::int64_t hd = kAttnEmbed / kAttnHeads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  caraml::parallel_for_range(
      0, static_cast<std::size_t>(kAttnBatch * kAttnHeads), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b = static_cast<std::int64_t>(idx) / kAttnHeads;
          const std::int64_t h = static_cast<std::int64_t>(idx) % kAttnHeads;
          const Tensor q =
              attention_head_slice(qkv, b, h, 0, time, kAttnEmbed, hd);
          const Tensor k =
              attention_head_slice(qkv, b, h, 1, time, kAttnEmbed, hd);
          const Tensor v =
              attention_head_slice(qkv, b, h, 2, time, kAttnEmbed, hd);
          Tensor dy({time, hd});
          for (std::int64_t t = 0; t < time; ++t) {
            const float* src =
                d_heads.data() + (b * time + t) * kAttnEmbed + h * hd;
            float* dst = dy.data() + t * hd;
            for (std::int64_t j = 0; j < hd; ++j) dst[j] = src[j];
          }
          Tensor datt = caraml::tensor::matmul_nt(dy, v);
          Tensor dv = caraml::tensor::matmul_tn(att[idx], dy);
          Tensor dscores =
              caraml::tensor::softmax_rows_backward(att[idx], datt);
          for (std::int64_t i = 0; i < time; ++i) {
            for (std::int64_t j = 0; j < time; ++j) {
              if (j > i) {
                dscores[i * time + j] = 0.0f;
              } else {
                dscores[i * time + j] *= scale;
              }
            }
          }
          Tensor dq = caraml::tensor::matmul(dscores, k);
          Tensor dk = caraml::tensor::matmul_tn(dscores, q);
          for (std::int64_t t = 0; t < time; ++t) {
            float* dst = d_qkv->data() + (b * time + t) * 3 * kAttnEmbed;
            for (std::int64_t j = 0; j < hd; ++j) {
              dst[h * hd + j] += dq[t * hd + j];
              dst[kAttnEmbed + h * hd + j] += dk[t * hd + j];
              dst[2 * kAttnEmbed + h * hd + j] += dv[t * hd + j];
            }
          }
        }
      });
}

void BM_AttentionForward(benchmark::State& state) {
  const std::int64_t time = state.range(0);
  Rng rng(1);
  const Tensor qkv = Tensor::randn({kAttnBatch * time, 3 * kAttnEmbed}, rng);
  Tensor heads_out({kAttnBatch * time, kAttnEmbed});
  Tensor lse({kAttnBatch * kAttnHeads, time});
  for (auto _ : state) {
    caraml::tensor::fused::causal_attention_forward(
        qkv.data(), kAttnBatch, time, kAttnEmbed, kAttnHeads,
        heads_out.data(), lse.data());
    benchmark::DoNotOptimize(heads_out.data());
  }
  state.SetItemsProcessed(state.iterations() * kAttnBatch * time);
}
BENCHMARK(BM_AttentionForward)->Arg(256)->UseRealTime();

void BM_AttentionBackward(benchmark::State& state) {
  const std::int64_t time = state.range(0);
  Rng rng(1);
  const Tensor qkv = Tensor::randn({kAttnBatch * time, 3 * kAttnEmbed}, rng);
  const Tensor d_heads =
      Tensor::randn({kAttnBatch * time, kAttnEmbed}, rng);
  Tensor heads_out({kAttnBatch * time, kAttnEmbed});
  Tensor lse({kAttnBatch * kAttnHeads, time});
  caraml::tensor::fused::causal_attention_forward(
      qkv.data(), kAttnBatch, time, kAttnEmbed, kAttnHeads, heads_out.data(),
      lse.data());
  Tensor d_qkv({kAttnBatch * time, 3 * kAttnEmbed});
  for (auto _ : state) {
    d_qkv.fill(0.0f);  // the kernel accumulates
    caraml::tensor::fused::causal_attention_backward(
        qkv.data(), heads_out.data(), d_heads.data(), lse.data(), kAttnBatch,
        time, kAttnEmbed, kAttnHeads, d_qkv.data());
    benchmark::DoNotOptimize(d_qkv.data());
  }
  state.SetItemsProcessed(state.iterations() * kAttnBatch * time);
}
BENCHMARK(BM_AttentionBackward)->Arg(256)->UseRealTime();

void BM_AttentionHeadLoopForward(benchmark::State& state) {
  const std::int64_t time = state.range(0);
  Rng rng(1);
  const Tensor qkv = Tensor::randn({kAttnBatch * time, 3 * kAttnEmbed}, rng);
  Tensor heads_out({kAttnBatch * time, kAttnEmbed});
  for (auto _ : state) {
    head_loop_forward(qkv, time, &heads_out, nullptr);
    benchmark::DoNotOptimize(heads_out.data());
  }
  state.SetItemsProcessed(state.iterations() * kAttnBatch * time);
}
BENCHMARK(BM_AttentionHeadLoopForward)->Arg(256)->UseRealTime();

void BM_AttentionHeadLoopBackward(benchmark::State& state) {
  const std::int64_t time = state.range(0);
  Rng rng(1);
  const Tensor qkv = Tensor::randn({kAttnBatch * time, 3 * kAttnEmbed}, rng);
  const Tensor d_heads =
      Tensor::randn({kAttnBatch * time, kAttnEmbed}, rng);
  Tensor heads_out({kAttnBatch * time, kAttnEmbed});
  std::vector<Tensor> att(
      static_cast<std::size_t>(kAttnBatch * kAttnHeads));
  head_loop_forward(qkv, time, &heads_out, &att);
  Tensor d_qkv({kAttnBatch * time, 3 * kAttnEmbed});
  for (auto _ : state) {
    d_qkv.fill(0.0f);
    head_loop_backward(qkv, att, d_heads, time, &d_qkv);
    benchmark::DoNotOptimize(d_qkv.data());
  }
  state.SetItemsProcessed(state.iterations() * kAttnBatch * time);
}
BENCHMARK(BM_AttentionHeadLoopBackward)->Arg(256)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
