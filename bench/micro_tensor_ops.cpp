// google-benchmark microbenchmarks of the CPU tensor substrate: the GEMM,
// conv2d and softmax kernels that execute the real (CPU) training path.
#include <benchmark/benchmark.h>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using caraml::Rng;
using caraml::tensor::Tensor;

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = caraml::tensor::matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2d(benchmark::State& state) {
  const std::int64_t channels = state.range(0);
  Rng rng(1);
  const Tensor input = Tensor::randn({4, channels, 16, 16}, rng);
  const Tensor weight = Tensor::randn({channels, channels, 3, 3}, rng);
  caraml::tensor::Conv2dArgs args;
  args.stride = 1;
  args.padding = 1;
  for (auto _ : state) {
    Tensor out = caraml::tensor::conv2d(input, weight, args);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32);

void BM_SoftmaxRows(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({rows, 512}, rng);
  for (auto _ : state) {
    Tensor out = caraml::tensor::softmax_rows(a);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 512);
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(512);

void BM_LayerNormForward(benchmark::State& state) {
  Rng rng(1);
  const Tensor a = Tensor::randn({256, 256}, rng);
  for (auto _ : state) {
    // Inline layer-norm math via gelu as a stand-in elementwise cost probe.
    Tensor out = caraml::tensor::gelu(a);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_LayerNormForward);

}  // namespace

BENCHMARK_MAIN();
