// Reproduces paper Table III: ResNet50 trained for one epoch on a single
// GC200 IPU, global batch 16..4096 — throughput is flat because the on-chip
// SRAM caps the micro-batch at 16.
#include <iostream>

#include "core/caraml.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Table III: ResNet50 on a single IPU GC200 ===\n\n";

  struct PaperRow {
    std::int64_t batch;
    double images_per_s, energy_wh, images_per_wh;
  };
  const PaperRow paper[] = {
      {16, 1827.72, 32.09, 39925.87},   {32, 1857.90, 31.73, 40382.19},
      {64, 1879.29, 31.75, 40346.18},   {128, 1888.11, 31.67, 40452.50},
      {256, 1887.23, 31.58, 40563.65},  {512, 1891.74, 31.49, 40689.85},
      {1024, 1893.07, 31.50, 40668.79}, {2048, 1889.87, 31.53, 40636.28},
      {4096, 1891.58, 31.51, 40660.14},
  };

  TextTable table({"batch", "images/s", "paper", "Wh/epoch", "paper",
                   "images/Wh", "paper"});
  for (const auto& row : paper) {
    const auto result = core::run_resnet_ipu(row.batch, /*ipus=*/1);
    table.add_row({std::to_string(row.batch),
                   units::format_fixed(result.images_per_s_total, 2),
                   units::format_fixed(row.images_per_s, 2),
                   units::format_fixed(result.energy_per_epoch_wh, 2),
                   units::format_fixed(row.energy_wh, 2),
                   units::format_fixed(result.images_per_wh, 2),
                   units::format_fixed(row.images_per_wh, 2)});
  }
  std::cout << table.render();
  return 0;
}
