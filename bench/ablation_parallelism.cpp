// Ablation study: parallelization layouts for the larger GPT configurations
// the paper ships but does not plot (§III-A1: "JUBE configurations for
// models containing 13B and 175B parameters are provided in the suite...
// tested on NVIDIA GH200 devices"), plus the pipeline-schedule ablation
// (GPipe vs 1F1B bubble) behind the paper's §IV-A discussion.
#include <iostream>

#include "core/caraml.hpp"
#include "par/pipeline.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Ablation A: 13B GPT on one JEDI node (4x GH200), "
               "dp/tp/pp layouts ===\n\n";
  {
    TextTable table({"layout (dp,tp,pp)", "fits?", "tokens/s/GPU", "Wh/GPU/h",
                     "tokens/Wh"});
    struct Layout {
      int dp, tp, pp;
    };
    for (const Layout& l :
         {Layout{4, 1, 1}, Layout{1, 4, 1}, Layout{1, 1, 4}, Layout{2, 2, 1},
          Layout{1, 2, 2}, Layout{2, 1, 2}}) {
      core::LlmRunConfig config;
      config.system_tag = "JEDI";
      config.model = models::GptConfig::gpt_13b();
      config.global_batch = 256;
      config.micro_batch = 1;
      config.data_parallel = l.dp;
      config.tensor_parallel = l.tp;
      config.pipeline_parallel = l.pp;
      const std::string layout = "(" + std::to_string(l.dp) + "," +
                                 std::to_string(l.tp) + "," +
                                 std::to_string(l.pp) + ")";
      const auto result = core::run_llm_gpu(config);
      if (result.oom) {
        table.add_row({layout, "OOM", "-", "-", "-"});
        continue;
      }
      table.add_row({layout, "yes",
                     units::format_fixed(result.tokens_per_s_per_gpu, 1),
                     units::format_fixed(result.energy_per_gpu_wh, 1),
                     units::format_fixed(result.tokens_per_wh, 1)});
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "=== Ablation B: 175B GPT across JEDI nodes (tp=4 fixed) "
               "===\n\n";
  {
    TextTable table({"nodes", "pp", "dp", "fits?", "tokens/s/GPU",
                     "tokens/s total"});
    struct Row {
      int nodes, pp, dp;
    };
    for (const Row& r : {Row{4, 4, 1}, Row{8, 8, 1}, Row{16, 16, 1},
                         Row{16, 8, 2}, Row{16, 4, 4}}) {
      core::LlmRunConfig config;
      config.system_tag = "JEDI";
      config.model = models::GptConfig::gpt_175b();
      config.global_batch = 1024;
      config.micro_batch = 1;
      config.num_nodes = r.nodes;
      config.tensor_parallel = 4;
      config.pipeline_parallel = r.pp;
      config.data_parallel = r.dp;
      const auto result = core::run_llm_gpu(config);
      if (result.oom) {
        table.add_row({std::to_string(r.nodes), std::to_string(r.pp),
                       std::to_string(r.dp), "OOM", "-", "-"});
        continue;
      }
      table.add_row({std::to_string(r.nodes), std::to_string(r.pp),
                     std::to_string(r.dp), "yes",
                     units::format_fixed(result.tokens_per_s_per_gpu, 1),
                     units::format_fixed(result.tokens_per_s_total, 1)});
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "=== Ablation C: pipeline schedule bubble (GPipe vs 1F1B) "
               "===\n\n";
  {
    TextTable table({"stages", "micro-batches", "GPipe bubble", "1F1B bubble",
                     "closed form (p-1)/(m+p-1)"});
    for (int stages : {2, 4, 8}) {
      for (int micro : {4, 8, 32, 128}) {
        const auto gpipe = par::build_pipeline_schedule(
            par::PipelineScheduleKind::kGPipe, stages, micro);
        const auto one_f = par::build_pipeline_schedule(
            par::PipelineScheduleKind::kOneFOneB, stages, micro);
        table.add_row({std::to_string(stages), std::to_string(micro),
                       units::format_fixed(gpipe.bubble_fraction, 4),
                       units::format_fixed(one_f.bubble_fraction, 4),
                       units::format_fixed(
                           par::gpipe_bubble_fraction(stages, micro), 4)});
      }
    }
    std::cout << table.render();
    std::cout << "\n(The IPU's low GPT throughput at small batch in Table II "
                 "is this fill/drain bubble; both schedules converge as "
                 "micro-batches grow.)\n\n";
  }

  std::cout << "=== Ablation D: Megatron memory optimizations (13B, tp=4 on "
               "JEDI) ===\n\n";
  {
    // Activation recomputation trades one extra forward pass (flops x4/3)
    // for activation memory; flash attention removes the quadratic score
    // matrix; sequence parallelism shards the remaining activations.
    TextTable table({"configuration", "fits?", "memory/device",
                     "tokens/s/GPU"});
    struct Variant {
      const char* name;
      bool flash, recompute, seq_par;
      int micro;
    };
    for (const Variant& v : {
             Variant{"flash + seq-parallel (paper default)", true, false, true, 2},
             Variant{"flash only", true, false, false, 2},
             Variant{"no flash attention", false, false, false, 2},
             Variant{"no flash + full recompute", false, true, false, 2},
             Variant{"flash + recompute (max batch)", true, true, false, 8},
         }) {
      core::LlmRunConfig config;
      config.system_tag = "JEDI";
      config.model = models::GptConfig::gpt_13b();
      config.model.flash_attention = v.flash;
      config.model.activation_recompute = v.recompute;
      config.model.sequence_parallel = v.seq_par;
      config.global_batch = 64;
      config.micro_batch = v.micro;
      config.tensor_parallel = 4;
      const auto result = core::run_llm_gpu(config);
      if (result.oom) {
        table.add_row({v.name, "OOM", "-", "-"});
        continue;
      }
      table.add_row({v.name, "yes",
                     units::format_fixed(
                         result.memory_per_device_bytes / 1e9, 1) + " GB",
                     units::format_fixed(result.tokens_per_s_per_gpu, 1)});
    }
    std::cout << table.render()
              << "\n(Recompute lowers memory but costs an extra forward pass "
                 "— the throughput column drops by ~25%; without flash "
                 "attention the quadratic score matrix blows the budget.)\n";
  }
  return 0;
}
