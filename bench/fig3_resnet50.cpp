// Reproduces paper Fig. 3: ResNet50 training on a single device — throughput
// (images/s), energy for a full ImageNet epoch (Wh) and energy efficiency
// (images/Wh), global batch sizes 16..2048, on all GPU systems plus the
// MI250 GCD/GPU split (1 GCD vs 1 MI250 = 2 GCDs with dp=2).
#include <iostream>

#include "core/caraml.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Fig. 3: ResNet50 training, single device, ImageNet ===\n\n";

  for (const char* metric : {"images_per_s", "energy_per_epoch_wh",
                             "images_per_wh"}) {
    std::vector<std::string> headers = {std::string("batch")};
    for (const auto& series : core::fig3_series()) headers.push_back(series.label);
    TextTable table(headers);

    for (std::int64_t batch : core::fig3_batches()) {
      std::vector<std::string> row = {std::to_string(batch)};
      for (const auto& series : core::fig3_series()) {
        core::ResnetRunConfig config;
        config.system_tag = series.tag;
        config.devices = series.devices;
        config.global_batch = batch;
        if (batch % series.devices != 0) {
          row.push_back("n/a");
          continue;
        }
        const auto result = core::run_resnet_gpu(config);
        if (result.oom) {
          row.push_back("OOM");
          continue;
        }
        double value = 0.0;
        if (std::string(metric) == "images_per_s") {
          value = result.images_per_s_total;
        } else if (std::string(metric) == "energy_per_epoch_wh") {
          value = result.energy_per_epoch_wh;
        } else {
          value = result.images_per_wh;
        }
        row.push_back(units::format_fixed(value, 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "--- " << metric << " ---\n" << table.render() << "\n";
  }
  return 0;
}
