// Reproduces paper Fig. 2: LLM training throughput (tokens/s per GPU),
// energy per GPU for one hour of training (Wh), and energy efficiency
// (tokens/Wh) for the 800M GPT model, global batch sizes 16..4096, on all
// NVIDIA/AMD systems (incl. the MI250 GCD/GPU split).
#include <iostream>

#include "core/caraml.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Fig. 2: LLM training, 800M GPT, micro-batch 4 ===\n\n";

  for (const char* metric : {"tokens_per_s_per_gpu", "energy_per_gpu_wh_1h",
                             "tokens_per_wh"}) {
    std::vector<std::string> headers = {std::string("batch")};
    for (const auto& series : core::fig2_series()) headers.push_back(series.label);
    TextTable table(headers);

    for (std::int64_t batch : core::fig2_batches()) {
      std::vector<std::string> row = {std::to_string(batch)};
      for (const auto& series : core::fig2_series()) {
        core::LlmRunConfig config;
        config.system_tag = series.tag;
        config.devices = series.devices;
        config.global_batch = batch;
        const int dp =
            series.devices > 0
                ? series.devices
                : topo::SystemRegistry::instance().by_tag(series.tag)
                      .devices_per_node;
        if (!core::llm_layout_valid(batch, config.micro_batch, dp)) {
          row.push_back("n/a");  // paper: batch 16 impossible at dp=8
          continue;
        }
        const auto result = core::run_llm_gpu(config);
        if (result.oom) {
          row.push_back("OOM");
          continue;
        }
        double value = 0.0;
        if (std::string(metric) == "tokens_per_s_per_gpu") {
          value = result.tokens_per_s_per_gpu;
        } else if (std::string(metric) == "energy_per_gpu_wh_1h") {
          value = result.energy_per_gpu_wh;
        } else {
          value = result.tokens_per_wh;
        }
        row.push_back(units::format_fixed(value, 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "--- " << metric << " ---\n" << table.render() << "\n";
  }

  // Headline anchors from the paper text (§IV-A).
  core::LlmRunConfig gh;
  gh.system_tag = "GH200";
  gh.global_batch = 4096;
  core::LlmRunConfig a100;
  a100.system_tag = "A100";
  a100.global_batch = 4096;
  const auto gh_result = core::run_llm_gpu(gh);
  const auto a100_result = core::run_llm_gpu(a100);
  std::cout << "anchor GH200 best tokens/s/GPU: "
            << units::format_fixed(gh_result.tokens_per_s_per_gpu, 0)
            << " (paper: 47505)\n"
            << "anchor GH200/A100 speedup: "
            << units::format_fixed(gh_result.tokens_per_s_per_gpu /
                                       a100_result.tokens_per_s_per_gpu,
                                   2)
            << "x (paper: 2.45x)\n";
  return 0;
}
