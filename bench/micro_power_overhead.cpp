// google-benchmark microbenchmarks of the jpwr substrate: per-sample method
// cost, energy integration, and the end-to-end overhead of a PowerScope at
// the paper's 100 ms sampling period (§III-A4).
#include <benchmark/benchmark.h>

#include <memory>

#include "power/methods_host.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "sim/power_model.hpp"
#include "topo/specs.hpp"

namespace {

using namespace caraml;

sim::PowerTrace make_trace(std::size_t intervals) {
  const auto device = topo::make_a100_sxm4();
  std::vector<sim::BusyInterval> busy;
  double t = 0.0;
  for (std::size_t i = 0; i < intervals; ++i) {
    busy.push_back(sim::BusyInterval{t, t + 0.8, 0.4, 0});
    t += 1.0;
  }
  return sim::PowerTrace(device, busy, t);
}

void BM_TraceSample(benchmark::State& state) {
  const auto trace = make_trace(static_cast<std::size_t>(state.range(0)));
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.power_at(t));
    t += 0.37;
    if (t > trace.horizon()) t = 0.0;
  }
}
BENCHMARK(BM_TraceSample)->Arg(16)->Arg(1024)->Arg(65536);

void BM_TraceEnergyIntegral(benchmark::State& state) {
  const auto trace = make_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.energy_joules(0.0, trace.horizon()));
  }
}
BENCHMARK(BM_TraceEnergyIntegral)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SyntheticMethodSample(benchmark::State& state) {
  power::SyntheticMethod method("chan", 150.0, 50.0, 2.0);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.sample(t));
    t += 0.1;
  }
}
BENCHMARK(BM_SyntheticMethodSample);

void BM_ProcStatSample(benchmark::State& state) {
  power::ProcStatMethod method;
  if (!method.available()) {
    state.SkipWithError("/proc/stat unavailable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.sample(0.0));
  }
}
BENCHMARK(BM_ProcStatSample);

void BM_TrapezoidIntegration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> times(n), watts(n);
  for (std::size_t i = 0; i < n; ++i) {
    times[i] = 0.1 * static_cast<double>(i);
    watts[i] = 200.0 + (i % 7) * 10.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(power::integrate_trapezoid_joules(times, watts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrapezoidIntegration)->Arg(100)->Arg(10000);

void BM_PowerScopeLifecycle(benchmark::State& state) {
  // Full start/stop cycle of a sampling scope with a synthetic method at a
  // short interval — bounds the tool's intrusiveness.
  for (auto _ : state) {
    std::vector<power::MethodPtr> methods = {
        std::make_shared<power::SyntheticMethod>("chan", 150.0, 50.0, 2.0)};
    power::PowerScope scope(methods, /*interval_ms=*/1.0);
    scope.stop();
    benchmark::DoNotOptimize(scope.num_samples());
  }
}
BENCHMARK(BM_PowerScopeLifecycle);

}  // namespace

BENCHMARK_MAIN();
