// Multi-node scaling study — the paper's §III-A3 points out that "JUBE
// simplifies the process of conducting model layout and scaling experiments";
// this bench runs the sweeps those experiments would launch: strong and weak
// scaling of 800M-GPT data-parallel training across JEDI nodes, with the
// scaling efficiency and the energy cost per token at every size.
#include <iostream>

#include "core/llm.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== LLM scaling on JEDI (4x GH200 per node, 4x IB NDR) "
               "===\n\n";

  // --- strong scaling: fixed global batch 4096 ---------------------------------
  {
    std::cout << "--- strong scaling (global batch fixed at 4096) ---\n";
    TextTable table({"nodes", "GPUs", "tokens/s total", "speedup",
                     "efficiency", "tokens/Wh/GPU"});
    double base = 0.0;
    for (int nodes : {1, 2, 4, 8, 16}) {
      core::LlmRunConfig config;
      config.system_tag = "JEDI";
      config.global_batch = 4096;
      config.num_nodes = nodes;
      const auto result = core::run_llm_gpu(config);
      if (base == 0.0) base = result.tokens_per_s_total;
      const double speedup = result.tokens_per_s_total / base;
      table.add_row({std::to_string(nodes), std::to_string(nodes * 4),
                     units::format_fixed(result.tokens_per_s_total, 0),
                     units::format_fixed(speedup, 2) + "x",
                     units::format_fixed(speedup / nodes * 100, 1) + " %",
                     units::format_fixed(result.tokens_per_wh, 0)});
    }
    std::cout << table.render() << "\n";
  }

  // --- weak scaling: batch 1024 per node -----------------------------------------
  {
    std::cout << "--- weak scaling (global batch = 1024 per node) ---\n";
    TextTable table({"nodes", "GPUs", "global batch", "tokens/s/GPU",
                     "vs 1 node", "Wh/GPU/h"});
    double base = 0.0;
    for (int nodes : {1, 2, 4, 8, 16}) {
      core::LlmRunConfig config;
      config.system_tag = "JEDI";
      config.global_batch = 1024LL * nodes;
      config.num_nodes = nodes;
      const auto result = core::run_llm_gpu(config);
      if (base == 0.0) base = result.tokens_per_s_per_gpu;
      table.add_row({std::to_string(nodes), std::to_string(nodes * 4),
                     std::to_string(config.global_batch),
                     units::format_fixed(result.tokens_per_s_per_gpu, 0),
                     units::format_fixed(
                         result.tokens_per_s_per_gpu / base * 100, 1) + " %",
                     units::format_fixed(result.energy_per_gpu_wh, 0)});
    }
    std::cout << table.render() << "\n";
  }

  // --- interconnect ablation: what if JEDI only had the A100's HDR fabric? ------
  {
    std::cout << "--- same sweep on the A100 system (2x IB HDR fabric) ---\n";
    TextTable table({"nodes", "GPUs", "tokens/s total", "efficiency"});
    double base = 0.0;
    for (int nodes : {1, 2, 4}) {
      core::LlmRunConfig config;
      config.system_tag = "A100";
      config.global_batch = 4096;
      config.num_nodes = nodes;
      const auto result = core::run_llm_gpu(config);
      if (base == 0.0) base = result.tokens_per_s_total;
      table.add_row({std::to_string(nodes), std::to_string(nodes * 4),
                     units::format_fixed(result.tokens_per_s_total, 0),
                     units::format_fixed(
                         result.tokens_per_s_total / base / nodes * 100, 1) +
                         " %"});
    }
    std::cout << table.render();
  }
  return 0;
}
