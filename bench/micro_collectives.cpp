// google-benchmark microbenchmarks of the thread-backed collectives
// (caraml::par) and of the simulator's event engine.
#include <benchmark/benchmark.h>

#include "par/comm.hpp"
#include "sim/cluster.hpp"
#include "topo/specs.hpp"
#include "util/rng.hpp"

namespace {

using namespace caraml;

void BM_AllReduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::int64_t elements = state.range(1);
  for (auto _ : state) {
    par::DeviceGroup group(ranks);
    group.run([&](par::Communicator& comm) {
      Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
      tensor::Tensor value = tensor::Tensor::randn({elements}, rng);
      comm.all_reduce_sum(value);
      benchmark::DoNotOptimize(value.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * ranks * elements);
}
BENCHMARK(BM_AllReduce)->Args({2, 1024})->Args({4, 1024})->Args({4, 65536});

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int repeats = 100;
  for (auto _ : state) {
    par::DeviceGroup group(ranks);
    group.run([&](par::Communicator& comm) {
      for (int i = 0; i < repeats; ++i) comm.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * repeats);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8);

void BM_SimRingAllReduce(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  const auto& node = topo::SystemRegistry::instance().by_tag("JEDI");
  for (auto _ : state) {
    sim::ClusterSim cluster(node, 4, devices / 4);
    auto done = cluster.ring_all_reduce(1.0e9, {}, "ar");
    const double makespan = cluster.graph().run();
    benchmark::DoNotOptimize(makespan);
    benchmark::DoNotOptimize(done.data());
  }
}
BENCHMARK(BM_SimRingAllReduce)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
