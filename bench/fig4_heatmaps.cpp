// Reproduces paper Fig. 4 (a-g): ResNet50 throughput heatmaps — one per
// system — over (number of accelerators) x (global batch size 16..2048),
// including multi-node rows where the system has an inter-node fabric, and
// "OOM" cells where the per-device batch exceeds device memory.
#include <iostream>

#include "core/caraml.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Fig. 4: ResNet50 throughput (images/s) heatmaps ===\n";
  std::cout << "(rows: accelerators, columns: global batch; OOM as in the "
               "paper)\n\n";

  const std::vector<std::string> systems = {"JEDI",  "GH200",  "H100",
                                            "WAIH100", "MI250", "A100",
                                            "GC200"};
  char panel = 'a';
  for (const auto& tag : systems) {
    const auto& node = topo::SystemRegistry::instance().by_tag(tag);
    std::cout << "--- Fig. 4" << panel++ << ": " << node.display_name
              << " ---\n";

    std::vector<std::string> headers = {"devices"};
    for (std::int64_t batch : core::fig4_batches()) {
      headers.push_back(std::to_string(batch));
    }
    TextTable table(headers);

    for (int devices : core::fig4_device_counts(tag)) {
      std::vector<std::string> row = {std::to_string(devices)};
      for (std::int64_t batch : core::fig4_batches()) {
        if (batch % devices != 0) {
          row.push_back("n/a");
          continue;
        }
        core::ResnetRunConfig config;
        config.system_tag = tag;
        config.devices = devices;
        config.global_batch = batch;
        const auto result = core::run_resnet(config);
        row.push_back(result.oom
                          ? "OOM"
                          : units::format_fixed(result.images_per_s_total, 0));
      }
      table.add_row(std::move(row));
    }
    std::cout << table.render() << "\n";
  }
  return 0;
}
