// Reproduces paper Table II: 117M GPT trained for one epoch on the
// IPU-M2000 POD4 (4x GC200), layers pipelined across the IPUs, global batch
// counted in tokens (64 .. 16384).
#include <iostream>

#include "core/caraml.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Table II: 117M GPT on IPU GC200 (M2000 POD4) ===\n\n";

  // Paper values for side-by-side comparison.
  struct PaperRow {
    std::int64_t batch;
    double tokens_per_s, energy_wh, tokens_per_wh;
  };
  const PaperRow paper[] = {
      {64, 64.99, 15.68, 4.08},       {128, 97.21, 18.20, 7.03},
      {256, 129.96, 18.37, 13.93},    {512, 155.72, 18.56, 27.60},
      {1024, 172.94, 19.07, 53.71},   {2048, 183.37, 20.05, 102.13},
      {4096, 188.88, 21.88, 187.22},  {8192, 191.86, 25.47, 321.34},
      {16384, 193.41, 33.00, 496.43},
  };

  TextTable table({"batch", "tokens/s", "paper", "Wh/epoch/IPU", "paper",
                   "tokens/Wh", "paper", "bubble"});
  for (const auto& row : paper) {
    const auto result = core::run_llm_ipu(row.batch);
    table.add_row({std::to_string(row.batch),
                   units::format_fixed(result.tokens_per_s, 2),
                   units::format_fixed(row.tokens_per_s, 2),
                   units::format_fixed(result.energy_per_epoch_wh, 2),
                   units::format_fixed(row.energy_wh, 2),
                   units::format_fixed(result.tokens_per_wh, 2),
                   units::format_fixed(row.tokens_per_wh, 2),
                   units::format_fixed(result.pipeline_bubble, 3)});
  }
  std::cout << table.render();
  return 0;
}
