// Power-cap ablation: *why* the H100-PCIe wins the efficiency ranking.
//
// The paper concludes (§VI): "The PCIe-flavor of the H100 usually gives the
// best energy-efficiency, a result of operation at an efficient power
// operating point." This bench makes that mechanism explicit: sweep a power
// cap over the H100-SXM5 and recompute throughput under the DVFS relation
// implied by the calibrated power curve (P - idle ∝ throughput^1.3, so
// throughput ∝ (P - idle)^(1/1.3)), then report tokens/Wh vs cap.
#include <cmath>
#include <iostream>

#include "core/llm.hpp"
#include "topo/specs.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace caraml;

  std::cout << "=== Ablation: power-capping an H100-SXM5 (800M GPT, batch "
               "2048) ===\n\n";

  core::LlmRunConfig config;
  config.system_tag = "WAIH100";
  config.global_batch = 2048;
  const auto baseline = core::run_llm_gpu(config);

  const auto device = topo::make_h100_sxm5();
  const double p_full = baseline.avg_power_per_gpu_w;
  const double dyn_full = p_full - device.idle_watts;

  TextTable table({"cap (W)", "cap (% TDP)", "tokens/s/GPU", "tokens/Wh",
                   "vs uncapped"});
  double best_eff = 0.0;
  double best_cap = 0.0;
  for (double frac = 0.40; frac <= 1.001; frac += 0.05) {
    const double cap = device.tdp_watts * frac;
    double throughput = baseline.tokens_per_s_per_gpu;
    double power = p_full;
    if (cap < p_full) {
      // DVFS: dynamic power scales with throughput^1.3 along the calibrated
      // curve, so capping to `cap` scales throughput by
      // ((cap - idle)/(p_full - idle))^(1/1.3).
      const double scale = std::pow((cap - device.idle_watts) / dyn_full,
                                    1.0 / topo::kPowerCurveExponent);
      throughput *= scale;
      power = cap;
    }
    const double efficiency = throughput * 3600.0 / power;
    if (efficiency > best_eff) {
      best_eff = efficiency;
      best_cap = cap;
    }
    table.add_row({units::format_fixed(cap, 0),
                   units::format_fixed(frac * 100, 0) + " %",
                   units::format_fixed(throughput, 0),
                   units::format_fixed(efficiency, 0),
                   units::format_fixed(
                       efficiency / (baseline.tokens_per_wh), 2) + "x"});
  }
  std::cout << table.render() << "\n";

  // Compare the sweet spot against the actual PCIe card.
  core::LlmRunConfig pcie;
  pcie.system_tag = "H100";
  pcie.global_batch = 2048;
  const auto pcie_result = core::run_llm_gpu(pcie);
  std::cout << "efficiency-optimal cap: " << units::format_watts(best_cap)
            << " (" << units::format_fixed(best_cap / device.tdp_watts * 100, 0)
            << " % of the SXM's 700 W TDP)\n"
            << "the real H100-PCIe ships capped at 350 W and measures "
            << units::format_fixed(pcie_result.tokens_per_wh, 0)
            << " tokens/Wh — the paper's \"efficient power operating "
               "point\".\n";
  return 0;
}
