// google-benchmark microbenchmarks of the real CPU training substrate: GPT
// and ResNet training steps, attention forward/backward, and optimizer
// update throughput.
#include <benchmark/benchmark.h>

#include "nn/attention.hpp"
#include "nn/gpt.hpp"
#include "nn/optim.hpp"
#include "nn/resnet.hpp"
#include "util/rng.hpp"

namespace {

using namespace caraml;

void BM_GptTrainStep(benchmark::State& state) {
  Rng rng(1);
  nn::GptModelConfig config;
  config.vocab_size = 256;
  config.block_size = 32;
  config.num_layers = static_cast<std::int64_t>(state.range(0));
  config.num_heads = 2;
  config.embed_dim = 64;
  nn::GptModel model(config, rng);
  nn::Adam optimizer(model.parameters(), 1e-3f);

  nn::Tensor tokens({2, 32});
  std::vector<std::int64_t> targets(64);
  for (std::int64_t i = 0; i < 64; ++i) {
    tokens[i] = static_cast<float>(i % 256);
    targets[static_cast<std::size_t>(i)] = (i + 1) % 256;
  }
  for (auto _ : state) {
    optimizer.zero_grad();
    const float loss = model.train_step(tokens, targets);
    optimizer.step();
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * 64);  // tokens per step
}
BENCHMARK(BM_GptTrainStep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(2);
  const std::int64_t time = state.range(0);
  nn::CausalSelfAttention attention(64, 4, rng);
  const nn::Tensor x = nn::Tensor::randn({1, time, 64}, rng, 0.5f);
  for (auto _ : state) {
    nn::Tensor y = attention.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * time);
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64)->Arg(128)->UseRealTime();

void BM_AttentionBackward(benchmark::State& state) {
  Rng rng(3);
  const std::int64_t time = state.range(0);
  nn::CausalSelfAttention attention(64, 4, rng);
  const nn::Tensor x = nn::Tensor::randn({1, time, 64}, rng, 0.5f);
  const nn::Tensor y = attention.forward(x);
  const nn::Tensor g = nn::Tensor::ones(y.shape());
  for (auto _ : state) {
    nn::Tensor dx = attention.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_AttentionBackward)->Arg(16)->Arg(64)->UseRealTime();

void BM_ResnetTrainStep(benchmark::State& state) {
  Rng rng(4);
  nn::ResNet model(nn::ResNetConfig::tiny(10), rng);
  nn::Sgd optimizer(model.parameters(), 0.01f, 0.9f);
  const std::int64_t batch = state.range(0);
  const nn::Tensor images = nn::Tensor::randn({batch, 3, 16, 16}, rng);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(batch));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i % 10);
  }
  for (auto _ : state) {
    optimizer.zero_grad();
    const float loss = model.train_step(images, labels);
    optimizer.step();
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ResnetTrainStep)->Arg(4)->Arg(16)->UseRealTime();

void BM_AdamStep(benchmark::State& state) {
  Rng rng(5);
  const std::int64_t n = state.range(0);
  nn::Parameter w("w", nn::Tensor::randn({n}, rng));
  nn::Adam optimizer({&w}, 1e-3f);
  w.grad.fill(0.01f);
  for (auto _ : state) {
    optimizer.step();
    benchmark::DoNotOptimize(w.value.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdamStep)->Arg(1 << 12)->Arg(1 << 18)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
